//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::default().sample_size`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! [`black_box`]) with a simple mean-of-N wall-clock measurement instead of
//! upstream criterion's statistical machinery. Honors
//! `CRITERION_SAMPLE_OVERRIDE=<n>` so CI can smoke-run benches quickly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: collects named closures and times them.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.effective_samples(), &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn effective_samples(&self) -> usize {
        std::env::var("CRITERION_SAMPLE_OVERRIDE")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|n| *n > 0)
            .unwrap_or(self.sample_size)
    }
}

/// A named group of benchmarks (prefixes each benchmark's name).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let samples = self.criterion.effective_samples();
        run_one(&format!("{}/{id}", self.name), samples, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let samples = self.criterion.effective_samples();
        run_one(
            &format!("{}/{id}", self.name),
            samples,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let mean = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.total / bencher.iters
    };
    println!("{name:<50} time: {mean:>12.3?}  ({} iters)", bencher.iters);
}

/// Passed to benchmark closures; measures the routine under test.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, running it once for warm-up then `sample_size` times
    /// measured.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Identifier for one parameterization of a benchmark.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declares a benchmark group. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f1, f2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` that runs one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn runs_benches() {
        let mut c = Criterion::default().sample_size(2);
        sample_bench(&mut c);
    }

    crate::criterion_group!(simple, sample_bench);
    crate::criterion_group! {
        name = configured;
        config = crate::Criterion::default().sample_size(3);
        targets = sample_bench,
    }

    #[test]
    fn group_macros_expand() {
        simple();
        configured();
    }
}
