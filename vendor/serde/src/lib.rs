//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the workspace's serialization layer: a JSON-shaped [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits that convert to and from it,
//! and re-exported derive macros. `serde_json` (also vendored) renders
//! [`Value`] to JSON text and parses it back.
//!
//! This is intentionally **not** upstream serde's zero-copy visitor
//! architecture — just enough structure for the workspace's reports, job
//! specs and round-trip tests, behind the same `use serde::{Serialize,
//! Deserialize}` + `#[derive(...)]` surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// A JSON-shaped dynamic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative JSON integers).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup, as an error when missing (used by derives).
    pub fn get_field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(_) => self
                .get(key)
                .ok_or_else(|| Error::new(format!("missing field `{key}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Array element lookup, as an error when missing (used by derives).
    pub fn get_index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => items
                .get(i)
                .ok_or_else(|| Error::new(format!("missing tuple element {i}"))),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }

    /// The value as a unit-enum variant name (used by derives).
    pub fn as_variant(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::new(format!(
                "expected variant string, found {}",
                other.kind()
            ))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Error for an unknown enum variant (used by derives).
    pub fn unknown_variant(enum_name: &str, variant: &str) -> Self {
        Self(format!("unknown {enum_name} variant `{variant}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value of `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {}", other.kind())))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("{n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match *value {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| Error::new(format!("{n} out of range")))?,
                    ref other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}", other.kind())))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!("{n} out of range for {}",
                        stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Float(x) => Ok(x),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            ref other => Err(Error::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

/// Deserializing into `&'static str` leaks the parsed string. Upstream serde
/// cannot do this at all; the workspace's `Scenario` type wants it for
/// static catalog names, and leaked scenario names are small and bounded.
impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(|s| &*s.leak())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of length {N}, found {len}")))
    }
}

/// Maps serialize as arrays of `[key, value]` pairs, so non-string keys
/// (e.g. `Pattern`) round-trip without a string encoding.
impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .map(|pair| {
                    Ok((
                        K::from_value(pair.get_index(0)?)?,
                        V::from_value(pair.get_index(1)?)?,
                    ))
                })
                .collect(),
            other => Err(Error::new(format!(
                "expected map pair array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok((
            A::from_value(value.get_index(0)?)?,
            B::from_value(value.get_index(1)?)?,
        ))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            Option::<u8>::from_value(&Some(3u8).to_value()).unwrap(),
            Some(3)
        );
        assert_eq!(
            Option::<u8>::from_value(&Option::<u8>::None.to_value()).unwrap(),
            None
        );
        assert_eq!(
            [1u8, 2, 3],
            <[u8; 3]>::from_value(&[1u8, 2, 3].to_value()).unwrap()
        );
    }

    #[test]
    fn map_round_trip() {
        let mut m = HashMap::new();
        m.insert(7u32, "seven".to_string());
        let back = HashMap::<u32, String>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_carry_context() {
        let err = u8::from_value(&Value::UInt(300)).unwrap_err();
        assert!(err.to_string().contains("out of range"));
        let err = Value::Null.get_field("x").unwrap_err();
        assert!(err.to_string().contains("expected object"));
    }
}
