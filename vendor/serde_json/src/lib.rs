//! Offline stand-in for `serde_json`: renders the vendored `serde`'s
//! [`Value`] tree to JSON text and parses JSON text back.
//!
//! Supports the full JSON data model the workspace emits: objects, arrays,
//! strings (with escapes), integers, floats (shortest round-trip via Rust's
//! `Display`), booleans and `null`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // Rust's Display is shortest-round-trip; force a `.0` onto
                // integral floats so they parse back as floats.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf.
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            ('[', ']'),
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            pairs.len(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), ind, d| {
                write_escaped(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    pairs.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex_escape()?;
                            let c = match code {
                                // High surrogate: a low surrogate must
                                // follow — standard JSON encoders emit
                                // non-BMP characters as surrogate pairs.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                        return Err(Error::new("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.parse_hex_escape()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(Error::new("unpaired low surrogate"))
                                }
                                code => char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape; `pos` is on the `u` at
    /// entry and on the last hex digit at exit (the string loop advances
    /// one further).
    fn parse_hex_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("τ \"quoted\"\n".into())),
            (
                "counts".into(),
                Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(0.5)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        impl Deserialize for Raw {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(Raw(v.clone()))
            }
        }
        let compact = to_string(&Raw(v.clone())).unwrap();
        let back: Raw = from_str(&compact).unwrap();
        assert_eq!(back.0, v);
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Raw = from_str(&pretty).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1f64, 1.0, -3.25, 1e-9, 123456.789] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Standard encoders emit non-BMP characters as UTF-16 pairs.
        let s: String = from_str("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(s, "😀 ok");
        assert!(from_str::<String>("\"\\ud83d\"").is_err(), "lone high");
        assert!(from_str::<String>("\"\\ude00\"").is_err(), "lone low");
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err(), "bad low");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
