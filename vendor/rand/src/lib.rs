//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the slice of the `rand 0.8` API the workspace uses:
//! [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64) and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but do
//! **not** reproduce upstream `rand`'s byte streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (only `f64` in `[0, 1)` and the
    /// unsigned integers are supported).
    fn gen<T: UniformPrimitive>(&mut self) -> T {
        T::from_bits_source(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen`] can produce.
pub trait UniformPrimitive {
    /// Draws one value from `rng`.
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformPrimitive for f64 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl UniformPrimitive for f32 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl UniformPrimitive for u32 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformPrimitive for u64 {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformPrimitive for bool {
    fn from_bits_source<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as u128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Random number generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator (stand-in for `rand`'s
    /// `SmallRng`; streams differ from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_bool_edges_and_rates() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        // Every value of a small range is reachable.
        let seen: std::collections::HashSet<u8> = (0..200).map(|_| rng.gen_range(0u8..4)).collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left 50 elements in order");
    }

    #[test]
    fn unsized_rng_callable_through_generics() {
        fn flip<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = SmallRng::seed_from_u64(1);
        flip(&mut rng);
    }
}
