//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`proptest!`] macro, range/tuple strategies, [`collection::vec`],
//! [`option::of`], [`ANY`](crate::bool::ANY), `prop_assert*!` and
//! [`ProptestConfig::with_cases`] — over a deterministic seeded generator.
//! Unlike upstream there is **no shrinking**: a failing case reports its
//! inputs verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a property case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it is not counted as a failure.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value: Debug;

    /// Draws one input.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// The `Just` strategy: always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{SmallRng, Strategy};
    use rand::Rng as _;

    /// Strategy yielding `true` or `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy instance.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng as _;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy producing vectors of `element` with a length drawn from
    /// `size` (a `usize` for fixed length, or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{SmallRng, Strategy};
    use rand::Rng as _;

    /// Strategy for `Option`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Yields `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Deterministic per-property RNG. The seed mixes a fixed constant with the
/// property name so distinct properties explore different streams but every
/// run of the same property is reproducible.
pub fn property_rng(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::property_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let rendered = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property {} failed at case {case}/{}\n  inputs: {rendered}\n  {msg}",
                            stringify!($name), config.cases,
                        ),
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn ranges_stay_in_bounds(x in 3usize..10, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Doc comments inside the macro must parse.
        fn vec_and_option_strategies(
            v in crate::collection::vec((0u8..2, 0u8..3), 0..20),
            o in crate::option::of(0u8..3),
            b in crate::bool::ANY,
        ) {
            prop_assert!(v.len() < 20);
            for (a, c) in &v {
                prop_assert!(*a < 2 && *c < 3);
            }
            if let Some(x) = o {
                prop_assert!(x < 3);
            }
            let _ = b;
        }
    }

    proptest! {
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x >= 5);
            prop_assert!(x >= 5);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(8);
            let mut rng = crate::property_rng("doomed");
            for case in 0..config.cases {
                let x = Strategy::generate(&(0u8..4), &mut rng);
                let outcome: TestCaseResult = (|| {
                    prop_assert!(x > 100, "x was {x}");
                    Ok(())
                })();
                if let Err(TestCaseError::Fail(msg)) = outcome {
                    panic!("case {case}: {msg}");
                }
            }
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x was"), "got: {msg}");
    }
}
