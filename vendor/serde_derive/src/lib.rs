//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde`'s [`Serialize`]/[`Deserialize`]
//! traits (a value-tree model, not the upstream visitor model). Supported
//! item shapes — which cover every derived type in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (newtype-style; a single field serializes transparently),
//! * enums with unit variants only (serialized as their variant name).
//!
//! Generics, lifetimes and data-carrying enum variants are rejected with a
//! panic (a compile error at the derive site); hand-write those impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                pairs.join(", ")
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::Value::Array(<[_]>::into_vec(::std::boxed::Box::new([{}])))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\"))",
                        item.name
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        item.name
    )
    .parse()
    .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             value.get_field(\"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                             value.get_index({i})?)?"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v})"))
                .collect();
            format!(
                "match value.as_variant()? {{ {}, other => \
                     ::std::result::Result::Err(::serde::Error::unknown_variant(\
                         \"{name}\", other)) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive generated invalid Deserialize impl")
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // `(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported; hand-write the impls");
    }

    let shape = match (kind.as_str(), tokens.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::UnitEnum(parse_unit_variants(g.stream()))
        }
        (k, other) => panic!("serde_derive: unsupported {k} body: {other:?}"),
    };
    Item { name, shape }
}

/// Field names of a `{ ... }` struct body: for each field, skip attributes
/// and visibility, record the identifier before `:`, then consume the type
/// up to the next comma at zero angle-bracket depth.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'fields: loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:`, got {other:?}"),
        }
        let mut angle_depth = 0usize;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => continue 'fields,
                _ => {}
            }
        }
        break;
    }
    fields
}

/// Number of fields in a `( ... )` tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0usize;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

/// Variant names of an enum body; any variant carrying data is rejected.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(i)) => variants.push(i.to_string()),
            Some(other) => panic!("serde_derive: expected variant name, got {other:?}"),
            None => break,
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive: data-carrying enum variants are not supported; \
                 hand-write the impls"
            ),
            Some(other) => panic!("serde_derive: unexpected token {other:?} in enum body"),
            None => break,
        }
    }
    variants
}
