//! Quickstart: is the `female` group covered in an unlabeled image
//! dataset, and how many crowd tasks does the answer cost?
//!
//! ```sh
//! cargo run -p cvg-examples --bin quickstart
//! ```

use coverage_core::prelude::*;
use dataset_sim::{binary_dataset, Placement};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A dataset of 10 000 face images; unknown to us, only 30 are female.
    let mut rng = SmallRng::seed_from_u64(42);
    let dataset = binary_dataset(10_000, 30, Placement::Shuffled, &mut rng);
    let female = Target::group(
        dataset
            .schema()
            .pattern(&[("gender", "female")])
            .expect("schema has gender"),
    );

    // Ask through a metered engine. Here the answers come from a perfect
    // oracle; swap in `crowd_sim::MTurkSim` for a noisy crowd.
    let mut engine = Engine::with_point_batch(PerfectSource::new(&dataset), 50);

    // Is `female` covered at τ = 50 (at least 50 female images)?
    let tau = 50;
    let n = 50; // images per set-query HIT
    let out = group_coverage(
        &mut engine,
        &dataset.all_ids(),
        &female,
        tau,
        n,
        &DncConfig::default(),
    )
    .unwrap();

    println!("group:        female");
    println!("threshold τ:  {tau}");
    println!(
        "verdict:      {}",
        if out.covered { "covered" } else { "UNCOVERED" }
    );
    println!(
        "count:        {}{}",
        out.count,
        if out.covered {
            "+ (lower bound)"
        } else {
            " (exact)"
        }
    );
    println!("crowd tasks:  {}", engine.ledger().total_tasks());

    // Compare with the naive baseline: one image per task.
    let mut engine = Engine::new(PerfectSource::new(&dataset));
    base_coverage(&mut engine, &dataset.all_ids(), &female, tau).unwrap();
    println!(
        "baseline:     {} tasks (Base-Coverage, one image per HIT)",
        engine.ledger().total_tasks()
    );
    println!(
        "upper bound:  {:.0} tasks (N/n + τ·log2 n)",
        group_coverage_upper_bound(dataset.len(), n, tau, LogBase::Two)
    );

    // What would the crowd bill be?
    let pricing = PricingModel::amt_ten_cents();
    let mut ledger = TaskLedger::new();
    for _ in 0..engine.ledger().total_tasks() {
        ledger.record_set_query();
    }
    println!(
        "baseline bill: {:.2} USD at $0.10/HIT × 3 assignments + 20% fees",
        pricing.total_cost(&ledger)
    );
}
