//! Concurrent audits: nine tenants share one crowd platform.
//!
//! A FERET-scale face dataset (gender × skin) is audited by nine jobs at
//! once — group, base, multiple, intersectional and classifier-assisted
//! coverage at several thresholds — through the `coverage-service`
//! orchestrator: one deterministic `MTurkSim`, one shared answer cache, one
//! batching dispatcher, eight worker threads.
//!
//! The tour then re-runs the same workload (a) serially on one worker and
//! (b) as nine *isolated* one-job runs against fresh platforms, to show the
//! two wins of serving audits as a platform:
//!
//! * wall-clock speedup from overlapping the crowd's round-trip latency;
//! * fewer HITs published, because the shared cache pays for each repeated
//!   question once platform-wide.
//!
//! ```sh
//! cargo run -p cvg-examples --bin concurrent_audits
//! ```

use coverage_core::prelude::*;
use coverage_service::{AuditKind, AuditService, JobSpec, ServiceConfig};
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use cvg_bench::report::{bench_reuse_path, json_object, update_json_report};
use dataset_sim::{Dataset, DatasetBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::time::Duration;

const SEED: u64 = 2024;
const ROUND_LATENCY: Duration = Duration::from_micros(500);
/// HITs the shared platform published for this workload under PR 1's
/// exact-match answer cache — the baseline the object-level
/// `KnowledgeStore` has to beat.
const PR1_EXACT_MATCH_HITS: u64 = 1306;

fn schema() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").expect("attribute"),
        Attribute::binary("skin", "light", "dark").expect("attribute"),
    ])
    .expect("schema")
}

fn platform(data: &Dataset) -> MTurkSim<'_, Dataset> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    MTurkSim::new_deterministic(data, schema(), workers, QualityControl::with_rating(), SEED)
}

fn workload(data: &Dataset) -> Vec<JobSpec> {
    let schema = schema();
    let pool = data.all_ids();
    let female = Target::group(schema.pattern(&[("gender", "female")]).expect("pattern"));
    let dark = Target::group(schema.pattern(&[("skin", "dark")]).expect("pattern"));
    // A simulated high-precision gender classifier: its predicted set is the
    // true female population minus a tail (precision 1.0, recall < 1).
    let predicted: Vec<ObjectId> = data
        .ids()
        .filter(|id| female.matches(&data.labels_of(*id)))
        .take(170)
        .collect();
    vec![
        JobSpec::new(
            "press/female-50",
            pool.clone(),
            AuditKind::GroupCoverage {
                target: female.clone(),
            },
        )
        .seed(1),
        JobSpec::new(
            "press/dark-50",
            pool.clone(),
            AuditKind::GroupCoverage {
                target: dark.clone(),
            },
        )
        .seed(2),
        JobSpec::new(
            "ngo/base-female",
            pool[..400].to_vec(),
            AuditKind::BaseCoverage {
                target: female.clone(),
            },
        )
        .tau(20)
        .seed(3),
        JobSpec::new(
            "lab/genders",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![
                    schema.pattern(&[("gender", "male")]).expect("pattern"),
                    schema.pattern(&[("gender", "female")]).expect("pattern"),
                ],
            },
        )
        .seed(4),
        JobSpec::new(
            "lab/intersections",
            pool.clone(),
            AuditKind::IntersectionalCoverage {
                schema: schema.clone(),
            },
        )
        .seed(5),
        JobSpec::new(
            "vendor/classifier",
            pool.clone(),
            AuditKind::ClassifierCoverage {
                target: female.clone(),
                predicted,
            },
        )
        .seed(6),
        JobSpec::new(
            "press/female-30",
            pool.clone(),
            AuditKind::GroupCoverage {
                target: female.clone(),
            },
        )
        .tau(30)
        .seed(7),
        JobSpec::new(
            "lab/skins",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![
                    schema.pattern(&[("skin", "light")]).expect("pattern"),
                    schema.pattern(&[("skin", "dark")]).expect("pattern"),
                ],
            },
        )
        .seed(8),
        JobSpec::new(
            "press/dark-80",
            pool,
            AuditKind::GroupCoverage { target: dark },
        )
        .tau(80)
        .seed(9),
    ]
}

fn run(
    data: &Dataset,
    workers: usize,
) -> (coverage_service::ServiceReport, crowd_sim::PlatformStats) {
    let mut service = AuditService::new(ServiceConfig {
        workers,
        round_latency: ROUND_LATENCY,
        ..ServiceConfig::default()
    });
    for spec in workload(data) {
        service.submit(spec);
    }
    let (report, platform) = service.run(platform(data));
    (report, *platform.stats())
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    // male-light, male-dark, female-light, female-dark: 215 females and 48
    // dark-skinned members in 1 600 images (FERET-flavoured imbalance).
    let data = DatasetBuilder::new(schema())
        .counts(&[1337, 28, 195, 20])
        .build(&mut rng);

    println!("=== nine tenants, one platform (8 workers) ===");
    let (shared, shared_stats) = run(&data, 8);
    println!(
        "{:<22} {:<24} {:<10} {:>7} {:>12} {:>9}",
        "job", "algorithm", "status", "tasks", "crowd tasks", "wall ms"
    );
    for job in &shared.jobs {
        println!(
            "{:<22} {:<24} {:<10} {:>7} {:>12} {:>9}",
            job.name,
            job.algorithm,
            format!("{:?}", job.status),
            job.ledger.total_tasks(),
            job.crowd_tasks,
            job.wall_ms,
        );
    }
    println!(
        "\nlogical work asked: {} | crowd tasks billed: {} | cache hits: {} ({} misses)",
        shared.total_logical.total_tasks(),
        shared.crowd_tasks,
        shared.cache_hits,
        shared.cache_misses,
    );
    println!(
        "knowledge store: {} answered from facts, {} narrowed ({} objects pruned), {} forwarded",
        shared.reuse.hits,
        shared.reuse.narrowed,
        shared.reuse.objects_pruned,
        shared.reuse.forwarded,
    );
    println!(
        "dispatcher: {} rounds, {} coalesced point HITs ({} labels), max {} questions/round",
        shared.dispatch.rounds,
        shared.dispatch.point_hits,
        shared.dispatch.points_served,
        shared.dispatch.max_round_questions,
    );

    println!("\n=== the same nine jobs, serially (1 worker) ===");
    let (serial, _) = run(&data, 1);
    let speedup = serial.wall_ms as f64 / shared.wall_ms.max(1) as f64;
    println!(
        "concurrent: {} ms | serial: {} ms | speedup: {speedup:.1}x",
        shared.wall_ms, serial.wall_ms
    );

    println!("\n=== the same nine jobs, isolated (no shared platform) ===");
    let mut isolated_hits = 0u64;
    for spec in workload(&data) {
        let mut service = AuditService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.submit(spec);
        let (_report, platform) = service.run(platform(&data));
        isolated_hits += platform.stats().hits_published;
    }
    println!(
        "HITs published — shared platform: {} | isolated runs: {} | saved: {}",
        shared_stats.hits_published,
        isolated_hits,
        isolated_hits.saturating_sub(shared_stats.hits_published),
    );
    assert!(
        shared_stats.hits_published < isolated_hits,
        "the shared cache must reduce published HITs"
    );
    println!(
        "vs PR 1 exact-match cache ({PR1_EXACT_MATCH_HITS} HITs): {} HITs, {} fewer ({:.1}% reduction)",
        shared_stats.hits_published,
        PR1_EXACT_MATCH_HITS.saturating_sub(shared_stats.hits_published),
        100.0 * (PR1_EXACT_MATCH_HITS.saturating_sub(shared_stats.hits_published)) as f64
            / PR1_EXACT_MATCH_HITS as f64,
    );
    // `hits_published` is mildly schedule-dependent (narrowing and point
    // coalescing vary with thread timing), but the assert cannot realistically
    // flake: even with point coalescing fully degraded (every one of the ~440
    // labels its own HIT instead of ~190 coalesced ones) the total stays
    // under the baseline, and observed run-to-run variance is single-digit.
    assert!(
        shared_stats.hits_published < PR1_EXACT_MATCH_HITS,
        "the knowledge store must beat the exact-match baseline ({} vs {PR1_EXACT_MATCH_HITS})",
        shared_stats.hits_published,
    );

    let section = json_object(vec![
        ("tenants", Value::UInt(shared.jobs.len() as u64)),
        (
            "questions_asked",
            Value::UInt(shared.total_logical.total_tasks()),
        ),
        ("crowd_tasks", Value::UInt(shared.crowd_tasks)),
        (
            "hits_published_shared",
            Value::UInt(shared_stats.hits_published),
        ),
        ("hits_published_isolated", Value::UInt(isolated_hits)),
        (
            "hits_published_pr1_exact_match",
            Value::UInt(PR1_EXACT_MATCH_HITS),
        ),
        (
            "hits_saved_vs_pr1",
            Value::UInt(PR1_EXACT_MATCH_HITS.saturating_sub(shared_stats.hits_published)),
        ),
        ("store_hits", Value::UInt(shared.reuse.hits)),
        ("store_narrowed", Value::UInt(shared.reuse.narrowed)),
        ("store_forwarded", Value::UInt(shared.reuse.forwarded)),
        (
            "store_objects_pruned",
            Value::UInt(shared.reuse.objects_pruned),
        ),
    ]);
    update_json_report(bench_reuse_path(), "concurrent_audits", section)
        .expect("write BENCH_reuse.json");
    println!("reuse metrics recorded in {}", bench_reuse_path().display());
}
