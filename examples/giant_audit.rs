//! One giant audit, sharded inside: the scale-out tour.
//!
//! A single high-arity tenant — Intersectional-Coverage over gender × race
//! × age (24 cells, 60 lattice patterns) on one simulated crowd platform —
//! is run at intra-job shard counts 1, 2, 4 and 8: the store is lock-striped
//! `s` ways and the super-group scan fans out over `s` worker threads
//! *inside the one job*. The audit's verdicts, MUPs and logical ledger are
//! asserted byte-identical across all four runs; only the wall-clock moves,
//! and it must improve monotonically from 1 shard through 4.
//!
//! The tour closes with the dense-lattice `mups_from_counts` against the
//! historical `HashMap`-keyed baseline on a 3-attribute schema — the dense
//! path must win — and records everything in `results/BENCH_scaleout.json`.
//!
//! ```sh
//! cargo run --release -p cvg-examples --bin giant_audit
//! ```

use coverage_core::mup::FullGroupCounts;
use coverage_core::prelude::*;
use coverage_service::{AuditKind, AuditService, JobId, JobSpec, JobStatus, ServiceConfig};
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use cvg_bench::report::{bench_scaleout_path, json_object, update_json_report};
use cvg_bench::scenarios::{giant_audit_counts, giant_audit_schema};
use dataset_sim::{Dataset, DatasetBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::time::{Duration, Instant};

const SEED: u64 = 33;
const TAU: usize = 50;
// Sleep-dominated rounds: the shard-scaling gaps grow with this latency
// while scheduler noise does not, which is what keeps the monotonicity
// asserts below stable on slow or loaded CI runners.
const ROUND_LATENCY: Duration = Duration::from_micros(2500);
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn platform(data: &Dataset) -> MTurkSim<'_, Dataset> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    MTurkSim::new_deterministic(
        data,
        giant_audit_schema(),
        workers,
        QualityControl::with_rating(),
        SEED,
    )
}

/// Runs the one giant audit with `shards` store stripes and `shards`
/// intra-job scan threads; returns (outcome JSON, ledger, wall ms, reuse).
fn run_sharded(
    data: &Dataset,
    shards: usize,
) -> (
    String,
    coverage_core::ledger::TaskLedger,
    u64,
    coverage_core::memo::ReuseStats,
) {
    let mut service = AuditService::new(ServiceConfig {
        workers: 1, // one runner: all parallelism is *inside* the job
        round_latency: ROUND_LATENCY,
        store_shards: shards,
        ..ServiceConfig::default()
    });
    service.submit(
        JobSpec::new(
            "census/intersectional",
            data.all_ids(),
            AuditKind::IntersectionalCoverage {
                schema: giant_audit_schema(),
            },
        )
        .tau(TAU)
        .seed(5)
        .intra_parallelism(shards),
    );
    let (report, _platform) = service.run(platform(data));
    let job = report.job(JobId(0)).expect("job reported");
    assert_eq!(job.status, JobStatus::Done, "{}", report.to_json());
    let outcome =
        serde_json::to_string(job.outcome.as_ref().expect("outcome")).expect("outcome serializes");
    (outcome, job.ledger, report.wall_ms, job.reuse)
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let data = DatasetBuilder::new(giant_audit_schema())
        .counts(&giant_audit_counts())
        .build(&mut rng);
    println!(
        "=== one giant audit: {} objects, {} cells, tau {} ===",
        data.len(),
        giant_audit_counts().len(),
        TAU
    );

    let mut walls: Vec<(usize, u64)> = Vec::new();
    let mut baseline: Option<(String, coverage_core::ledger::TaskLedger)> = None;
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>10}",
        "shards", "wall ms", "tasks", "reuse hits", "forwarded"
    );
    for shards in SHARD_COUNTS {
        let (outcome, ledger, wall_ms, reuse) = run_sharded(&data, shards);
        println!(
            "{:<8} {:>9} {:>9} {:>10} {:>10}",
            shards,
            wall_ms,
            ledger.total_tasks(),
            reuse.hits,
            reuse.forwarded
        );
        match &baseline {
            None => baseline = Some((outcome, ledger)),
            Some((base_outcome, base_ledger)) => {
                assert_eq!(
                    &outcome, base_outcome,
                    "{shards} shards changed the audit outcome"
                );
                assert_eq!(
                    &ledger, base_ledger,
                    "{shards} shards changed the logical ledger"
                );
            }
        }
        walls.push((shards, wall_ms));
    }

    // The acceptance bar: wall-clock improves monotonically 1 → 2 → 4
    // shards (8 may plateau once items run out; it must at least not
    // regress past the 2-shard mark).
    assert!(
        walls[1].1 < walls[0].1,
        "2 shards ({} ms) must beat 1 shard ({} ms)",
        walls[1].1,
        walls[0].1
    );
    assert!(
        walls[2].1 < walls[1].1,
        "4 shards ({} ms) must beat 2 shards ({} ms)",
        walls[2].1,
        walls[1].1
    );
    assert!(
        walls[3].1 <= walls[1].1,
        "8 shards ({} ms) must not regress past 2 shards ({} ms)",
        walls[3].1,
        walls[1].1
    );
    let speedup = walls[0].1 as f64 / walls[2].1.max(1) as f64;
    println!("single-audit speedup at 4 shards: {speedup:.1}x");

    // Dense lattice vs the HashMap baseline on a 3-attribute schema: same
    // MUPs, and the dense path must be measurably faster.
    let schema = AttributeSchema::new(vec![
        Attribute::new("a", ["0", "1", "2", "3", "4"]).expect("attribute"),
        Attribute::new("b", ["0", "1", "2", "3", "4"]).expect("attribute"),
        Attribute::new("c", ["0", "1", "2", "3", "4"]).expect("attribute"),
    ])
    .expect("schema");
    let graph = PatternGraph::new(&schema);
    let counts: FullGroupCounts = graph
        .full_groups()
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, if i % 7 == 0 { 12 } else { 80 + i % 40 }))
        .collect();
    const ITERS: u32 = 200;
    let started = Instant::now();
    let mut dense_mups = Vec::new();
    for _ in 0..ITERS {
        dense_mups = mups_from_counts(&schema, &counts, TAU);
    }
    let dense_ns = started.elapsed().as_nanos() as u64;
    let started = Instant::now();
    let mut baseline_mups = Vec::new();
    for _ in 0..ITERS {
        baseline_mups = mups_from_counts_baseline(&schema, &counts, TAU);
    }
    let hashmap_ns = started.elapsed().as_nanos() as u64;
    assert_eq!(dense_mups, baseline_mups, "detectors must agree");
    assert!(
        dense_ns < hashmap_ns,
        "dense mups_from_counts ({dense_ns} ns) must beat the HashMap baseline ({hashmap_ns} ns)"
    );
    println!(
        "mups_from_counts on 5x5x5 ({} patterns): dense {:.2} ms vs hashmap {:.2} ms ({:.1}x) over {ITERS} iters",
        graph.len(),
        dense_ns as f64 / 1e6,
        hashmap_ns as f64 / 1e6,
        hashmap_ns as f64 / dense_ns.max(1) as f64,
    );

    let shard_rows: Vec<Value> = walls
        .iter()
        .map(|(shards, wall_ms)| {
            json_object(vec![
                ("shards", Value::UInt(*shards as u64)),
                ("wall_ms", Value::UInt(*wall_ms)),
            ])
        })
        .collect();
    let section = json_object(vec![
        ("objects", Value::UInt(data.len() as u64)),
        ("cells", Value::UInt(giant_audit_counts().len() as u64)),
        ("tau", Value::UInt(TAU as u64)),
        ("shard_scaling", Value::Array(shard_rows)),
        ("speedup_4_shards", Value::Str(format!("{speedup:.2}"))),
        ("mups_dense_ns", Value::UInt(dense_ns)),
        ("mups_hashmap_ns", Value::UInt(hashmap_ns)),
        (
            "mups_speedup",
            Value::Str(format!("{:.2}", hashmap_ns as f64 / dense_ns.max(1) as f64)),
        ),
    ]);
    update_json_report(bench_scaleout_path(), "giant_audit", section)
        .expect("write BENCH_scaleout.json");
    println!(
        "scale-out metrics recorded in {}",
        bench_scaleout_path().display()
    );
}
