//! A full intersectional audit: which gender × race subgroups does an
//! unlabeled face-image dataset fail to cover, expressed as maximal
//! uncovered patterns (MUPs)?
//!
//! ```sh
//! cargo run -p cvg-examples --bin dataset_audit
//! ```

use coverage_core::prelude::*;
use dataset_sim::DatasetBuilder;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let schema = AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").expect("attribute"),
        Attribute::new("race", ["white", "black", "hispanic", "asian"]).expect("attribute"),
    ])
    .expect("schema");

    // A skewed dataset: white subjects dominate; asian females are nearly
    // absent, asian males small, black females thin.
    // full_groups order: male-{white,black,hispanic,asian},
    //                    female-{white,black,hispanic,asian}.
    let mut rng = SmallRng::seed_from_u64(7);
    let dataset = DatasetBuilder::new(schema.clone())
        .counts(&[2600, 300, 260, 28, 2500, 35, 220, 4])
        .build(&mut rng);
    println!("auditing {} unlabeled images (τ = 50)…\n", dataset.len());

    let mut engine = Engine::with_point_batch(PerfectSource::new(&dataset), 50);
    let cfg = MultipleConfig {
        tau: 50,
        n: 50,
        ..MultipleConfig::default()
    };
    let report =
        intersectional_coverage(&mut engine, &dataset.all_ids(), &schema, &cfg, &mut rng).unwrap();

    println!("fully-specified subgroup verdicts:");
    for r in &report.full_groups {
        println!(
            "  {:<18} {}  (count {}{})",
            schema.pattern_display(&r.group),
            if r.covered { "covered  " } else { "UNCOVERED" },
            r.count,
            if r.count_exact { ", exact" } else { "+" },
        );
    }

    println!("\nmaximal uncovered patterns (MUPs):");
    if report.mups.is_empty() {
        println!("  none — every subgroup is covered");
    }
    for m in &report.mups {
        let cov = report.coverage_of(m).expect("pattern in lattice");
        println!("  {:<18} count {}", schema.pattern_display(m), cov.count);
    }

    println!(
        "\ncrowd work: {} ({} HITs total)",
        report.tasks,
        report.tasks.total_tasks()
    );

    // Sanity: compare with the offline MUPs a fully-labeled dataset gives.
    let offline = mups_from_labels(dataset.labels(), &schema, 50);
    let mut got: Vec<String> = report.mups.iter().map(|m| m.to_string()).collect();
    let mut want: Vec<String> = offline.iter().map(|m| m.to_string()).collect();
    got.sort();
    want.sort();
    println!(
        "\noffline ground-truth MUPs match: {}",
        if got == want { "yes ✓" } else { "NO ✗" }
    );
}
