//! Daemon mode: the audit service as a standing HTTP/JSON platform.
//!
//! Everything a dataset-owner-facing deployment does, in one process:
//!
//! 1. start an [`AuditDaemon`] (worker pool + dispatcher + platform-wide
//!    knowledge store, alive until shutdown) and put the [`HttpServer`]
//!    in front of it;
//! 2. submit three audit jobs **with distinct priorities over raw HTTP**
//!    (`POST /jobs`, body = a `JobSpec` JSON);
//! 3. watch live statuses (`GET /jobs/{id}`): `Running` for the job on the
//!    worker, `Queued` for the ones behind it;
//! 4. cancel the running job mid-flight (`DELETE /jobs/{id}`) — it reports
//!    `Cancelled` with its partial result — then stream a finished job's
//!    full life story over one keep-alive connection
//!    (`GET /jobs/{id}/watch`, chunked ndjson) and reuse the same
//!    connection for a plain request via the [`HttpClient`] helper;
//! 5. drain, and check the surviving reports are **byte-identical** (up to
//!    wall-clock and id) to the same specs run through the scoped
//!    `AuditService::run` path;
//! 6. measure submit-to-first-result latency of a priority-9 probe under
//!    load (recorded in `results/BENCH_daemon.json`);
//! 7. read the run back through the telemetry plane — the human summary,
//!    the Prometheus `/metrics` scrape and the cancelled job's `/trace`
//!    timeline — then shut everything down cleanly;
//! 8. prove durability: a second daemon with a `data_dir` pays for an
//!    audit, shuts down, restarts from its snapshot + WAL and answers the
//!    same audit with **zero** crowd tasks, serving the recovered fact
//!    base over `GET /store/export`.
//!
//! ```sh
//! cargo run --release -p cvg-examples --bin daemon_audit
//! ```

use coverage_core::prelude::*;
use coverage_service::http::{http_request, HttpClient, HttpServer};
use coverage_service::{
    AuditDaemon, AuditKind, AuditService, JobId, JobReport, JobSpec, ServiceConfig,
};
use cvg_bench::report::{bench_daemon_path, json_object, update_json_report};
use dataset_sim::{binary_dataset, Placement};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Value;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 2024;
const ROUND_LATENCY: Duration = Duration::from_millis(2);

fn female(data: &dataset_sim::Dataset) -> Target {
    Target::group(
        data.schema()
            .pattern(&[("gender", "female")])
            .expect("schema has gender"),
    )
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 1, // one worker makes the schedule (and the demo) legible
        round_latency: ROUND_LATENCY,
        ..ServiceConfig::default()
    }
}

/// POSTs a spec and returns the id the daemon assigned.
fn submit(addr: SocketAddr, spec: &JobSpec) -> u64 {
    let body = serde_json::to_string(spec).expect("spec serializes");
    let (code, reply) = http_request(addr, "POST", "/jobs", Some(&body)).expect("POST /jobs");
    assert_eq!(code, 201, "submission must be accepted: {reply}");
    let value: Value = serde_json::from_str::<RawValue>(&reply)
        .expect("reply parses")
        .0;
    match value.get("id") {
        Some(Value::UInt(id)) => *id,
        other => panic!("no id in submission reply: {other:?}"),
    }
}

/// Polls `GET /jobs/{id}` until the body satisfies `done`.
fn poll_job(addr: SocketAddr, id: u64, what: &str, done: impl Fn(&str) -> bool) -> String {
    for _ in 0..30_000 {
        let (code, body) =
            http_request(addr, "GET", &format!("/jobs/{id}"), None).expect("GET /jobs/{id}");
        assert_eq!(code, 200, "{body}");
        if done(&body) {
            return body;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("job {id} never reached the {what} state");
}

/// Wall-clock-and-id-normalized report JSON: the byte-identity surface.
fn normalized(report: &JobReport) -> String {
    let mut report = report.clone();
    report.id = JobId(0);
    report.wall_ms = 0;
    report.phases_ms = coverage_service::PhaseDurations::default();
    report.to_json()
}

/// A raw [`Value`] viewed through the vendored serde traits.
struct RawValue(Value);

impl serde::Deserialize for RawValue {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(RawValue(value.clone()))
    }
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let data = Arc::new(binary_dataset(9_000, 400, Placement::Shuffled, &mut rng));
    let target = female(&data);
    let pool = data.all_ids();

    println!("=== daemon mode: start the service, put HTTP in front ===");
    let daemon = Arc::new(AuditDaemon::start(
        config(),
        SharedTruthSource::new(Arc::clone(&data)),
    ));
    let server = HttpServer::serve("127.0.0.1:0", Arc::clone(&daemon)).expect("bind");
    let addr = server.local_addr();
    println!("listening on http://{addr}");

    // Three tenants, three priorities. The long low-priority audit goes
    // first and will be cancelled mid-run; the two survivors share nothing
    // with it or each other (disjoint pools), so their reports are
    // schedule-independent — comparable byte-for-byte with the scoped path.
    let doomed_spec = JobSpec::new(
        "press/full-sweep",
        pool[..6_000].to_vec(),
        AuditKind::GroupCoverage {
            target: target.clone(),
        },
    )
    .tau(300)
    .priority(0);
    let low_spec = JobSpec::new(
        "ngo/slice-audit",
        pool[6_000..7_500].to_vec(),
        AuditKind::GroupCoverage {
            target: target.clone(),
        },
    )
    .tau(25)
    .seed(1)
    .priority(3);
    let high_spec = JobSpec::new(
        "lab/urgent-audit",
        pool[7_500..].to_vec(),
        AuditKind::GroupCoverage {
            target: target.clone(),
        },
    )
    .tau(25)
    .seed(2)
    .priority(8);

    println!("\n=== submit three jobs over raw HTTP, distinct priorities ===");
    let doomed = submit(addr, &doomed_spec);
    // Live status: the first job reaches `Running` on the single worker.
    poll_job(addr, doomed, "Running", |body| body.contains("\"Running\""));
    println!("job {doomed} (priority 0): Running");
    let low = submit(addr, &low_spec);
    let high = submit(addr, &high_spec);
    let queued = poll_job(addr, high, "Queued", |body| body.contains("\"Queued\""));
    assert!(
        queued.contains("\"report\": null"),
        "no report while queued"
    );
    println!("job {low} (priority 3): Queued | job {high} (priority 8): Queued");

    println!("\n=== cancel the running job mid-flight ===");
    let (code, reply) = http_request(addr, "DELETE", &format!("/jobs/{doomed}"), None).unwrap();
    assert_eq!(code, 200, "{reply}");
    let cancelled_body = poll_job(addr, doomed, "Cancelled", |body| {
        body.contains("\"Cancelled\"")
    });
    assert!(
        cancelled_body.contains("\"outcome\""),
        "a mid-run cancel keeps the partial result: {cancelled_body}"
    );
    let cancelled = daemon.report(JobId(doomed)).expect("terminal report");
    assert!(
        cancelled.ledger.total_tasks() > 0,
        "the job was genuinely mid-run when cancelled"
    );
    println!(
        "job {doomed}: Cancelled after {} logical tasks (partial result kept)",
        cancelled.ledger.total_tasks()
    );

    println!("\n=== survivors complete in priority order ===");
    poll_job(addr, high, "Done", |body| body.contains("\"Done\""));
    poll_job(addr, low, "Done", |body| body.contains("\"Done\""));
    daemon.drain();
    assert_eq!(
        daemon.finished_order(),
        vec![JobId(doomed), JobId(high), JobId(low)],
        "priority 8 must run before priority 3"
    );
    println!("finished order: {:?} (8 before 3)", daemon.finished_order());

    println!("\n=== watch: stream job {high}'s life story, keep the socket ===");
    // One keep-alive connection: the chunked ndjson replay of the job's
    // trace (submit → scheduled → done), the terminal status line, and
    // then a plain request on the very same socket — the stream ends, the
    // connection survives.
    let mut client = HttpClient::connect(addr).expect("connect");
    let (code, stream) = client
        .request("GET", &format!("/jobs/{high}/watch"), None)
        .expect("GET /jobs/{id}/watch");
    assert_eq!(code, 200, "{stream}");
    for phase in ["\"submit\"", "\"scheduled\"", "\"done\""] {
        assert!(
            stream.contains(phase),
            "the watch replays the {phase} trace event: {stream}"
        );
    }
    assert!(
        stream
            .lines()
            .last()
            .is_some_and(|l| l == format!("{{\"id\": {high}, \"status\": \"done\"}}")),
        "the stream ends with the terminal status line: {stream}"
    );
    let (code, _) = client.request("GET", "/stats", None).expect("reuse");
    assert_eq!(code, 200, "the connection must be reusable after a watch");
    println!(
        "job {high}: {} ndjson lines streamed, terminal status delivered, socket reused",
        stream.lines().count()
    );

    println!("\n=== byte-identity: daemon reports == scoped run() reports ===");
    let mut scoped = AuditService::new(config());
    scoped.submit(low_spec);
    scoped.submit(high_spec);
    let (scoped_report, _source) = scoped.run(SharedTruthSource::new(Arc::clone(&data)));
    for (daemon_id, scoped_id, name) in [
        (low, 0u64, "ngo/slice-audit"),
        (high, 1, "lab/urgent-audit"),
    ] {
        let from_daemon = daemon.report(JobId(daemon_id)).unwrap();
        let from_scoped = scoped_report.job(JobId(scoped_id)).unwrap();
        assert_eq!(
            normalized(&from_daemon),
            normalized(from_scoped),
            "{name}: daemon and scoped reports must be byte-identical"
        );
        println!(
            "{name:<18} covered={:?}  tasks={}  — identical via daemon and scoped run",
            from_daemon.outcome.as_ref().unwrap().covered(),
            from_daemon.ledger.total_tasks()
        );
    }

    println!("\n=== submit-to-first-result latency under load ===");
    // Load the daemon with four more audits, then race a priority-9 probe
    // past them.
    let slice = 1_500;
    for i in 0..4 {
        submit(
            addr,
            &JobSpec::new(
                format!("background-{i}"),
                pool[i * slice..(i + 1) * slice].to_vec(),
                AuditKind::GroupCoverage {
                    target: target.clone(),
                },
            )
            .tau(30)
            .seed(10 + i as u64)
            .priority(5),
        );
    }
    let probe_spec = JobSpec::new(
        "probe",
        pool[7_500..].to_vec(),
        AuditKind::GroupCoverage {
            target: target.clone(),
        },
    )
    .tau(25)
    .seed(2)
    .priority(9);
    let started = Instant::now();
    let probe = submit(addr, &probe_spec);
    poll_job(addr, probe, "Done", |body| body.contains("\"Done\""));
    let probe_ms = started.elapsed().as_millis() as u64;
    println!("priority-9 probe: first result after {probe_ms} ms under 4-job load");

    println!("\n=== telemetry: human summary, /metrics, /trace ===");
    let (code, _stats_body) = http_request(addr, "GET", "/stats", None).unwrap();
    assert_eq!(code, 200);
    // The raw DaemonStats JSON is still on /stats; what a human wants is
    // the telemetry plane's digest of the same run.
    println!("{}", daemon.telemetry().human_summary());
    let (code, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    assert!(metrics.contains("audit_jobs_submitted_total"), "{metrics}");
    let prom_lines = metrics
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .count();
    println!("GET /metrics: {prom_lines} Prometheus samples");
    let (code, trace) = http_request(addr, "GET", &format!("/trace/{doomed}"), None).unwrap();
    assert_eq!(code, 200);
    assert!(trace.contains("\"cancelled\""), "{trace}");
    println!("GET /trace/{doomed}: cancelled job's phase timeline served");

    println!("\n=== clean shutdown ===");
    daemon.drain();
    server.shutdown();
    let (summary, _source) = daemon.shutdown().expect("first shutdown succeeds");
    assert_eq!(summary.jobs.len(), 8, "3 demo + 4 background + 1 probe");
    assert!(
        daemon.shutdown().is_none(),
        "shutdown is idempotent: the daemon is gone"
    );
    assert!(
        daemon.submit(probe_spec).is_err(),
        "submissions after shutdown are refused"
    );
    println!(
        "shutdown clean: {} jobs, {} crowd tasks, {} store hits",
        summary.jobs.len(),
        summary.crowd_tasks,
        summary.reuse.hits
    );

    println!("\n=== durability: restart from disk, re-ask nothing ===");
    let data_dir = std::env::temp_dir().join(format!("daemon_audit_store_{}", std::process::id()));
    std::fs::remove_dir_all(&data_dir).ok();
    let durable_config = || ServiceConfig {
        data_dir: Some(data_dir.clone()),
        ..config()
    };
    let durable_spec = || {
        JobSpec::new(
            "durable/slice-audit",
            pool[6_000..7_500].to_vec(),
            AuditKind::GroupCoverage {
                target: target.clone(),
            },
        )
        .tau(25)
        .seed(1)
    };
    let payer = AuditDaemon::start(durable_config(), SharedTruthSource::new(Arc::clone(&data)));
    let paid_id = payer.submit(durable_spec()).expect("valid spec");
    payer.drain();
    let paid = payer.report(paid_id).expect("terminal report");
    assert!(paid.crowd_tasks > 0, "the first run pays the crowd");
    payer
        .shutdown()
        .expect("durable shutdown cuts a final snapshot");

    let restarted = Arc::new(AuditDaemon::start(
        durable_config(),
        SharedTruthSource::new(Arc::clone(&data)),
    ));
    let export_server = HttpServer::serve("127.0.0.1:0", Arc::clone(&restarted)).expect("bind");
    let replay_id = restarted.submit(durable_spec()).expect("valid spec");
    restarted.drain();
    let replayed = restarted.report(replay_id).expect("terminal report");
    assert_eq!(
        replayed.crowd_tasks, 0,
        "a recovered daemon re-asks nothing for committed facts"
    );
    assert_eq!(
        replayed.outcome.as_ref().map(|o| o.covered()),
        paid.outcome.as_ref().map(|o| o.covered()),
        "recovery never changes a verdict"
    );
    let (code, export) =
        http_request(export_server.local_addr(), "GET", "/store/export", None).unwrap();
    assert_eq!(code, 200);
    assert!(export.contains("\"labels\""), "{export}");
    println!(
        "restart: {} crowd tasks paid once, 0 re-asked; /store/export served {} bytes",
        paid.crowd_tasks,
        export.len()
    );
    export_server.shutdown();
    restarted.shutdown().expect("restarted daemon shuts down");
    std::fs::remove_dir_all(&data_dir).ok();

    let section = json_object(vec![
        ("jobs_total", Value::UInt(summary.jobs.len() as u64)),
        ("probe_priority", Value::UInt(9)),
        ("probe_background_jobs", Value::UInt(4)),
        ("probe_first_result_ms", Value::UInt(probe_ms)),
        (
            "round_latency_us",
            Value::UInt(ROUND_LATENCY.as_micros() as u64),
        ),
        ("crowd_tasks", Value::UInt(summary.crowd_tasks)),
        ("store_hits", Value::UInt(summary.reuse.hits)),
    ]);
    update_json_report(bench_daemon_path(), "daemon_audit", section)
        .expect("write BENCH_daemon.json");
    println!(
        "daemon metrics recorded in {}",
        bench_daemon_path().display()
    );
}
