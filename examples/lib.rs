//! Shared helpers for the runnable examples.
//!
//! The real content lives in the sibling binaries:
//!
//! * `quickstart` — one group, one dataset, a perfect oracle: the minimal
//!   end-to-end use of `group_coverage`.
//! * `dataset_audit` — a full intersectional audit (gender × race) of a
//!   simulated face-image dataset, reporting MUPs.
//! * `classifier_assisted` — using a pre-trained (simulated) gender
//!   classifier to cut the crowd bill, on the paper's Table 2 settings.
//! * `crowd_platform_tour` — the crowdsourcing substrate itself: worker
//!   pools, quality control regimes, truth inference, and what they do to
//!   answer quality.
//! * `budgeted_audit` — budget caps and graceful `Exhausted` outcomes.
//! * `concurrent_audits` — nine tenants share one platform through the
//!   scoped service: latency overlap + cross-job reuse wins.
//! * `giant_audit` — one high-arity audit scaled inside itself (store
//!   shards + intra-job parallelism).
//! * `daemon_audit` — the long-lived daemon behind its HTTP/JSON API:
//!   prioritized submissions, live statuses, a mid-run cancellation and a
//!   byte-identity check against the scoped run.
//!
//! Run any of them with `cargo run -p cvg-examples --bin <name>`.

/// Formats a dollar amount for example output.
pub fn dollars(x: f64) -> String {
    format!("${x:.2}")
}

/// Formats a percentage for example output.
pub fn percent(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting_helpers() {
        assert_eq!(super::dollars(1.234), "$1.23");
        assert_eq!(super::percent(0.0136), "1.36%");
    }
}
