//! Budgeted audit: price a study under different reward schemes, pick the
//! cost-optimal set-query size, run the audit, and turn the discovered
//! MUPs into an acquisition plan that repairs the dataset.
//!
//! Exercises the paper's §8 future-work direction (variable pricing) and
//! the coverage-resolution companion problem.
//!
//! ```sh
//! cargo run -p cvg-examples --bin budgeted_audit
//! ```

use coverage_core::acquisition::full_repair_plan;
use coverage_core::mup::count_full_groups;
use coverage_core::prelude::*;
use dataset_sim::DatasetBuilder;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let schema = AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").expect("attribute"),
        Attribute::binary("skin", "light", "dark").expect("attribute"),
    ])
    .expect("schema");
    let mut rng = SmallRng::seed_from_u64(2024);
    // male-light, male-dark, female-light, female-dark.
    let dataset = DatasetBuilder::new(schema.clone())
        .counts(&[5200, 30, 4700, 18])
        .build(&mut rng);
    let tau = 50;

    // 1. Choose the set-query size for the marketplace's pricing.
    let scheme = CostScheme::per_image(0.02, 0.002);
    let n = optimal_subset_size(&scheme, dataset.len(), tau, 200);
    println!("pricing: $0.02 base + $0.002/image ⇒ optimal set size n = {n}");

    // 2. Run the intersectional audit at that size.
    let mut engine = Engine::with_point_batch(PerfectSource::new(&dataset), n);
    let cfg = MultipleConfig {
        tau,
        n,
        ..MultipleConfig::default()
    };
    let report =
        intersectional_coverage(&mut engine, &dataset.all_ids(), &schema, &cfg, &mut rng).unwrap();
    let ledger = *engine.ledger();
    println!(
        "audit: {} tasks, ${:.2} under this scheme",
        ledger.total_tasks(),
        scheme.total_cost(&ledger, n)
    );
    println!("MUPs found:");
    for m in &report.mups {
        let cov = report.coverage_of(m).expect("in lattice");
        println!("  {:<16} count {}", schema.pattern_display(m), cov.count);
    }

    // 3. Plan the repair: how many objects of which subgroups to acquire.
    //    (Counts come from the audit itself: uncovered cells carry exact
    //    counts; covered cells only need a ≥ τ stand-in.)
    let mut counts = count_full_groups(dataset.labels(), &schema);
    // In a real deployment you would use report.full_groups counts; the
    // audit's exact counts for uncovered cells match ground truth:
    for r in &report.full_groups {
        if r.count_exact {
            assert_eq!(counts[&r.group], r.count, "audit counts are exact");
        }
    }
    // Covering only the MUPs would surface their uncovered children as new
    // MUPs, so repair the whole uncovered region.
    let plan = full_repair_plan(&schema, &counts, tau);
    println!(
        "\nacquisition plan ({} objects): {}",
        plan.total(),
        plan.describe(&schema)
    );

    // 4. Verify the plan: apply it and re-derive MUPs.
    for (cell, k) in &plan.additions {
        *counts.entry(*cell).or_insert(0) += k;
    }
    let remaining = mups_from_counts(&schema, &counts, tau);
    println!(
        "after acquisition: {} MUPs remain {}",
        remaining.len(),
        if remaining.is_empty() { "✓" } else { "✗" }
    );
}
