//! A tour of the crowdsourcing substrate: worker pools, quality-control
//! regimes, and truth inference — and what each does to answer quality.
//!
//! ```sh
//! cargo run -p cvg-examples --bin crowd_platform_tour
//! ```

use coverage_core::prelude::*;
use crowd_sim::{DawidSkene, MTurkSim, PoolConfig, QualityControl, WorkerPool};
use dataset_sim::{binary_dataset, Placement};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(3);
    let dataset = binary_dataset(2000, 260, Placement::Shuffled, &mut rng);
    let female = Target::group(
        dataset
            .schema()
            .pattern(&[("gender", "female")])
            .expect("gender"),
    );

    println!("-- quality-control regimes on a mixed worker pool --\n");
    for (name, qc) in [
        ("majority vote only", QualityControl::majority_vote_only()),
        (
            "qualification test + MV",
            QualityControl::with_qualification(),
        ),
        ("rating filter + MV", QualityControl::with_rating()),
    ] {
        let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
        let sim = MTurkSim::new(&dataset, dataset.schema().clone(), workers, qc, 5);
        let eligible = sim.eligible_workers();
        let mut engine = Engine::with_point_batch(sim, 50);
        let out = group_coverage(
            &mut engine,
            &dataset.all_ids(),
            &female,
            50,
            50,
            &DncConfig::default(),
        )
        .unwrap();
        let stats = *engine.source().stats();
        println!("{name}:");
        println!("  eligible workers:        {eligible}/100");
        println!(
            "  verdict:                 {}",
            if out.covered {
                "covered ✓"
            } else {
                "uncovered ✗"
            }
        );
        println!(
            "  HITs:                    {}",
            engine.ledger().total_tasks()
        );
        println!(
            "  individual answer error: {:.2}% (paper observed 1.36%)",
            100.0 * stats.individual_error_rate()
        );
        println!(
            "  aggregated answer error: {:.2}%\n",
            100.0 * stats.aggregated_error_rate()
        );
    }

    println!("-- truth inference: majority vote vs Dawid–Skene --\n");
    // 300 yes/no tasks answered by 2 good workers and 3 near-spammers.
    let accuracies = [0.95, 0.93, 0.55, 0.5, 0.45];
    let truths: Vec<bool> = (0..300).map(|_| rng.gen_bool(0.5)).collect();
    let mut answers = Vec::new();
    for (t, truth) in truths.iter().enumerate() {
        for (w, acc) in accuracies.iter().enumerate() {
            let correct = rng.gen_bool(*acc);
            answers.push((t, w, if correct { *truth } else { !*truth }));
        }
    }
    let mut votes: Vec<Vec<bool>> = vec![Vec::new(); truths.len()];
    for (t, _, a) in &answers {
        votes[*t].push(*a);
    }
    let mv_correct = votes
        .iter()
        .zip(&truths)
        .filter(|(v, t)| crowd_sim::majority_vote(v) == **t)
        .count();
    let ds = DawidSkene::fit(truths.len(), accuracies.len(), &answers, 25);
    let ds_correct = ds
        .decisions()
        .iter()
        .zip(&truths)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "majority vote accuracy: {:.1}%",
        100.0 * mv_correct as f64 / 300.0
    );
    println!(
        "Dawid–Skene accuracy:   {:.1}%",
        100.0 * ds_correct as f64 / 300.0
    );
    println!(
        "estimated worker sensitivities: {:?}",
        ds.sensitivity
            .iter()
            .map(|s| (s * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
