//! Classifier-assisted coverage: when a pre-trained gender classifier is
//! available, how much crowd work does it save — and what happens when its
//! precision collapses on the minority group?
//!
//! Reproduces two contrasting rows of the paper's Table 2 side by side.
//!
//! ```sh
//! cargo run -p cvg-examples --bin classifier_assisted
//! ```

use classifier_sim::{BinaryRates, NoisyBinaryPredictor};
use coverage_core::prelude::*;
use dataset_sim::{binary_dataset, Placement};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn audit(name: &str, females: usize, males: usize, accuracy: f64, precision: f64) {
    let mut rng = SmallRng::seed_from_u64(11);
    let dataset = binary_dataset(females + males, females, Placement::Shuffled, &mut rng);
    let female = Target::group(
        dataset
            .schema()
            .pattern(&[("gender", "female")])
            .expect("gender"),
    );

    // Calibrate the simulated classifier to its published numbers.
    let rates = BinaryRates::from_accuracy_precision(accuracy, precision, females, males)
        .expect("feasible metrics");
    let predictor = NoisyBinaryPredictor::new(female.clone(), rates);
    let predicted = predictor.predict_pool_exact(&dataset, &dataset.all_ids(), &mut rng);
    let confusion = predictor.evaluate(&dataset, &dataset.all_ids(), &predicted);

    println!("=== {name} ===");
    println!(
        "classifier: accuracy {:.1}%, precision on female {:.1}%, |G| = {}",
        100.0 * confusion.accuracy(),
        100.0 * confusion.precision(),
        predicted.len()
    );

    // Classifier-Coverage.
    let mut engine = Engine::with_point_batch(PerfectSource::new(&dataset), 50);
    let out = classifier_coverage(
        &mut engine,
        &dataset.all_ids(),
        &predicted,
        &female,
        &ClassifierConfig::default(),
        &mut rng,
    )
    .unwrap();
    println!(
        "Classifier-Coverage: strategy {:?}, verdict {}, {} HITs",
        out.strategy,
        if out.covered { "covered" } else { "uncovered" },
        out.tasks.total_tasks()
    );

    // Standalone Group-Coverage for comparison.
    let mut engine = Engine::with_point_batch(PerfectSource::new(&dataset), 50);
    group_coverage(
        &mut engine,
        &dataset.all_ids(),
        &female,
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    println!(
        "Group-Coverage alone: {} HITs\n",
        engine.ledger().total_tasks()
    );
}

fn main() {
    // A nearly-perfect-precision classifier: the reverse-question
    // partitioning verifies whole chunks at once.
    audit(
        "FERET 403F/591M — DeepFace(opencv): high precision",
        403,
        591,
        0.7957,
        0.995,
    );
    // A high-accuracy but 8%-precision classifier: "accuracy is not
    // precision" — the predicted set is mostly males, and the heuristic
    // falls back to labeling.
    audit(
        "UTKFace 20F/2980M — DeepFace(opencv): precision collapse",
        20,
        2980,
        0.9653,
        0.08,
    );
}
