//! Shared fixtures for the cross-crate integration tests (under
//! `tests/tests/`).

use coverage_core::prelude::*;
use dataset_sim::Dataset;

/// The `female` target for a single-binary-gender schema.
pub fn female() -> Target {
    Target::group(Pattern::parse("1").unwrap())
}

/// Asserts a coverage verdict against a dataset's ground truth.
pub fn assert_verdict(data: &Dataset, target: &Target, tau: usize, covered: bool) {
    let truth = data.count(target) >= tau;
    assert_eq!(
        covered,
        truth,
        "verdict {covered} disagrees with ground truth count {} (tau {tau})",
        data.count(target)
    );
}
