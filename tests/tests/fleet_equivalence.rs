//! The fleet-equivalence test plane (ISSUE 10's headline).
//!
//! The contract: a fleet of N cooperating daemons — consistent-hash
//! placement, anti-entropy fact exchange, availability-first degradation
//! — is a pure *throughput* construct. Specifically:
//!
//! * **Verdict identity.** An M-node fleet (M ∈ {1,2,3,4}) running a
//!   nine-tenant workload spanning all five audit drivers produces
//!   verdicts byte-identical to a single node running the same workload,
//!   for any M — proptested over pool density, tau and seed.
//! * **Spend dominance.** With the anti-entropy exchange on, the fleet's
//!   total crowd bill never exceeds the same nodes run in *isolation*
//!   (same placement, no fact exchange): shipped facts can only turn
//!   crowd questions into memo hits.
//! * **Chaos composition.** Killing one node mid-run degrades locality,
//!   never progress: the router forwards around the hole (counted by
//!   `audit_fleet_forwarded_total`), resubmitted jobs finish with correct
//!   verdicts, survivors' spend stays bounded, and `/readyz` shows the
//!   dead peer without flipping `ready`.
//! * **Restart recovery.** A crashed node recovers its fact base from its
//!   own WAL before rejoining: the re-run of its workload spends zero.

use coverage_core::prelude::*;
use coverage_service::fleet::{FleetJobId, FleetNode, FleetRouter};
use coverage_service::http::http_request;
use coverage_service::{AuditKind, JobSpec, JobStatus, ServiceConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic pseudo-random two-attribute labeling (gender × skin) —
/// the `scaleout_equivalence` fixture.
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(99991);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        let a = u8::from(next() % 100 < density_pct);
        let b = u8::from(next() % 100 < 50);
        labels.push(Labels::new(&[a, b]));
    }
    VecGroundTruth::new(labels)
}

fn female() -> Target {
    Target::group(Pattern::parse("1X").unwrap())
}

fn schema() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").unwrap(),
        Attribute::binary("skin", "light", "dark").unwrap(),
    ])
    .unwrap()
}

/// Nine tenants, one job each, cycling through the paper's five drivers —
/// every driver appears at least once and no two tenants share a name
/// prefix, so placement exercises the tenant-load tie-breaker too.
fn workload(truth: &VecGroundTruth, tau: usize) -> Vec<JobSpec> {
    let pool = truth.all_ids();
    (0..9)
        .map(|i| {
            let slice = pool.len() / 9;
            let spec = match i % 5 {
                0 => JobSpec::new(
                    format!("tenant-{i}/group"),
                    pool.clone(),
                    AuditKind::GroupCoverage { target: female() },
                ),
                1 => JobSpec::new(
                    format!("tenant-{i}/base"),
                    pool[i * slice..(i + 1) * slice].to_vec(),
                    AuditKind::BaseCoverage { target: female() },
                ),
                2 => JobSpec::new(
                    format!("tenant-{i}/multiple"),
                    pool.clone(),
                    AuditKind::MultipleCoverage {
                        groups: vec![Pattern::parse("0X").unwrap(), Pattern::parse("1X").unwrap()],
                    },
                ),
                3 => JobSpec::new(
                    format!("tenant-{i}/intersectional"),
                    pool.clone(),
                    AuditKind::IntersectionalCoverage { schema: schema() },
                ),
                _ => JobSpec::new(
                    format!("tenant-{i}/classifier"),
                    pool.clone(),
                    AuditKind::ClassifierCoverage {
                        target: female(),
                        predicted: pool[i * slice..(i + 1) * slice].to_vec(),
                    },
                ),
            };
            spec.tau(tau).seed(i as u64)
        })
        .collect()
}

/// Polls `f` every millisecond until it returns `Some`, bounded by a
/// generous timeout so a broken fleet fails the test instead of hanging.
fn poll_until<T>(mut f: impl FnMut() -> Option<T>) -> T {
    for _ in 0..60_000 {
        if let Some(value) = f() {
            return value;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("polling timed out after 60s");
}

/// The verdict of one finished job: its serialized outcome. Status must
/// be `Done` — anything else is a test failure, not a verdict.
fn verdict(report: &coverage_service::JobReport) -> String {
    assert_eq!(report.status, JobStatus::Done, "{}", report.to_json());
    serde_json::to_string(report.outcome.as_ref().unwrap()).unwrap()
}

fn node_config(anti_entropy_ms: u64) -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        anti_entropy_ms,
        ..ServiceConfig::default()
    }
}

/// Starts `m` fleet nodes over `truth`, optionally `synced` by the
/// anti-entropy exchange, routes the nine-tenant workload through a
/// [`FleetRouter`], and returns `(verdicts by job name, total crowd
/// spend)` after a clean shutdown of every node.
fn run_fleet(
    m: usize,
    synced: bool,
    truth: &Arc<VecGroundTruth>,
    tau: usize,
) -> (BTreeMap<String, String>, u64) {
    let nodes: Vec<_> = (0..m)
        .map(|i| {
            FleetNode::start(
                format!("node{i}"),
                "127.0.0.1:0",
                node_config(20),
                SharedTruthSource::new(Arc::clone(truth)),
            )
            .unwrap()
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(FleetNode::addr).collect();
    if synced && m > 1 {
        for (i, node) in nodes.iter().enumerate() {
            let peers: Vec<SocketAddr> = (0..m).filter(|j| *j != i).map(|j| addrs[j]).collect();
            node.join(peers);
        }
    }
    let router = FleetRouter::new(addrs, 32);
    let placed: Vec<(String, FleetJobId)> = workload(truth, tau)
        .into_iter()
        .map(|spec| {
            let id = router.submit(&spec).unwrap();
            (spec.name, id)
        })
        .collect();
    router.drain();
    let verdicts: BTreeMap<String, String> = placed
        .into_iter()
        .map(|(name, id)| {
            let report = poll_until(|| router.report(id).unwrap());
            (name, verdict(&report))
        })
        .collect();
    let spend: u64 = nodes
        .into_iter()
        .map(|node| node.shutdown().unwrap().0.crowd_tasks)
        .sum();
    (verdicts, spend)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline property: any fleet topology M ∈ {1,2,3,4} is
    /// verdict-identical to a single node across all five drivers, and
    /// the synced fleet never outspends the same nodes run in isolation.
    #[test]
    fn fleet_is_verdict_identical_and_never_outspends_isolated_nodes(
        m in 1usize..5,
        density_pct in 5u64..40,
        tau in 3usize..14,
        seed in 0u64..500,
    ) {
        let truth = Arc::new(synth_truth(315, density_pct, seed));
        let (single_verdicts, _) = run_fleet(1, false, &truth, tau);
        let (fleet_verdicts, fleet_spend) = run_fleet(m, true, &truth, tau);
        let (isolated_verdicts, isolated_spend) = run_fleet(m, false, &truth, tau);
        prop_assert_eq!(&fleet_verdicts, &single_verdicts,
            "an {}-node synced fleet moved a verdict", m);
        prop_assert_eq!(&isolated_verdicts, &single_verdicts,
            "{} isolated nodes moved a verdict", m);
        prop_assert!(
            fleet_spend <= isolated_spend,
            "anti-entropy must never increase the crowd bill: \
             fleet={fleet_spend} isolated={isolated_spend}"
        );
    }
}

/// Chaos composition: killing one of three peers mid-run (the seeded
/// schedule: the victim is whichever node the first job landed on) leaves
/// a fleet that still completes every job with correct verdicts. The
/// router forwards the victim's resubmitted jobs around the hole, the
/// survivors' `/readyz` shows the dead peer without flipping `ready`,
/// and the survivors' total spend stays within twice the single-node
/// bill (the duplicated facts are bounded by what the victim knew).
#[test]
fn killing_a_peer_mid_run_degrades_locality_never_progress() {
    let truth = Arc::new(synth_truth(420, 25, 7));
    let tau = 8;
    let (baseline, single_spend) = run_fleet(1, false, &truth, tau);

    // Three synced nodes, slowed enough that the kill lands mid-run.
    let mut nodes: Vec<Option<FleetNode<SharedTruthSource<VecGroundTruth>>>> = (0..3)
        .map(|i| {
            let config = ServiceConfig {
                round_latency: Duration::from_millis(3),
                ..node_config(15)
            };
            Some(
                FleetNode::start(
                    format!("node{i}"),
                    "127.0.0.1:0",
                    config,
                    SharedTruthSource::new(Arc::clone(&truth)),
                )
                .unwrap(),
            )
        })
        .collect();
    let addrs: Vec<SocketAddr> = nodes
        .iter()
        .map(|node| node.as_ref().unwrap().addr())
        .collect();
    for (i, node) in nodes.iter().enumerate() {
        let peers: Vec<SocketAddr> = (0..3).filter(|j| *j != i).map(|j| addrs[j]).collect();
        node.as_ref().unwrap().join(peers);
    }
    let router = FleetRouter::new(addrs.clone(), 32);
    let placed: Vec<(JobSpec, FleetJobId)> = workload(&truth, tau)
        .into_iter()
        .map(|spec| {
            let id = router.submit(&spec).unwrap();
            (spec, id)
        })
        .collect();

    // The seeded schedule: kill the node that got the first job, the
    // moment it is actually executing something.
    let victim = placed[0].1.node;
    poll_until(|| (nodes[victim].as_ref().unwrap().daemon().stats().running > 0).then_some(()));
    nodes[victim].take().unwrap().kill();

    // A survivor's readiness shows the hole without leaving rotation.
    let survivor = (0..3).find(|i| *i != victim).unwrap();
    poll_until(|| {
        let (code, body) = http_request(addrs[survivor], "GET", "/readyz", None).unwrap();
        assert_eq!(code, 200, "a dead peer must not flip ready: {body}");
        (body.contains(&format!("\"peer\": \"{}\"", addrs[victim]))
            && body.contains("\"state\": \"down\""))
        .then_some(())
    });

    // Resubmit the victim's jobs; the router's fallback places each on a
    // survivor and counts the detour.
    let forwarded_before = router.telemetry().fleet_forwarded_total();
    let rerouted: Vec<(String, FleetJobId)> = placed
        .iter()
        .filter(|(_, id)| id.node == victim)
        .map(|(spec, _)| (spec.name.clone(), router.submit(spec).unwrap()))
        .collect();
    assert!(!rerouted.is_empty(), "the victim must have owned some jobs");
    for (name, id) in &rerouted {
        assert_ne!(id.node, victim, "job {name} was re-placed on the corpse");
    }
    assert!(
        router.telemetry().fleet_forwarded_total() > forwarded_before,
        "forwarding around a dead owner must tick audit_fleet_forwarded_total"
    );

    // Every job — survivor-placed originals plus reroutes — finishes with
    // the baseline verdict.
    router.drain();
    let mut verdicts: BTreeMap<String, String> = BTreeMap::new();
    for (spec, id) in placed.iter().filter(|(_, id)| id.node != victim) {
        let report = poll_until(|| router.report(*id).unwrap());
        verdicts.insert(spec.name.clone(), verdict(&report));
    }
    for (name, id) in &rerouted {
        let report = poll_until(|| router.report(*id).unwrap());
        verdicts.insert(name.clone(), verdict(&report));
    }
    assert_eq!(verdicts, baseline, "a mid-run kill moved a verdict");

    // Bounded extra spend: the survivors may re-buy at most what died
    // with the victim, so their combined bill stays within twice the
    // single-node bill.
    let survivor_spend: u64 = nodes
        .into_iter()
        .flatten()
        .map(|node| node.shutdown().unwrap().0.crowd_tasks)
        .sum();
    assert!(
        survivor_spend <= 2 * single_spend,
        "survivors overspent: {survivor_spend} vs single-node {single_spend}"
    );
}

/// A fresh scratch directory under the system temp dir; unique per call
/// so concurrent tests never share state.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cvg-fleet-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Restart recovery: a node killed mid-fleet recovers its shard from its
/// own WAL — re-running its workload spends zero — and a *fresh* peer
/// joining the exchange converges to the same facts without paying the
/// crowd either (the full-sync rounds ship everything eventually).
#[test]
fn a_restarted_node_recovers_from_its_wal_and_spends_zero() {
    let truth = Arc::new(synth_truth(400, 22, 13));
    let dir = scratch_dir("restart");
    let config = || ServiceConfig {
        data_dir: Some(dir.clone()),
        ..node_config(10)
    };
    let spec = workload(&truth, 9).remove(0);

    // First life: run one job with the WAL on, then crash (no final
    // snapshot — `kill` drops the daemon without a graceful shutdown).
    let node = FleetNode::start(
        "node0",
        "127.0.0.1:0",
        config(),
        SharedTruthSource::new(Arc::clone(&truth)),
    )
    .unwrap();
    let first = node.daemon().submit(spec.clone()).unwrap();
    node.daemon().drain();
    let first_report = node.daemon().report(first).unwrap();
    assert!(first_report.crowd_tasks > 0, "{}", first_report.to_json());
    let facts_before = node.daemon().export_store();
    node.kill();

    // Second life, same data_dir: the shard comes back from the WAL
    // before the node rejoins, so the re-run buys nothing.
    let node = FleetNode::start(
        "node0",
        "127.0.0.1:0",
        config(),
        SharedTruthSource::new(Arc::clone(&truth)),
    )
    .unwrap();
    let recovered = node.daemon().export_store();
    assert!(
        recovered.delta_since(&facts_before).is_empty()
            && facts_before.delta_since(&recovered).is_empty(),
        "WAL replay must reconstruct the exact fact base: \
         before={} after={}",
        facts_before.fact_count(),
        recovered.fact_count()
    );
    let again = node.daemon().submit(spec.clone()).unwrap();
    node.daemon().drain();
    let again_report = node.daemon().report(again).unwrap();
    assert_eq!(
        verdict(&again_report),
        verdict(&first_report),
        "recovery moved the verdict"
    );
    assert_eq!(again_report.crowd_tasks, 0, "{}", again_report.to_json());

    // A fresh, empty peer joins the exchange: anti-entropy ships it the
    // recovered facts, after which it too can run the job for free.
    let fresh = FleetNode::start(
        "node1",
        "127.0.0.1:0",
        node_config(10),
        SharedTruthSource::new(Arc::clone(&truth)),
    )
    .unwrap();
    node.join(vec![fresh.addr()]);
    fresh.join(vec![node.addr()]);
    let want = facts_before.fact_count();
    poll_until(|| (fresh.daemon().export_store().fact_count() >= want).then_some(()));
    let echoed = fresh.daemon().submit(spec).unwrap();
    fresh.daemon().drain();
    let echoed_report = fresh.daemon().report(echoed).unwrap();
    assert_eq!(verdict(&echoed_report), verdict(&first_report));
    assert_eq!(echoed_report.crowd_tasks, 0, "{}", echoed_report.to_json());
    assert!(
        fresh
            .daemon()
            .telemetry()
            .render_prometheus()
            .contains("audit_fleet_deltas_total{peer=\"node0\"}"),
        "the delta counter must name the sending peer"
    );

    fresh.shutdown().unwrap();
    node.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
