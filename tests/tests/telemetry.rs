//! The telemetry plane's hard invariant: observing an audit must not
//! change it. With telemetry on or off, every field of every [`JobReport`]
//! except the wall-clock measurements (`wall_ms`, `phases_ms`) is
//! byte-identical — across all five audit drivers. Plus the plane's own
//! mechanics: log-scale histogram bucket boundaries, trace-ring wraparound
//! with monotone sequence numbers, and `/events?since=` resumption across
//! a wrap over a real socket.

use coverage_core::prelude::*;
use coverage_service::http::{http_request, HttpServer};
use coverage_service::{
    AuditDaemon, AuditKind, AuditService, JobSpec, JobStatus, ServiceConfig, Telemetry,
};
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Serialize, Value};

fn dataset(seed: u64) -> dataset_sim::Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    binary_dataset(900, 70, Placement::Shuffled, &mut rng)
}

fn platform(data: &dataset_sim::Dataset, seed: u64) -> MTurkSim<'_, dataset_sim::Dataset> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    MTurkSim::new_deterministic(
        data,
        AttributeSchema::single_binary("attr", "majority", "minority"),
        workers,
        QualityControl::with_rating(),
        seed,
    )
}

/// One job per audit driver, so the identity claim covers every algorithm.
fn workload(data: &dataset_sim::Dataset, tau: usize) -> Vec<JobSpec> {
    let pool = data.all_ids();
    let schema = AttributeSchema::single_binary("attr", "majority", "minority");
    let male = female().negated();
    vec![
        JobSpec::new(
            "t/group",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(tau)
        .seed(1),
        JobSpec::new(
            "t/base",
            pool[..250].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(tau.min(20))
        .seed(2),
        JobSpec::new(
            "u/multiple",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![male.patterns()[0], female().patterns()[0]],
            },
        )
        .tau(tau)
        .seed(3),
        JobSpec::new(
            "u/intersectional",
            pool.clone(),
            AuditKind::IntersectionalCoverage { schema },
        )
        .tau(tau)
        .seed(4),
        JobSpec::new(
            "v/classifier",
            pool.clone(),
            AuditKind::ClassifierCoverage {
                target: female(),
                predicted: pool[..120].to_vec(),
            },
        )
        .tau(tau)
        .seed(5),
    ]
}

/// Adapter so a bare [`Value`] can go through `serde_json::to_string`.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Serializes a report with the fields that telemetry is *allowed* to
/// differ on dropped. `wall_ms`/`phases_ms` are wall-clock measurements
/// and always excluded. With more than one worker, `crowd_tasks` and
/// `reuse` are additionally schedule-dependent (which questions the shared
/// store answers from facts depends on arrival order — see
/// `service_concurrency`), so the single-worker property pins them and the
/// multi-worker property does not.
fn normalized(report: &coverage_service::JobReport, workers: usize) -> String {
    let Value::Object(fields) = report.to_value() else {
        panic!("JobReport must serialize to an object");
    };
    let stripped: Vec<(String, Value)> = fields
        .into_iter()
        .filter(|(key, _)| {
            key != "wall_ms"
                && key != "phases_ms"
                && (workers == 1 || (key != "crowd_tasks" && key != "reuse"))
        })
        .collect();
    serde_json::to_string(&Raw(Value::Object(stripped))).unwrap()
}

fn run(seed: u64, tau: usize, workers: usize, telemetry: bool) -> Vec<String> {
    let data = dataset(seed);
    let mut service = AuditService::new(ServiceConfig {
        workers,
        telemetry,
        ..ServiceConfig::default()
    });
    for spec in workload(&data, tau) {
        service.submit(spec);
    }
    let (report, _) = service.run(platform(&data, seed));
    report
        .jobs
        .iter()
        .map(|job| normalized(job, workers))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The read-only invariant, pinned as a property: for any seed and τ,
    /// running the five-driver workload with telemetry on yields
    /// byte-identical reports (modulo wall-clock fields) to running it
    /// with telemetry off. Single worker, so *every* remaining field —
    /// including the shared-store reuse accounting — must match.
    #[test]
    fn telemetry_never_changes_reports(
        seed in 0u64..1000,
        tau in 5usize..60,
    ) {
        let with = run(seed, tau, 1, true);
        let without = run(seed, tau, 1, false);
        prop_assert_eq!(with.len(), without.len());
        for (on, off) in with.iter().zip(&without) {
            prop_assert_eq!(on, off);
        }
    }

    /// Under real concurrency the schedule-independent fields (status,
    /// outcome, ledger, error) still cannot feel the telemetry plane.
    #[test]
    fn telemetry_never_changes_outcomes_concurrently(
        seed in 0u64..1000,
        tau in 5usize..60,
        workers in 2usize..4,
    ) {
        let with = run(seed, tau, workers, true);
        let without = run(seed, tau, workers, false);
        prop_assert_eq!(with.len(), without.len());
        for (on, off) in with.iter().zip(&without) {
            prop_assert_eq!(on, off);
        }
    }
}

/// Histogram boundaries are powers of two: a value of exactly 2^k lands in
/// the `le=2^k` bucket, and the percentile reports that bucket's upper
/// bound (exact max for the overflow bucket).
#[test]
fn histogram_boundaries_via_public_surface() {
    let telemetry = Telemetry::new(16);
    for v in [1, 2, 3, 4, 5, 1024, 1025] {
        telemetry.record_queue_wait_ms(v);
    }
    let rendered = telemetry.render_prometheus();
    // 1 → le=1; 2 → le=2; 3,4 → le=4; 5 → le=8 (cumulative counts).
    assert!(
        rendered.contains("audit_queue_wait_ms_bucket{le=\"1\"} 1"),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_queue_wait_ms_bucket{le=\"2\"} 2"),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_queue_wait_ms_bucket{le=\"4\"} 4"),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_queue_wait_ms_bucket{le=\"8\"} 5"),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_queue_wait_ms_bucket{le=\"1024\"} 6"),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_queue_wait_ms_bucket{le=\"2048\"} 7"),
        "{rendered}"
    );
    // p50 of the seven samples sits in the le=4 bucket; p100 in le=2048.
    assert_eq!(telemetry.queue_wait_percentile_ms(50.0), 4);
    assert_eq!(telemetry.queue_wait_percentile_ms(100.0), 2048);
}

/// Overflowing the trace ring keeps sequence numbers monotone and evicts
/// strictly oldest-first.
#[test]
fn ring_wraparound_is_monotone_and_oldest_first() {
    let telemetry = Telemetry::new(8);
    for i in 0..30u64 {
        telemetry.trace(Some(i), "tick", || format!("event {i}"));
    }
    let (events, next) = telemetry.events_since(0);
    assert_eq!(events.len(), 8, "ring holds exactly its capacity");
    assert_eq!(next, 30);
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (22..30).collect::<Vec<u64>>());
    // A cursor inside the surviving window resumes exactly there.
    let (tail, _) = telemetry.events_since(27);
    assert_eq!(tail.len(), 3);
    assert_eq!(tail[0].seq, 27);
}

/// `/events?since=` resumption across a wrap, over a real socket: a slow
/// consumer that slept through a wrap resumes at the oldest surviving
/// event — a visible gap in `seq`, never a duplicate or an out-of-order
/// delivery.
#[test]
fn events_endpoint_resumes_across_wrap() {
    let data = dataset(7);
    let truth = std::sync::Arc::new(VecGroundTruth::new(
        (0..200)
            .map(|i| Labels::single(u8::from(i % 5 == 0)))
            .collect(),
    ));
    drop(data);
    let daemon = std::sync::Arc::new(AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            trace_capacity: 16,
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(std::sync::Arc::clone(&truth)),
    ));
    let server = HttpServer::serve("127.0.0.1:0", std::sync::Arc::clone(&daemon)).unwrap();
    let addr = server.local_addr();

    // Take the cursor while the ring is young…
    let (_, first) = http_request(addr, "GET", "/events?since=0", None).unwrap();
    let stale: u64 = cursor_of(&first);

    // …then push enough jobs through to wrap the 16-slot ring many times.
    for i in 0..12 {
        let spec = JobSpec::new(
            format!("wrap/{i}"),
            truth.all_ids(),
            AuditKind::GroupCoverage {
                target: Target::group(Pattern::parse("1").unwrap()),
            },
        )
        .tau(5);
        let body = serde_json::to_string(&spec).unwrap();
        let (code, reply) = http_request(addr, "POST", "/jobs", Some(&body)).unwrap();
        assert_eq!(code, 201, "{reply}");
    }
    daemon.drain();

    // Resuming from the stale cursor is clamped to the oldest survivor:
    // exactly the ring's capacity worth of events, monotone seq.
    let (code, reply) = http_request(addr, "GET", &format!("/events?since={stale}"), None).unwrap();
    assert_eq!(code, 200);
    let events = daemon.telemetry().events_since(stale).0;
    assert_eq!(events.len(), 16, "only the surviving window is served");
    assert!(
        events.windows(2).all(|w| w[1].seq == w[0].seq + 1),
        "seq must be strictly monotone after the wrap"
    );
    assert!(events[0].seq >= stale, "no pre-cursor replays");
    let next = cursor_of(&reply);
    // The cursor converges: reading from `next` returns nothing new.
    let (_, tail) = http_request(addr, "GET", &format!("/events?since={next}"), None).unwrap();
    assert!(tail.contains("\"events\": []"), "{tail}");

    // Every job that ran still has a terminal status; tracing never
    // interfered with execution.
    for i in 0..12u64 {
        let status = daemon.status(coverage_service::JobId(i)).unwrap();
        assert_eq!(status, JobStatus::Done, "job {i}");
    }

    server.shutdown();
    daemon.shutdown().unwrap();
}

/// Pulls the `"next"` cursor out of a pretty-printed `/events` reply.
fn cursor_of(reply: &str) -> u64 {
    let tail = reply.split("\"next\": ").nth(1).unwrap();
    tail[..tail.find(',').unwrap()].trim().parse().unwrap()
}
