//! Budget-exhaustion properties of the fallible ask path: for every one of
//! the paper's five algorithm drivers, a budget cap injected at an
//! *arbitrary* ask count must surface as `Err(Interrupted)` with
//! `AskError::BudgetExhausted` — never a panic — with (a) ledger spend
//! within the cap and (b) the partial report a prefix-consistent subset of
//! the uncapped run (same answers, same seed ⇒ the partial run is literally
//! the first `cap` questions of the full run).

use coverage_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A perfect oracle that refuses every question past `cap` answers — the
/// core-level analogue of the service's budget governor (each answered
/// question counts as one task, whatever its shape).
struct CappedSource<'a> {
    truth: &'a VecGroundTruth,
    served: u64,
    cap: u64,
}

impl<'a> CappedSource<'a> {
    fn new(truth: &'a VecGroundTruth, cap: u64) -> Self {
        Self {
            truth,
            served: 0,
            cap,
        }
    }

    fn charge(&mut self) -> Result<(), AskError> {
        if self.served >= self.cap {
            return Err(AskError::BudgetExhausted(BudgetSnapshot {
                spent: self.served,
                cap: self.cap,
                shared: false,
            }));
        }
        self.served += 1;
        Ok(())
    }
}

impl AnswerSource for CappedSource<'_> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        self.charge()?;
        Ok(PerfectSource::new(self.truth).answer_set(objects, target))
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        self.charge()?;
        Ok(self.truth.labels_of(object))
    }
}

/// Interleaved two-group dataset: `minority` positives spread through `n`.
fn truth(n: usize, minority: usize) -> VecGroundTruth {
    let labels: Vec<Labels> = (0..n)
        .map(|i| {
            let spread = n.div_ceil(minority.max(1));
            Labels::single(u8::from(
                minority > 0 && i % spread == 0 && i / spread < minority,
            ))
        })
        .collect();
    VecGroundTruth::new(labels)
}

fn female() -> Target {
    Target::group(Pattern::parse("1").unwrap())
}

fn schema() -> AttributeSchema {
    AttributeSchema::single_binary("attr", "majority", "minority")
}

fn groups() -> Vec<Pattern> {
    vec![Pattern::parse("0").unwrap(), Pattern::parse("1").unwrap()]
}

/// One algorithm run against a capped engine. Returns the `Ok` report and
/// partial report as JSON (for cross-run comparison) plus the raw pieces
/// the prefix checks need.
enum RunOutput {
    Completed {
        json: String,
    },
    Interrupted {
        error: AskError,
        witnesses: Option<Vec<ObjectId>>,
        group_results_json: Option<Vec<(String, String)>>,
        mups: Option<Vec<Pattern>>,
        count: usize,
    },
}

fn run_algorithm(
    alg: usize,
    data: &VecGroundTruth,
    tau: usize,
    n: usize,
    seed: u64,
    cap: u64,
) -> (RunOutput, u64) {
    let mut engine = Engine::with_point_batch(CappedSource::new(data, cap), n);
    let pool = data.all_ids();
    let mut rng = SmallRng::seed_from_u64(seed);
    let cfg = MultipleConfig {
        tau,
        n,
        ..MultipleConfig::default()
    };
    let out = match alg {
        0 => match base_coverage(&mut engine, &pool, &female(), tau) {
            Ok(out) => RunOutput::Completed {
                json: serde_json::to_string(&out).unwrap(),
            },
            Err(i) => RunOutput::Interrupted {
                error: i.error,
                witnesses: Some(i.partial.witnesses),
                group_results_json: None,
                mups: None,
                count: i.partial.count,
            },
        },
        1 => match group_coverage(
            &mut engine,
            &pool,
            &female(),
            tau,
            n,
            &DncConfig::with_witnesses(),
        ) {
            Ok(out) => RunOutput::Completed {
                json: serde_json::to_string(&out).unwrap(),
            },
            Err(i) => RunOutput::Interrupted {
                error: i.error,
                witnesses: Some(i.partial.witnesses),
                group_results_json: None,
                mups: None,
                count: i.partial.count,
            },
        },
        2 => match multiple_coverage(&mut engine, &pool, &groups(), &cfg, &mut rng) {
            Ok(out) => RunOutput::Completed {
                json: serde_json::to_string(&out).unwrap(),
            },
            Err(i) => RunOutput::Interrupted {
                error: i.error,
                witnesses: None,
                group_results_json: Some(
                    i.partial
                        .results
                        .iter()
                        .map(|r| {
                            (
                                serde_json::to_string(&r.group).unwrap(),
                                serde_json::to_string(r).unwrap(),
                            )
                        })
                        .collect(),
                ),
                mups: None,
                count: 0,
            },
        },
        3 => match intersectional_coverage(&mut engine, &pool, &schema(), &cfg, &mut rng) {
            Ok(out) => RunOutput::Completed {
                json: serde_json::to_string(&out).unwrap(),
            },
            Err(i) => RunOutput::Interrupted {
                error: i.error,
                witnesses: None,
                group_results_json: Some(
                    i.partial
                        .full_groups
                        .iter()
                        .map(|r| {
                            (
                                serde_json::to_string(&r.group).unwrap(),
                                serde_json::to_string(r).unwrap(),
                            )
                        })
                        .collect(),
                ),
                mups: Some(i.partial.mups),
                count: 0,
            },
        },
        _ => {
            let predicted: Vec<ObjectId> = pool
                .iter()
                .copied()
                .filter(|id| data.labels_of(*id) == Labels::single(1))
                .take(tau / 2 + 1)
                .collect();
            let ccfg = ClassifierConfig {
                tau,
                n,
                ..ClassifierConfig::default()
            };
            match classifier_coverage(&mut engine, &pool, &predicted, &female(), &ccfg, &mut rng) {
                Ok(out) => RunOutput::Completed {
                    json: serde_json::to_string(&out).unwrap(),
                },
                Err(i) => RunOutput::Interrupted {
                    error: i.error,
                    witnesses: None,
                    group_results_json: None,
                    mups: None,
                    count: i.partial.count,
                },
            }
        }
    };
    (out, engine.ledger().total_tasks())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Inject a cap at an arbitrary ask count into each of the five
    /// algorithms: no panic, `Err(BudgetExhausted)` (or clean completion
    /// identical to the uncapped run), ledger spend ≤ cap, and the partial
    /// report prefix-consistent with the uncapped run.
    #[test]
    fn budget_cut_yields_consistent_partial(
        alg in 0usize..5,
        n_total in 60usize..600,
        minority_frac in 0.0f64..0.4,
        tau in 1usize..60,
        n in 2usize..64,
        cap in 0u64..400,
        seed in 0u64..1000,
    ) {
        let minority = ((n_total as f64) * minority_frac) as usize;
        let data = truth(n_total, minority);

        // The uncapped reference run (same seed, same answers).
        let (full, _) = run_algorithm(alg, &data, tau, n, seed, u64::MAX);
        let full_json = match &full {
            RunOutput::Completed { json } => json.clone(),
            RunOutput::Interrupted { .. } => unreachable!("uncapped run cannot exhaust"),
        };

        let (capped, ledger_tasks) = run_algorithm(alg, &data, tau, n, seed, cap);

        // (b) ledger spend never exceeds the cap: set queries are 1 task
        // each and point labels amortize, so total ≤ answers served ≤ cap.
        prop_assert!(
            ledger_tasks <= cap,
            "alg {} spent {} tasks over cap {}", alg, ledger_tasks, cap
        );

        match capped {
            // Cap was generous enough: byte-identical to the uncapped run.
            RunOutput::Completed { json } => prop_assert_eq!(json, full_json),
            RunOutput::Interrupted { error, witnesses, group_results_json, mups, count } => {
                // (a) exhaustion arrives as a typed error, not a panic.
                prop_assert!(
                    matches!(error, AskError::BudgetExhausted(BudgetSnapshot { cap: c, shared: false, .. }) if c == cap),
                    "alg {} returned {:?}", alg, error
                );
                prop_assert!(count <= n_total);

                // (c) prefix consistency against the uncapped reference.
                match alg {
                    0 | 1 => {
                        // Witness-based drivers: the partial's witnesses
                        // are literally the first k of the full run's.
                        let full_witnesses = witness_list(&full_json);
                        let got = witnesses.unwrap();
                        prop_assert!(
                            got.len() <= full_witnesses.len()
                                && got[..] == full_witnesses[..got.len()],
                            "partial witnesses {:?} not a prefix of {:?}", got, full_witnesses
                        );
                    }
                    2 | 3 => {
                        // Group-verdict drivers: every group decided before
                        // the cut matches the uncapped verdict exactly.
                        for (group, verdict) in group_results_json.unwrap() {
                            prop_assert!(
                                full_json.contains(&verdict),
                                "partial verdict for {} diverged: {}", group, verdict
                            );
                        }
                        if let Some(mups) = mups {
                            // Anytime MUPs: every partial MUP is a MUP of
                            // the complete run.
                            for m in mups {
                                let tagged = serde_json::to_string(&m).unwrap();
                                prop_assert!(
                                    full_json.contains(&tagged),
                                    "partial MUP {} absent from full run", m
                                );
                            }
                        }
                    }
                    _ => {
                        // Classifier: the partial's lower bound never
                        // exceeds the group's true population.
                        prop_assert!(count <= data.count_matching(&female()));
                    }
                }
            }
        }
    }
}

/// Extracts the witness id list from a serialized `GroupCoverageOutcome`.
fn witness_list(json: &str) -> Vec<ObjectId> {
    let out: GroupCoverageOutcome = serde_json::from_str(json).unwrap();
    out.witnesses
}

/// A budget cut during the classifier's partition pass must not discard a
/// coverage proof already in hand: once the verified members reach `τ`,
/// the run completes `Ok(covered)` even though the next question was
/// refused.
#[test]
fn classifier_cut_after_tau_verified_still_covers() {
    // 200 positives at the front, all predicted with perfect precision.
    let labels: Vec<Labels> = (0..1000)
        .map(|i| Labels::single(u8::from(i < 200)))
        .collect();
    let data = VecGroundTruth::new(labels);
    let pool = data.all_ids();
    let predicted: Vec<ObjectId> = (0..200).map(ObjectId).collect();
    let cfg = ClassifierConfig {
        tau: 50,
        n: 50,
        ..ClassifierConfig::default()
    };
    // Budget: 20 sample labels + 2 partition root queries (verifying 100
    // members, past τ = 50) — the 3rd root query is refused.
    let mut engine = Engine::with_point_batch(CappedSource::new(&data, 22), 50);
    let mut rng = SmallRng::seed_from_u64(3);
    let out = classifier_coverage(&mut engine, &pool, &predicted, &female(), &cfg, &mut rng)
        .expect("answers in hand already prove coverage");
    assert!(out.covered);
    assert_eq!(out.strategy, FpElimination::Partition);
    assert!(out.verified_in_predicted >= 50);
}

/// A cancelled token interrupts every algorithm with `AskError::Cancelled`
/// before the first question — and the refusal charges nothing.
#[test]
fn pre_cancelled_token_stops_every_algorithm() {
    let data = truth(300, 40);
    let pool = data.all_ids();
    let token = CancelToken::new();
    token.cancel();
    for alg in 0..5 {
        let mut engine = Engine::with_point_batch(CappedSource::new(&data, u64::MAX), 25)
            .with_cancel_token(token.clone());
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = MultipleConfig {
            tau: 20,
            n: 25,
            ..MultipleConfig::default()
        };
        let error = match alg {
            0 => {
                base_coverage(&mut engine, &pool, &female(), 20)
                    .unwrap_err()
                    .error
            }
            1 => {
                group_coverage(&mut engine, &pool, &female(), 20, 25, &DncConfig::default())
                    .unwrap_err()
                    .error
            }
            2 => {
                multiple_coverage(&mut engine, &pool, &groups(), &cfg, &mut rng)
                    .unwrap_err()
                    .error
            }
            3 => {
                intersectional_coverage(&mut engine, &pool, &schema(), &cfg, &mut rng)
                    .unwrap_err()
                    .error
            }
            _ => {
                classifier_coverage(
                    &mut engine,
                    &pool,
                    &pool[..10],
                    &female(),
                    &ClassifierConfig {
                        tau: 20,
                        n: 25,
                        ..ClassifierConfig::default()
                    },
                    &mut rng,
                )
                .unwrap_err()
                .error
            }
        };
        assert_eq!(error, AskError::Cancelled, "alg {alg}");
        assert_eq!(engine.ledger().total_tasks(), 0, "alg {alg} charged work");
    }
}
