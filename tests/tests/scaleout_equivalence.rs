//! Scale-out equivalence: sharding the knowledge store and parallelizing
//! the super-group scan inside one audit are pure wall-clock knobs.
//!
//! The contract under test (ISSUE 4): for a consistent answer source,
//! every one of the paper's five drivers run against a **sharded**
//! [`SharedKnowledgeSource`] with an **intra-audit-parallel** scan produces
//! outcomes and logical [`TaskLedger`]s **byte-identical** to the serial,
//! single-shard baseline; and for a serial service run, the shard count
//! does not move the [`ReuseStats`]-metered crowd spend by a single task.

use coverage_core::classifier::{classifier_coverage, ClassifierConfig};
use coverage_core::prelude::*;
use coverage_service::{AuditKind, AuditService, JobSpec, JobStatus, ServiceConfig, ServiceReport};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic pseudo-random two-attribute labeling (gender × skin).
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(99991);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        let a = u8::from(next() % 100 < density_pct);
        let b = u8::from(next() % 100 < 50);
        labels.push(Labels::new(&[a, b]));
    }
    VecGroundTruth::new(labels)
}

fn schema() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").unwrap(),
        Attribute::binary("skin", "light", "dark").unwrap(),
    ])
    .unwrap()
}

fn female() -> Target {
    Target::group(Pattern::parse("1X").unwrap())
}

/// Runs the paper's five drivers back to back on ONE engine and returns
/// every outcome serialized, ready for byte comparison. `parallelism`
/// applies to the two multi-group drivers (the other three are single
/// scans by construction).
fn full_audit<S: ForkableSource>(
    engine: &mut Engine<S>,
    truth: &VecGroundTruth,
    tau: usize,
    n: usize,
    seed: u64,
    parallelism: IntraJobParallelism,
) -> Vec<String> {
    let pool = truth.all_ids();
    let target = female();
    let predicted: Vec<ObjectId> = pool
        .iter()
        .copied()
        .filter(|id| target.matches(&truth.labels_of(*id)))
        .take(3 * tau)
        .collect();
    let groups = vec![Pattern::parse("0X").unwrap(), Pattern::parse("1X").unwrap()];
    let multiple_cfg = MultipleConfig {
        tau,
        n,
        ..MultipleConfig::default()
    };
    let classifier_cfg = ClassifierConfig {
        tau,
        n,
        ..ClassifierConfig::default()
    };

    let mut outcomes = Vec::new();
    outcomes
        .push(serde_json::to_string(&base_coverage(engine, &pool, &target, tau).unwrap()).unwrap());
    outcomes.push(
        serde_json::to_string(
            &group_coverage(engine, &pool, &target, tau, n, &DncConfig::with_witnesses()).unwrap(),
        )
        .unwrap(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    outcomes.push(
        serde_json::to_string(
            &multiple_coverage_par(engine, &pool, &groups, &multiple_cfg, &mut rng, parallelism)
                .unwrap(),
        )
        .unwrap(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    outcomes.push(
        serde_json::to_string(
            &intersectional_coverage_par(
                engine,
                &pool,
                &schema(),
                &multiple_cfg,
                &mut rng,
                parallelism,
            )
            .unwrap(),
        )
        .unwrap(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    outcomes.push(
        serde_json::to_string(
            &classifier_coverage(
                engine,
                &pool,
                &predicted,
                &target,
                &classifier_cfg,
                &mut rng,
            )
            .unwrap(),
        )
        .unwrap(),
    );
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All five drivers: a sharded store plus an intra-audit-parallel scan
    /// yields outcomes and logical ledgers byte-identical to the serial
    /// single-shard baseline.
    #[test]
    fn sharded_parallel_audit_matches_serial_single_shard(
        n_total in 1usize..300,
        density_pct in 0u64..40,
        tau in 1usize..50,
        n in 1usize..64,
        seed in 0u64..1000,
        shards in 2usize..16,
        workers in 2usize..6,
    ) {
        let truth = synth_truth(n_total, density_pct, seed);

        let mut serial = Engine::with_point_batch(
            SharedKnowledgeSource::with_shards(PerfectSource::new(&truth), 1), n);
        let serial_outcomes =
            full_audit(&mut serial, &truth, tau, n, seed, IntraJobParallelism::SERIAL);

        let mut sharded = Engine::with_point_batch(
            SharedKnowledgeSource::with_shards(PerfectSource::new(&truth), shards), n);
        let sharded_outcomes =
            full_audit(&mut sharded, &truth, tau, n, seed, IntraJobParallelism(workers));

        prop_assert_eq!(&serial_outcomes, &sharded_outcomes);
        prop_assert_eq!(serial.ledger(), sharded.ledger());
        // Both layers answer every logical question exactly once.
        let a = serial.source().reuse_stats();
        let b = sharded.source().reuse_stats();
        prop_assert_eq!(a.questions(), b.questions());
    }
}

/// One high-arity audit job, submitted twice to a single-worker service —
/// once scanning serially, once sharded over 8 intra-job threads. The
/// outcome and the job's logical ledger must be byte-identical; only
/// wall-clock may move.
#[test]
fn intra_parallel_job_reports_identical_outcome() {
    let truth = synth_truth(2500, 22, 11);
    let pool = truth.all_ids();
    let run = |workers: usize| {
        let mut service = AuditService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.submit(
            JobSpec::new(
                "giant",
                pool.clone(),
                AuditKind::IntersectionalCoverage { schema: schema() },
            )
            .tau(40)
            .seed(7)
            .intra_parallelism(workers),
        );
        let (report, _) = service.run(PerfectSource::new(&truth));
        let job = report.job(coverage_service::JobId(0)).unwrap().clone();
        assert_eq!(job.status, JobStatus::Done, "{}", report.to_json());
        job
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(
        serde_json::to_string(serial.outcome.as_ref().unwrap()).unwrap(),
        serde_json::to_string(parallel.outcome.as_ref().unwrap()).unwrap(),
        "outcome must not depend on intra-job parallelism"
    );
    assert_eq!(serial.ledger, parallel.ledger);
    // The scan forked handles, so the job-level reuse tally still covers
    // every logical question the audit asked.
    assert_eq!(serial.reuse.questions(), parallel.reuse.questions());
}

/// Shard count never changes the `ReuseStats`-metered crowd spend: a
/// serial (one-worker, one-thread-per-job) service run is bitwise
/// deterministic, so 1, 2 and 8 store shards must produce the same
/// disposition tally, the same crowd bill, and the same job reports.
#[test]
fn shard_count_never_changes_metered_crowd_spend() {
    let truth = synth_truth(1800, 18, 3);
    let pool = truth.all_ids();
    let run = |store_shards: usize| -> ServiceReport {
        let mut service = AuditService::new(ServiceConfig {
            workers: 1,
            store_shards,
            ..ServiceConfig::default()
        });
        service.submit(
            JobSpec::new(
                "group",
                pool.clone(),
                AuditKind::GroupCoverage { target: female() },
            )
            .tau(30)
            .seed(1),
        );
        service.submit(
            JobSpec::new(
                "base",
                pool[..400].to_vec(),
                AuditKind::BaseCoverage { target: female() },
            )
            .tau(25)
            .seed(2),
        );
        service.submit(
            JobSpec::new(
                "lattice",
                pool.clone(),
                AuditKind::IntersectionalCoverage { schema: schema() },
            )
            .tau(35)
            .seed(3),
        );
        let (report, _) = service.run(PerfectSource::new(&truth));
        assert_eq!(report.count_status(JobStatus::Done), 3);
        report
    };
    let baseline = run(1);
    for shards in [2usize, 8] {
        let sharded = run(shards);
        assert_eq!(
            sharded.reuse, baseline.reuse,
            "{shards} shards moved the reuse tally"
        );
        assert_eq!(sharded.crowd_tasks, baseline.crowd_tasks);
        assert_eq!(sharded.total_logical, baseline.total_logical);
        for (a, b) in baseline.jobs.iter().zip(&sharded.jobs) {
            assert_eq!(a.reuse, b.reuse, "job {} reuse moved", a.name);
            assert_eq!(a.crowd_tasks, b.crowd_tasks, "job {} bill moved", a.name);
            assert_eq!(a.ledger, b.ledger, "job {} ledger moved", a.name);
        }
    }
}
