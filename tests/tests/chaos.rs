//! The chaos plane's hard invariant: under any transient fault schedule
//! that eventually permits success, the service's reports are
//! byte-identical (modulo wall-clock fields) to a fault-free run, and the
//! platform is consulted — and therefore charges — exactly as often.
//! Permanent faults must surface as typed dead letters
//! (`Failed { retries_exhausted: true }`) in bounded time, and an open
//! circuit breaker must be visible on the readiness surface without
//! taking the whole daemon out of rotation.

use coverage_core::prelude::*;
use coverage_service::{AuditDaemon, AuditKind, AuditService, JobSpec, JobStatus, ServiceConfig};
use crowd_sim::{
    FaultInjector, FaultPlan, FaultStats, MTurkSim, PlatformStats, PoolConfig, QualityControl,
    WorkerPool,
};
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::time::{Duration, Instant};

fn dataset(seed: u64) -> dataset_sim::Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    binary_dataset(400, 40, Placement::Shuffled, &mut rng)
}

/// The platform under test is seeded `PerQuestion`, so a retried question
/// returns exactly the answer it would have returned the first time —
/// the property that makes byte-identity under chaos provable at all.
fn platform(data: &dataset_sim::Dataset, seed: u64) -> MTurkSim<'_, dataset_sim::Dataset> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    MTurkSim::new_deterministic(
        data,
        AttributeSchema::single_binary("attr", "majority", "minority"),
        workers,
        QualityControl::with_rating(),
        seed,
    )
}

/// One job per audit driver, so the equivalence claim covers every
/// algorithm (names carry distinct tenants to exercise per-tenant
/// breaker and retry accounting).
fn workload(data: &dataset_sim::Dataset, tau: usize) -> Vec<JobSpec> {
    let pool = data.all_ids();
    let schema = AttributeSchema::single_binary("attr", "majority", "minority");
    let male = female().negated();
    vec![
        JobSpec::new(
            "t/group",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(tau)
        .seed(1),
        JobSpec::new(
            "t/base",
            pool[..150].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(tau.min(15))
        .seed(2),
        JobSpec::new(
            "u/multiple",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![male.patterns()[0], female().patterns()[0]],
            },
        )
        .tau(tau)
        .seed(3),
        JobSpec::new(
            "u/intersectional",
            pool.clone(),
            AuditKind::IntersectionalCoverage { schema },
        )
        .tau(tau)
        .seed(4),
        JobSpec::new(
            "v/classifier",
            pool.clone(),
            AuditKind::ClassifierCoverage {
                target: female(),
                predicted: pool[..80].to_vec(),
            },
        )
        .tau(tau)
        .seed(5),
    ]
}

/// Fast-retry service config; `max_faults` in the plans below stays at
/// `retry_max_attempts - 1`, the injector's convergence guarantee.
fn config(workers: usize) -> ServiceConfig {
    ServiceConfig {
        workers,
        retry_max_attempts: 3,
        retry_base_ms: 1,
        ..ServiceConfig::default()
    }
}

/// Adapter so a bare [`Value`] can go through `serde_json::to_string`.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Serializes a report with the fields chaos is *allowed* to differ on
/// dropped: `wall_ms`/`phases_ms` always (retries burn real time), and
/// under real concurrency additionally `crowd_tasks`/`reuse`, which are
/// schedule-dependent (see `telemetry.rs` for the same carve-out).
fn normalized(report: &coverage_service::JobReport, workers: usize) -> String {
    let Value::Object(fields) = report.to_value() else {
        panic!("JobReport must serialize to an object");
    };
    let stripped: Vec<(String, Value)> = fields
        .into_iter()
        .filter(|(key, _)| {
            key != "wall_ms"
                && key != "phases_ms"
                && (workers == 1 || (key != "crowd_tasks" && key != "reuse"))
        })
        .collect();
    serde_json::to_string(&Raw(Value::Object(stripped))).unwrap()
}

fn run(
    seed: u64,
    tau: usize,
    workers: usize,
    plan: FaultPlan,
) -> (Vec<String>, PlatformStats, FaultStats) {
    let data = dataset(seed);
    let mut service = AuditService::new(config(workers));
    for spec in workload(&data, tau) {
        service.submit(spec);
    }
    let injector = FaultInjector::new(platform(&data, seed), plan);
    let (report, injector) = service.run(injector);
    let platform_stats = *injector.inner().stats();
    let fault_stats = injector.stats();
    (
        report
            .jobs
            .iter()
            .map(|job| normalized(job, workers))
            .collect(),
        platform_stats,
        fault_stats,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The headline invariant, pinned as a property: for any seed, τ and
    /// transient fault schedule (30 % of questions fail up to twice, some
    /// deliveries duplicated), the single-worker reports are byte-identical
    /// to the fault-free run — including the ledger and reuse accounting —
    /// and the *platform* counters match exactly: a faulted attempt never
    /// reaches the platform, a retried question is charged once.
    #[test]
    fn transient_chaos_never_changes_reports(
        seed in 0u64..1000,
        fault_seed in 1u64..1000,
        tau in 5usize..40,
    ) {
        let plan = FaultPlan {
            duplicate_pct: 20,
            ..FaultPlan::transient(fault_seed, 30, 2)
        };
        let (chaotic, platform_chaotic, faults) = run(seed, tau, 1, plan);
        let (clean, platform_clean, none) = run(seed, tau, 1, FaultPlan::off());
        prop_assert_eq!(none.total(), 0);
        prop_assert_eq!(chaotic.len(), clean.len());
        for (with, without) in chaotic.iter().zip(&clean) {
            prop_assert_eq!(with, without);
        }
        prop_assert_eq!(
            platform_chaotic, platform_clean,
            "faulted attempts must not consult (or charge) the platform; got {faults:?}"
        );
    }

    /// Under real concurrency the schedule-independent fields (status,
    /// outcome, ledger, error) still cannot feel the chaos plane.
    #[test]
    fn transient_chaos_never_changes_outcomes_concurrently(
        seed in 0u64..1000,
        fault_seed in 1u64..1000,
        tau in 5usize..40,
        workers in 2usize..4,
    ) {
        let plan = FaultPlan::transient(fault_seed, 30, 2);
        let (chaotic, _, _) = run(seed, tau, workers, plan);
        let (clean, _, _) = run(seed, tau, workers, FaultPlan::off());
        prop_assert_eq!(chaotic.len(), clean.len());
        for (with, without) in chaotic.iter().zip(&clean) {
            prop_assert_eq!(with, without);
        }
    }
}

/// A plan that targets every question does inject (the equivalence
/// properties above would pass vacuously if the injector were inert).
#[test]
fn transient_plan_actually_injects() {
    let (_, _, faults) = run(3, 10, 1, FaultPlan::transient(7, 100, 2));
    assert!(faults.total() > 0, "full-rate plan must inject: {faults:?}");
    assert!(
        faults.timeouts + faults.platform_errors + faults.abandonments > 0,
        "transient kinds expected: {faults:?}"
    );
}

/// A platform outage (permanent faults on every question) dead-letters
/// every job as a *typed* terminal status in bounded time — no hangs, no
/// stringly-typed guesswork, and the error names the exhaustion.
#[test]
fn permanent_faults_dead_letter_every_job_in_bounded_time() {
    let data = dataset(11);
    let mut service = AuditService::new(config(2));
    for spec in workload(&data, 10) {
        service.submit(spec);
    }
    let started = Instant::now();
    let injector = FaultInjector::new(platform(&data, 11), FaultPlan::permanent(13, 100));
    let (report, injector) = service.run(injector);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "dead-lettering must be bounded, took {:?}",
        started.elapsed()
    );
    assert_eq!(report.jobs.len(), 5);
    for job in &report.jobs {
        assert_eq!(
            job.status,
            JobStatus::Failed {
                retries_exhausted: true
            },
            "job `{}` must dead-letter: {:?}",
            job.name,
            job.error
        );
        let error = job.error.as_deref().unwrap_or_default();
        assert!(
            error.contains("retries exhausted"),
            "job `{}`: error must name the exhaustion, got {error:?}",
            job.name
        );
    }
    assert_eq!(
        injector.inner().stats().hits_published,
        0,
        "a permanent outage serves nothing, so nothing may be charged"
    );
}

/// The breaker integration, end to end through the daemon: a permanently
/// failing tenant trips its breaker, the readiness surface reports the
/// open state (without flipping `ready` — one starved tenant is not a
/// dead service), and the telemetry plane carries the retry/fault/breaker
/// counter families.
#[test]
fn open_breaker_is_visible_on_readiness_and_metrics() {
    let truth = std::sync::Arc::new(VecGroundTruth::new(
        (0..120)
            .map(|i| Labels::single(u8::from(i % 4 == 0)))
            .collect(),
    ));
    let source = FaultInjector::new(
        SharedTruthSource::new(std::sync::Arc::clone(&truth)),
        FaultPlan::permanent(5, 100),
    );
    let daemon = AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            retry_max_attempts: 2,
            retry_base_ms: 1,
            breaker_threshold: 1,
            ..ServiceConfig::default()
        },
        source,
    );
    let id = daemon
        .submit(
            JobSpec::new(
                "noisy/outage",
                truth.all_ids(),
                AuditKind::GroupCoverage {
                    target: Target::group(Pattern::parse("1").unwrap()),
                },
            )
            .tau(5),
        )
        .unwrap();
    daemon.drain();

    assert_eq!(
        daemon.status(id).unwrap(),
        JobStatus::Failed {
            retries_exhausted: true
        }
    );
    let readiness = daemon.readiness();
    assert!(
        readiness.ready,
        "an open breaker starves one tenant, not the daemon: {readiness:?}"
    );
    assert!(readiness.dispatcher_alive);
    assert!(readiness.persistence_healthy);
    assert!(
        readiness
            .breakers
            .iter()
            .any(|b| b.tenant == "noisy" && b.state == "open"),
        "tripped breaker must be visible: {:?}",
        readiness.breakers
    );

    let rendered = daemon.telemetry().render_prometheus();
    assert!(
        rendered.contains("audit_faults_injected_total{kind="),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_breaker_state{tenant=\"noisy\"} 2"),
        "{rendered}"
    );
    assert!(
        rendered.contains("audit_retries_total{tenant=\"noisy\"}"),
        "{rendered}"
    );
    daemon.shutdown().unwrap();
}
