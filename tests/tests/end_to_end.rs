//! End-to-end integration: dataset substrate → crowd substrate → coverage
//! algorithms → reports.

use coverage_core::prelude::*;
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use dataset_sim::{binary_dataset, catalogs, DatasetBuilder, Placement};
use integration_tests::{assert_verdict, female};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The Table 1 headline: Group-Coverage decides the FERET slice with a
/// noisy crowd in a fraction of the baseline's tasks, and lands under the
/// paper's (log10) upper bound.
#[test]
fn feret_crowd_run_beats_baseline_and_bound() {
    let mut rng = SmallRng::seed_from_u64(99);
    let data = catalogs::feret_215_1307(&mut rng);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    let sim = MTurkSim::new(
        &data,
        data.schema().clone(),
        workers.clone(),
        QualityControl::with_rating(),
        4,
    );
    let mut engine = Engine::with_point_batch(sim, 50);
    let out = group_coverage(
        &mut engine,
        &data.all_ids(),
        &female(),
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    assert_verdict(&data, &female(), 50, out.covered);
    let gc_tasks = engine.ledger().total_tasks();
    let bound = group_coverage_upper_bound(data.len(), 50, 50, LogBase::Ten);
    assert!(
        (gc_tasks as f64) <= bound,
        "{gc_tasks} tasks exceed the paper bound {bound}"
    );

    let sim = MTurkSim::new(
        &data,
        data.schema().clone(),
        workers,
        QualityControl::with_rating(),
        5,
    );
    let mut engine = Engine::with_point_batch(sim, 50);
    base_coverage(&mut engine, &data.all_ids(), &female(), 50).unwrap();
    let base_tasks = engine.ledger().total_tasks();
    assert!(
        gc_tasks * 3 < base_tasks,
        "Group-Coverage ({gc_tasks}) should be far below Base-Coverage ({base_tasks})"
    );
}

/// Multiple-Coverage on a crowd: verdicts survive worker noise under the
/// rating-filter regime.
#[test]
fn multiple_coverage_on_noisy_crowd() {
    let mut rng = SmallRng::seed_from_u64(5);
    let data = dataset_sim::multi_group_dataset(&[4850, 80, 40, 30], &mut rng);
    let groups: Vec<Pattern> = (0..4).map(|v| Pattern::single(1, 0, v as u8)).collect();
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    let sim = MTurkSim::new(
        &data,
        data.schema().clone(),
        workers,
        QualityControl::with_rating(),
        8,
    );
    let mut engine = Engine::with_point_batch(sim, 50);
    let report = multiple_coverage(
        &mut engine,
        &data.all_ids(),
        &groups,
        &MultipleConfig::default(),
        &mut rng,
    )
    .unwrap();
    let covered: Vec<bool> = report.results.iter().map(|r| r.covered).collect();
    assert_eq!(covered, vec![true, true, false, false]);
}

/// Intersectional audit through the crowd agrees with offline MUPs.
#[test]
fn intersectional_crowd_audit_matches_offline_mups() {
    let schema = AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").unwrap(),
        Attribute::binary("skin", "light", "dark").unwrap(),
    ])
    .unwrap();
    let mut rng = SmallRng::seed_from_u64(21);
    let data = DatasetBuilder::new(schema.clone())
        .counts(&[900, 25, 800, 8])
        .build(&mut rng);
    let workers = WorkerPool::generate(&PoolConfig::all_reliable(30), &mut rng);
    let sim = MTurkSim::new(
        &data,
        schema.clone(),
        workers,
        QualityControl::with_rating(),
        2,
    );
    let mut engine = Engine::with_point_batch(sim, 50);
    let cfg = MultipleConfig {
        tau: 50,
        ..MultipleConfig::default()
    };
    let report =
        intersectional_coverage(&mut engine, &data.all_ids(), &schema, &cfg, &mut rng).unwrap();
    let mut got: Vec<String> = report.mups.iter().map(|m| m.to_string()).collect();
    let mut want: Vec<String> = mups_from_labels(data.labels(), &schema, 50)
        .iter()
        .map(|m| m.to_string())
        .collect();
    got.sort();
    want.sort();
    assert_eq!(got, want);
}

/// The engine's ledger prices a study exactly as the paper's fee schedule.
#[test]
fn pricing_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(1);
    let data = binary_dataset(1000, 100, Placement::Shuffled, &mut rng);
    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    group_coverage(
        &mut engine,
        &data.all_ids(),
        &female(),
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    let pricing = PricingModel::amt_five_cents();
    let wages = pricing.wages(engine.ledger());
    let total = pricing.total_cost(engine.ledger());
    assert!((total / wages - 1.2).abs() < 1e-9, "20% fee on wages");
    let per_task = 0.05 * 3.0;
    assert!((wages - engine.ledger().total_tasks() as f64 * per_task).abs() < 1e-9);
}

/// A serialized CoverageReport round-trips through JSON with its verdicts.
#[test]
fn report_roundtrip_through_json() {
    let mut rng = SmallRng::seed_from_u64(3);
    let data = binary_dataset(500, 10, Placement::Shuffled, &mut rng);
    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    let out = group_coverage(
        &mut engine,
        &data.all_ids(),
        &female(),
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    let report = CoverageReport::new(
        "roundtrip",
        data.schema().clone(),
        50,
        data.len(),
        *engine.ledger(),
        &PricingModel::amt_ten_cents(),
    )
    .with_groups(vec![GroupResult {
        group: Pattern::parse("1").unwrap(),
        covered: out.covered,
        count: out.count,
        count_exact: !out.covered,
    }]);
    let json = serde_json::to_string(&report).unwrap();
    let back: CoverageReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.groups.len(), 1);
    assert!(!back.groups[0].covered);
    assert_eq!(back.groups[0].count, 10);
}
