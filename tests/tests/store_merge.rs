//! The anti-entropy convergence invariant (ISSUE 10 satellite).
//!
//! Fleet peers exchange [`KnowledgeStore`] deltas with no coordination:
//! rounds interleave arbitrarily, full-sync rounds re-ship everything,
//! and a delta may arrive twice. Convergence therefore rests on the
//! merge being a semilattice join **for truth-consistent stores** (all
//! fleet facts derive from one ground truth, so two peers never hold
//! conflicting facts under the same key):
//!
//! * `merge(A, B) == merge(B, A)` — commutative,
//! * `merge(merge(A, B), C) == merge(A, merge(B, C))` — associative,
//! * `merge(merge(A, B), B) == merge(A, B)` and `merge(A, A) == A` —
//!   idempotent (a re-shipped delta is a no-op),
//! * `merge(A, delta_since(B, A)) == merge(A, B)` — a delta is exactly
//!   the missing facts, and `delta_since(A, A)` is empty.
//!
//! The daemon-level corollary: re-importing a store's own export moves
//! neither the fact base nor a single unit of crowd spend.

use coverage_core::prelude::*;
use coverage_service::{AuditDaemon, AuditKind, JobSpec, JobStatus, ServiceConfig};
use integration_tests::female;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random single-attribute labeling.
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        labels.push(Labels::single(u8::from(next() % 100 < density_pct)));
    }
    VecGroundTruth::new(labels)
}

/// One fact a peer might have learned, in raw generated form (the
/// vendored proptest has no `prop_oneof`, so the interpretation lives
/// here): `is_label` picks a point label of `objects[0]`, otherwise a
/// set answer over `objects` for `female()` (negated when `flip`). All
/// facts derive from the same ground truth — the fleet's setting — so no
/// two stores ever disagree under the same key.
type RawFact = (bool, Vec<usize>, bool);

fn fact_strategy(n_total: usize) -> impl Strategy<Value = RawFact> {
    (
        proptest::bool::ANY,
        proptest::collection::vec(0..n_total, 1..6),
        proptest::bool::ANY,
    )
}

/// Replays truth-consistent facts into a fresh store, the way the engine
/// records them: a `true` set answer narrows to a single matching
/// witness, a `false` one marks every asked object a non-member.
fn store_from(facts: &[RawFact], truth: &VecGroundTruth) -> KnowledgeStore {
    let mut store = KnowledgeStore::new();
    for (is_label, objects, flip) in facts {
        if *is_label {
            let object = ObjectId(objects[0] as u32);
            store.record_labels(object, truth.labels_of(object));
        } else {
            let target = if *flip { female().negated() } else { female() };
            let objects: Vec<ObjectId> = objects.iter().map(|i| ObjectId(*i as u32)).collect();
            let answer = objects
                .iter()
                .any(|id| target.matches(&truth.labels_of(*id)));
            let residual: Vec<ObjectId> = if answer {
                objects
                    .iter()
                    .copied()
                    .filter(|id| target.matches(&truth.labels_of(*id)))
                    .take(1)
                    .collect()
            } else {
                objects.clone()
            };
            store.record_set_answer(&objects, &residual, &target, answer);
        }
    }
    store
}

fn merged(a: &KnowledgeStore, b: &KnowledgeStore) -> KnowledgeStore {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The semilattice laws, over arbitrary truth-consistent fact sets.
    #[test]
    fn merge_is_a_semilattice_join_for_truth_consistent_stores(
        density_pct in 0u64..100,
        seed in 0u64..1000,
        facts_a in proptest::collection::vec(fact_strategy(40), 0..30),
        facts_b in proptest::collection::vec(fact_strategy(40), 0..30),
        facts_c in proptest::collection::vec(fact_strategy(40), 0..30),
    ) {
        let truth = synth_truth(40, density_pct, seed);
        let a = store_from(&facts_a, &truth);
        let b = store_from(&facts_b, &truth);
        let c = store_from(&facts_c, &truth);

        // Commutative: gossip order between two peers is irrelevant.
        let ab = merged(&a, &b);
        prop_assert_eq!(&ab, &merged(&b, &a));
        // Associative: three-peer exchange converges along any spanning
        // order.
        prop_assert_eq!(merged(&ab, &c), merged(&a, &merged(&b, &c)));
        // Idempotent: a full-sync round re-shipping known facts is a
        // no-op, and so is self-merge.
        prop_assert_eq!(&merged(&ab, &b), &ab);
        prop_assert_eq!(merged(&a, &a), a.clone());
        // Fact counts only grow toward the union, never past it.
        prop_assert!(ab.fact_count() >= a.fact_count().max(b.fact_count()));
        prop_assert!(ab.fact_count() <= a.fact_count() + b.fact_count());
    }

    /// `delta_since` ships exactly the missing facts: merging the delta
    /// is merging the whole store, and a self-delta is empty.
    #[test]
    fn delta_since_is_exactly_the_missing_facts(
        density_pct in 0u64..100,
        seed in 0u64..1000,
        facts_a in proptest::collection::vec(fact_strategy(40), 0..30),
        facts_b in proptest::collection::vec(fact_strategy(40), 0..30),
    ) {
        let truth = synth_truth(40, density_pct, seed);
        let a = store_from(&facts_a, &truth);
        let b = store_from(&facts_b, &truth);

        prop_assert!(a.delta_since(&a).is_empty(), "a self-delta must be empty");
        let delta = b.delta_since(&a);
        prop_assert_eq!(merged(&a, &delta), merged(&a, &b));
        // The delta never re-ships a fact the baseline already holds.
        prop_assert!(delta.fact_count() <= b.fact_count());
        let converged = merged(&a, &b);
        prop_assert!(converged.delta_since(&converged).is_empty());
    }
}

/// The daemon half: re-importing a daemon's own export is a no-op on the
/// fact base *and* on spend — the `/store/export` → `/store/import`
/// round-trip (and hence a redundant anti-entropy full sync) never
/// double-bills a fact.
#[test]
fn reimporting_an_export_moves_neither_facts_nor_spend() {
    let truth = Arc::new(synth_truth(600, 12, 5));
    let pool = truth.all_ids();
    let daemon = AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    );
    let spec = JobSpec::new(
        "t/group",
        pool,
        AuditKind::GroupCoverage { target: female() },
    )
    .tau(25)
    .seed(3);
    let first = daemon.submit(spec.clone()).unwrap();
    daemon.drain();
    let first_report = daemon.report(first).unwrap();
    assert_eq!(first_report.status, JobStatus::Done);
    assert!(first_report.crowd_tasks > 0, "{}", first_report.to_json());

    let exported = daemon.export_store();
    daemon.import_store(&exported);
    let after = daemon.export_store();
    assert!(
        after.delta_since(&exported).is_empty() && exported.delta_since(&after).is_empty(),
        "re-import must not move the fact base"
    );

    // The re-run of the same audit over the re-imported store buys
    // nothing and reaches the same verdict.
    let second = daemon.submit(spec).unwrap();
    daemon.drain();
    let second_report = daemon.report(second).unwrap();
    assert_eq!(second_report.status, JobStatus::Done);
    assert_eq!(second_report.crowd_tasks, 0, "{}", second_report.to_json());
    assert_eq!(
        serde_json::to_string(second_report.outcome.as_ref().unwrap()).unwrap(),
        serde_json::to_string(first_report.outcome.as_ref().unwrap()).unwrap(),
    );
    daemon.shutdown().unwrap();
}
