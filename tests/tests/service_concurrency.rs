//! Concurrency correctness for `coverage-service`: N jobs multiplexed
//! through the shared cache and batching dispatcher must produce
//! byte-identical outcomes and identical per-job ledgers no matter how many
//! worker threads run them — the `MTurkSim` per-question seed mode makes
//! crowd answers a pure function of the question, so scheduling order can
//! not leak into results.

use coverage_core::prelude::*;
use coverage_service::{AuditKind, AuditService, JobSpec, JobStatus, ServiceConfig, ServiceReport};
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SEED: u64 = 424_242;

fn dataset() -> dataset_sim::Dataset {
    let mut rng = SmallRng::seed_from_u64(SEED);
    binary_dataset(2_500, 180, Placement::Shuffled, &mut rng)
}

fn platform(data: &dataset_sim::Dataset) -> MTurkSim<'_, dataset_sim::Dataset> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    MTurkSim::new_deterministic(
        data,
        AttributeSchema::single_binary("attr", "majority", "minority"),
        workers,
        QualityControl::with_rating(),
        SEED,
    )
}

fn workload(data: &dataset_sim::Dataset) -> Vec<JobSpec> {
    let pool = data.all_ids();
    let schema = AttributeSchema::single_binary("attr", "majority", "minority");
    let male = female().negated();
    let mut jobs = vec![
        JobSpec::new(
            "group-50",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .seed(1),
        JobSpec::new(
            "group-120",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(120)
        .seed(2),
        JobSpec::new(
            "base-20",
            pool[..300].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(20)
        .seed(3),
        JobSpec::new(
            "multiple",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![male.patterns()[0], female().patterns()[0]],
            },
        )
        .seed(4),
        JobSpec::new(
            "intersectional",
            pool.clone(),
            AuditKind::IntersectionalCoverage { schema },
        )
        .seed(5),
        JobSpec::new(
            "classifier",
            pool.clone(),
            AuditKind::ClassifierCoverage {
                target: female(),
                predicted: pool[..150].to_vec(),
            },
        )
        .seed(6),
    ];
    // Two more tenants re-asking earlier questions: pure cache work.
    jobs.push(
        JobSpec::new(
            "group-50-again",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .seed(7),
    );
    jobs.push(
        JobSpec::new(
            "base-20-again",
            pool[..300].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(20)
        .seed(8),
    );
    jobs
}

fn run(workers: usize) -> (ServiceReport, u64) {
    let data = dataset();
    let mut service = AuditService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    for spec in workload(&data) {
        service.submit(spec);
    }
    let (report, platform) = service.run(platform(&data));
    (report, platform.stats().hits_published)
}

/// The core correctness claim: concurrent == serial, byte for byte.
#[test]
fn concurrent_equals_serial() {
    let (serial, _) = run(1);
    let (concurrent, _) = run(8);
    assert_eq!(serial.jobs.len(), concurrent.jobs.len());
    for (s, c) in serial.jobs.iter().zip(&concurrent.jobs) {
        assert_eq!(s.status, JobStatus::Done, "{}", s.name);
        assert_eq!(c.status, JobStatus::Done, "{}", c.name);
        // Outcomes must be byte-identical once serialized.
        let s_outcome = serde_json::to_string(s.outcome.as_ref().unwrap()).unwrap();
        let c_outcome = serde_json::to_string(c.outcome.as_ref().unwrap()).unwrap();
        assert_eq!(s_outcome, c_outcome, "outcome of {} diverged", s.name);
        // Each job's logical ledger is schedule-independent.
        assert_eq!(s.ledger, c.ledger, "ledger of {} diverged", s.name);
    }
    // Therefore the summed ledgers agree too.
    assert_eq!(serial.total_logical, concurrent.total_logical);
    // And exactly the same unique questions reached the platform.
    assert_eq!(serial.cache_misses, concurrent.cache_misses);
}

/// The twin jobs exercise the shared cache: the platform publishes far
/// fewer HITs than the same workload run as isolated single-job services.
#[test]
fn shared_platform_publishes_fewer_hits() {
    let (report, shared_hits) = run(4);
    assert_eq!(report.count_status(JobStatus::Done), report.jobs.len());

    let data = dataset();
    let mut isolated_hits = 0u64;
    for spec in workload(&data) {
        let mut service = AuditService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.submit(spec);
        let (_r, p) = service.run(platform(&data));
        isolated_hits += p.stats().hits_published;
    }
    assert!(
        shared_hits < isolated_hits,
        "shared platform published {shared_hits} HITs, isolated runs {isolated_hits}"
    );
    // The twin jobs alone guarantee a sizeable saving.
    assert!(
        shared_hits as f64 <= 0.9 * isolated_hits as f64,
        "saving too small: {shared_hits} vs {isolated_hits}"
    );
}

/// Outcomes routed through the service agree with auditing the ground truth
/// directly.
#[test]
fn service_verdicts_match_ground_truth() {
    let data = dataset();
    let (report, _) = run(6);
    let true_count = data.count(&female());
    for job in &report.jobs {
        match (job.name.as_str(), job.outcome.as_ref().unwrap().covered()) {
            ("group-50" | "group-50-again", Some(covered)) => {
                assert_eq!(covered, true_count >= 50, "{}", job.name)
            }
            ("group-120", Some(covered)) => assert_eq!(covered, true_count >= 120),
            ("base-20", Some(covered)) => {
                let slice_count = data.all_ids()[..300]
                    .iter()
                    .filter(|id| female().matches(&data.labels_of(**id)))
                    .count();
                assert_eq!(covered, slice_count >= 20);
            }
            _ => {}
        }
    }
}
