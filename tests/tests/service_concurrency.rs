//! Concurrency correctness for `coverage-service`: N jobs multiplexed
//! through the shared cache and batching dispatcher must produce
//! byte-identical outcomes and identical per-job ledgers no matter how many
//! worker threads run them — the `MTurkSim` per-question seed mode makes
//! crowd answers a pure function of the question, so scheduling order can
//! not leak into results.

use coverage_core::prelude::*;
use coverage_service::{
    AuditKind, AuditOutcome, AuditService, BudgetScope, JobSpec, JobStatus, ServiceConfig,
    ServiceReport,
};
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

const SEED: u64 = 424_242;

fn dataset() -> dataset_sim::Dataset {
    let mut rng = SmallRng::seed_from_u64(SEED);
    binary_dataset(2_500, 180, Placement::Shuffled, &mut rng)
}

fn platform(data: &dataset_sim::Dataset) -> MTurkSim<'_, dataset_sim::Dataset> {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let workers = WorkerPool::generate(&PoolConfig::default(), &mut rng);
    MTurkSim::new_deterministic(
        data,
        AttributeSchema::single_binary("attr", "majority", "minority"),
        workers,
        QualityControl::with_rating(),
        SEED,
    )
}

fn workload(data: &dataset_sim::Dataset) -> Vec<JobSpec> {
    let pool = data.all_ids();
    let schema = AttributeSchema::single_binary("attr", "majority", "minority");
    let male = female().negated();
    let mut jobs = vec![
        JobSpec::new(
            "group-50",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .seed(1),
        JobSpec::new(
            "group-120",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(120)
        .seed(2),
        JobSpec::new(
            "base-20",
            pool[..300].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(20)
        .seed(3),
        JobSpec::new(
            "multiple",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![male.patterns()[0], female().patterns()[0]],
            },
        )
        .seed(4),
        JobSpec::new(
            "intersectional",
            pool.clone(),
            AuditKind::IntersectionalCoverage { schema },
        )
        .seed(5),
        JobSpec::new(
            "classifier",
            pool.clone(),
            AuditKind::ClassifierCoverage {
                target: female(),
                predicted: pool[..150].to_vec(),
            },
        )
        .seed(6),
    ];
    // Two more tenants re-asking earlier questions: pure cache work.
    jobs.push(
        JobSpec::new(
            "group-50-again",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .seed(7),
    );
    jobs.push(
        JobSpec::new(
            "base-20-again",
            pool[..300].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(20)
        .seed(8),
    );
    jobs
}

fn run(workers: usize) -> (ServiceReport, u64) {
    let data = dataset();
    let mut service = AuditService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    for spec in workload(&data) {
        service.submit(spec);
    }
    let (report, platform) = service.run(platform(&data));
    (report, platform.stats().hits_published)
}

/// The core correctness claim: concurrent == serial, byte for byte.
#[test]
fn concurrent_equals_serial() {
    let (serial, _) = run(1);
    let (concurrent, _) = run(8);
    assert_eq!(serial.jobs.len(), concurrent.jobs.len());
    for (s, c) in serial.jobs.iter().zip(&concurrent.jobs) {
        assert_eq!(s.status, JobStatus::Done, "{}", s.name);
        assert_eq!(c.status, JobStatus::Done, "{}", c.name);
        // Outcomes must be byte-identical once serialized.
        let s_outcome = serde_json::to_string(s.outcome.as_ref().unwrap()).unwrap();
        let c_outcome = serde_json::to_string(c.outcome.as_ref().unwrap()).unwrap();
        assert_eq!(s_outcome, c_outcome, "outcome of {} diverged", s.name);
        // Each job's logical ledger is schedule-independent.
        assert_eq!(s.ledger, c.ledger, "ledger of {} diverged", s.name);
    }
    // Therefore the summed ledgers agree too.
    assert_eq!(serial.total_logical, concurrent.total_logical);
    // *Which* questions the shared knowledge store could answer from facts
    // depends on arrival order, so the platform-side counts may differ
    // between schedules — but never the answers (asserted byte-for-byte
    // above). In store units (one question per set query, one per label),
    // every logical question is either answered from facts or forwarded,
    // and forwarding can only shrink relative to what was asked.
    for report in [&serial, &concurrent] {
        let logical_questions =
            report.total_logical.set_queries() + report.total_logical.point_labels();
        assert_eq!(
            report.reuse.questions(),
            logical_questions,
            "every logical question is disposed of exactly once"
        );
        assert_eq!(report.reuse.hits, report.cache_hits);
        assert_eq!(report.reuse.forwarded, report.cache_misses);
        assert!(report.cache_misses <= logical_questions);
        assert!(
            report.reuse.hits > 0,
            "the twin jobs must be served from shared knowledge"
        );
    }
}

/// The twin jobs exercise the shared cache: the platform publishes far
/// fewer HITs than the same workload run as isolated single-job services.
#[test]
fn shared_platform_publishes_fewer_hits() {
    let (report, shared_hits) = run(4);
    assert_eq!(report.count_status(JobStatus::Done), report.jobs.len());

    let data = dataset();
    let mut isolated_hits = 0u64;
    for spec in workload(&data) {
        let mut service = AuditService::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        service.submit(spec);
        let (_r, p) = service.run(platform(&data));
        isolated_hits += p.stats().hits_published;
    }
    assert!(
        shared_hits < isolated_hits,
        "shared platform published {shared_hits} HITs, isolated runs {isolated_hits}"
    );
    // The twin jobs alone guarantee a sizeable saving.
    assert!(
        shared_hits as f64 <= 0.9 * isolated_hits as f64,
        "saving too small: {shared_hits} vs {isolated_hits}"
    );
}

/// Serial single-job baseline: the job's outcome JSON when run alone.
fn solo_outcome(data: &dataset_sim::Dataset, spec: JobSpec) -> String {
    let mut service = AuditService::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let id = service.submit(spec);
    let (report, _) = service.run(platform(data));
    let job = report.job(id).unwrap();
    assert_eq!(job.status, JobStatus::Done, "baseline must complete");
    serde_json::to_string(job.outcome.as_ref().unwrap()).unwrap()
}

/// Mid-run cancellation: the cancelled job reports `Cancelled` with a
/// partial report, while its sibling finishes byte-identical to a serial
/// run — a cancellation never leaks into other tenants' answers.
#[test]
fn mid_run_cancel_spares_siblings() {
    let data = dataset();
    let pool = data.all_ids();
    let victim_spec = JobSpec::new(
        "victim",
        pool.clone(),
        AuditKind::GroupCoverage { target: female() },
    )
    .tau(120)
    .seed(2);
    let sibling_spec = JobSpec::new(
        "sibling",
        pool[..1200].to_vec(),
        AuditKind::GroupCoverage { target: female() },
    )
    .tau(40)
    .seed(3);
    let sibling_baseline = solo_outcome(&data, sibling_spec.clone());

    // ~150 set queries through a 4 ms-per-round dispatcher give the victim
    // a wall time far past the 40 ms cancellation point.
    let mut service = AuditService::new(ServiceConfig {
        workers: 2,
        round_latency: Duration::from_millis(4),
        ..ServiceConfig::default()
    });
    let victim = service.submit(victim_spec);
    let sibling = service.submit(sibling_spec);
    let handle = service.cancel_handle();

    let report = std::thread::scope(|scope| {
        let runner = scope.spawn(|| {
            let (report, _) = service.run(platform(&data));
            report
        });
        std::thread::sleep(Duration::from_millis(40));
        assert!(handle.cancel(victim));
        runner.join().expect("service run panicked")
    });

    let cancelled = report.job(victim).unwrap();
    assert!(
        cancelled.status.is_cancelled(),
        "victim ended {:?}",
        cancelled.status
    );
    if let Some(AuditOutcome::Coverage(partial)) = cancelled.outcome.as_ref() {
        assert!(!partial.covered, "a cut run can never certify coverage");
        assert!(partial.count < 120);
    }

    let kept = report.job(sibling).unwrap();
    assert_eq!(kept.status, JobStatus::Done);
    let kept_json = serde_json::to_string(kept.outcome.as_ref().unwrap()).unwrap();
    assert_eq!(
        kept_json, sibling_baseline,
        "sibling outcome must be byte-identical to its serial run"
    );
}

/// Coalesced-waiter isolation: a budget-starved job failing its claimed
/// in-flight question must not poison a sibling asking the *identical*
/// question — the waiter re-claims, pays with its own (unlimited) budget
/// and finishes byte-identical to a serial run.
#[test]
fn exhausted_job_does_not_poison_identical_in_flight_question() {
    let data = dataset();
    let pool = data.all_ids();
    let make_spec = |name: &str| {
        JobSpec::new(
            name,
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(120)
        .seed(5)
    };
    let baseline = solo_outcome(&data, make_spec("baseline"));

    let mut service = AuditService::new(ServiceConfig {
        workers: 2,
        round_latency: Duration::from_millis(1),
        ..ServiceConfig::default()
    });
    let starved = service.submit(make_spec("starved").budget(5));
    let healthy = service.submit(make_spec("healthy"));
    let (report, _) = service.run(platform(&data));

    let starved_job = report.job(starved).unwrap();
    match starved_job.status {
        JobStatus::Exhausted { scope, cap, .. } => {
            assert_eq!(scope, BudgetScope::Job);
            assert_eq!(cap, 5);
        }
        other => panic!("starved job ended {other:?}"),
    }
    assert!(starved_job.crowd_tasks <= 5);

    let healthy_job = report.job(healthy).unwrap();
    assert_eq!(healthy_job.status, JobStatus::Done, "{}", report.to_json());
    let healthy_json = serde_json::to_string(healthy_job.outcome.as_ref().unwrap()).unwrap();
    assert_eq!(
        healthy_json, baseline,
        "healthy twin must match its serial run despite the sibling's failures"
    );
}

/// Cancelling one of two identical jobs: the survivor still completes with
/// serial-identical output even when the cancelled twin had questions in
/// flight that both jobs coalesced on.
#[test]
fn cancelled_twin_leaves_survivor_byte_identical() {
    let data = dataset();
    let pool = data.all_ids();
    let make_spec = |name: &str| {
        JobSpec::new(
            name,
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(120)
        .seed(7)
    };
    let baseline = solo_outcome(&data, make_spec("baseline"));

    let mut service = AuditService::new(ServiceConfig {
        workers: 2,
        round_latency: Duration::from_millis(2),
        ..ServiceConfig::default()
    });
    let doomed = service.submit(make_spec("doomed"));
    let survivor = service.submit(make_spec("survivor"));
    let handle = service.cancel_handle();

    let report = std::thread::scope(|scope| {
        let runner = scope.spawn(|| {
            let (report, _) = service.run(platform(&data));
            report
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(handle.cancel(doomed));
        runner.join().expect("service run panicked")
    });

    assert!(report.job(doomed).unwrap().status.is_cancelled());
    let survivor_job = report.job(survivor).unwrap();
    assert_eq!(survivor_job.status, JobStatus::Done);
    let survivor_json = serde_json::to_string(survivor_job.outcome.as_ref().unwrap()).unwrap();
    assert_eq!(survivor_json, baseline);
}

/// Outcomes routed through the service agree with auditing the ground truth
/// directly.
#[test]
fn service_verdicts_match_ground_truth() {
    let data = dataset();
    let (report, _) = run(6);
    let true_count = data.count(&female());
    for job in &report.jobs {
        match (job.name.as_str(), job.outcome.as_ref().unwrap().covered()) {
            ("group-50" | "group-50-again", Some(covered)) => {
                assert_eq!(covered, true_count >= 50, "{}", job.name)
            }
            ("group-120", Some(covered)) => assert_eq!(covered, true_count >= 120),
            ("base-20", Some(covered)) => {
                let slice_count = data.all_ids()[..300]
                    .iter()
                    .filter(|id| female().matches(&data.labels_of(**id)))
                    .count();
                assert_eq!(covered, slice_count >= 20);
            }
            _ => {}
        }
    }
}
