//! The connection engine under hostile framing, plus the per-tenant QoS
//! contract (ISSUE 8).
//!
//! Transport side: a single event-loop thread is subjected to slow-loris
//! pacing, pipelined bursts in one TCP segment, keep-alive idling past the
//! deadline and a mid-body disconnect — every case must end in a correct
//! response or a clean `408`/`400` close, and the loop must stay healthy
//! for the next client. QoS side: the WFQ scheduler must hand a
//! 10×-weighted tenant measurably lower queue waits without starving
//! anyone, equal weights must reproduce the PR 5 priority+aging order
//! exactly, and the submit rate gate must refuse with `429 Retry-After`.

use coverage_core::prelude::*;
use coverage_service::http::{http_request, HttpClient, HttpServer};
use coverage_service::{
    AuditDaemon, AuditKind, JobId, JobSpec, JobStatus, ServiceConfig, TenantRateLimit,
};
use integration_tests::female;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic pseudo-random single-attribute labeling.
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        labels.push(Labels::single(u8::from(next() % 100 < density_pct)));
    }
    VecGroundTruth::new(labels)
}

fn start(
    config: ServiceConfig,
    truth: &Arc<VecGroundTruth>,
) -> (
    Arc<AuditDaemon<SharedTruthSource<VecGroundTruth>>>,
    HttpServer,
    std::net::SocketAddr,
) {
    let daemon = Arc::new(AuditDaemon::start(
        config,
        SharedTruthSource::new(Arc::clone(truth)),
    ));
    let server = HttpServer::serve("127.0.0.1:0", Arc::clone(&daemon)).unwrap();
    let addr = server.local_addr();
    (daemon, server, addr)
}

fn spec(name: &str, pool: Vec<ObjectId>, tau: usize) -> JobSpec {
    JobSpec::new(name, pool, AuditKind::GroupCoverage { target: female() }).tau(tau)
}

/// Polls `f` every millisecond until it returns `Some`, bounded by a
/// generous timeout so a broken daemon fails the test instead of hanging.
fn poll_until<T>(mut f: impl FnMut() -> Option<T>) -> T {
    for _ in 0..60_000 {
        if let Some(value) = f() {
            return value;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("polling timed out after 60s");
}

/// Every adversarial framing case in sequence against **one** event-loop
/// thread: slow-loris pacing, a pipelined two-request segment, keep-alive
/// idling past the deadline, and a mid-body disconnect. Each must resolve
/// as a correct response or a clean `408`/`400` close — and after each,
/// the same single loop must serve a fresh healthy request, proving
/// nothing wedged it.
#[test]
fn adversarial_framing_cannot_wedge_a_single_event_loop() {
    let truth = Arc::new(synth_truth(100, 10, 3));
    let (daemon, server, addr) = start(
        ServiceConfig {
            workers: 1,
            event_loop_threads: 1,
            keep_alive_idle: Duration::from_millis(300),
            ..ServiceConfig::default()
        },
        &truth,
    );
    let healthy = || {
        let (code, _) = http_request(addr, "GET", "/stats", None).unwrap();
        assert_eq!(code, 200, "the event loop must stay healthy");
    };

    // 1. Slow loris: a request head trickled one byte at a time. The
    // deadline runs from the *first* byte, so pacing cannot stretch it —
    // the server answers 408 and closes while the trickle is still going.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for byte in b"GET /st" {
            // The write may start failing once the server has already
            // closed — that is the success condition, not an error.
            if stream.write_all(&[*byte]).is_err() {
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 408"),
            "slow loris must get a clean 408: {response:?}"
        );
    }
    healthy();

    // 2. Two pipelined requests in one TCP segment: both parsed and both
    // answered, in order, out of a single read.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(
                b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\nGET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        stream.flush().unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert_eq!(
            response.matches("HTTP/1.1 200").count(),
            2,
            "both pipelined requests must be answered: {response:?}"
        );
        assert!(response.contains("Connection: keep-alive"), "{response:?}");
        assert!(response.contains("Connection: close"), "{response:?}");
        assert!(
            response.contains("audit_jobs_submitted_total"),
            "{response:?}"
        );
    }
    healthy();

    // 3. Keep-alive connection idling past the deadline *between*
    // requests: the server closes silently (EOF), no error response.
    {
        let mut client = HttpClient::connect(addr).unwrap();
        let (code, _) = client.request("GET", "/stats", None).unwrap();
        assert_eq!(code, 200);
        std::thread::sleep(Duration::from_millis(700));
        let err = client
            .read_response()
            .expect_err("idle expiry must be a silent close, not a response");
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
    }
    healthy();

    // 4. Mid-body disconnect: a request that claims more body than it
    // sends, then a write-side shutdown. The half-open reader gets a clean
    // 400, then EOF.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\nhello")
            .unwrap();
        stream.flush().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "mid-body disconnect must get a clean 400: {response:?}"
        );
    }
    healthy();

    server.shutdown();
    daemon.shutdown().unwrap();
}

/// `keep_alive_max_requests` bounds reuse: the last allowed response is
/// marked `Connection: close` and the socket really closes.
#[test]
fn keep_alive_max_requests_bounds_reuse() {
    let truth = Arc::new(synth_truth(100, 10, 5));
    let (daemon, server, addr) = start(
        ServiceConfig {
            workers: 1,
            keep_alive_max_requests: 2,
            ..ServiceConfig::default()
        },
        &truth,
    );

    let mut client = HttpClient::connect(addr).unwrap();
    client.send("GET", "/stats", None).unwrap();
    let (code, headers, _) = client.read_response_with_headers().unwrap();
    assert_eq!(code, 200);
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "keep-alive"),
        "{headers:?}"
    );
    client.send("GET", "/stats", None).unwrap();
    let (code, headers, _) = client.read_response_with_headers().unwrap();
    assert_eq!(code, 200);
    assert!(
        headers
            .iter()
            .any(|(n, v)| n == "connection" && v == "close"),
        "request #2 of 2 must close: {headers:?}"
    );
    // Writing a third request into the closed socket ends in EOF or a
    // reset depending on timing — either way, no response arrives.
    let err = client
        .request("GET", "/stats", None)
        .expect_err("the connection must really be closed");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::BrokenPipe
        ),
        "{err}"
    );

    server.shutdown();
    daemon.shutdown().unwrap();
}

/// The submit rate gate over the wire: a tenant that exhausts its burst
/// gets `429` with a `Retry-After` header, other tenants are unaffected,
/// and waiting the advertised time restores admission.
#[test]
fn tenant_rate_limit_replies_429_with_retry_after() {
    let truth = Arc::new(synth_truth(400, 10, 7));
    let pool = truth.all_ids();
    let (daemon, server, addr) = start(
        ServiceConfig {
            workers: 1,
            tenant_rate_limit: Some(TenantRateLimit {
                per_second: 5,
                burst: 2,
                max_queued: None,
            }),
            ..ServiceConfig::default()
        },
        &truth,
    );

    let mut client = HttpClient::connect(addr).unwrap();
    let post = |client: &mut HttpClient, name: &str| {
        let body = serde_json::to_string(&spec(name, pool.clone(), 3)).unwrap();
        client.send("POST", "/jobs", Some(&body)).unwrap();
        client.read_response_with_headers().unwrap()
    };
    let (code, _, _) = post(&mut client, "acme/one");
    assert_eq!(code, 201);
    let (code, _, _) = post(&mut client, "acme/two");
    assert_eq!(code, 201);
    let (code, headers, body) = post(&mut client, "acme/three");
    assert_eq!(code, 429, "{body}");
    assert!(body.contains("rate limit"), "{body}");
    let retry_after: u64 = headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .expect("429 must carry Retry-After")
        .1
        .parse()
        .unwrap();
    assert!(retry_after >= 1, "{headers:?}");

    // A different tenant has its own bucket.
    let (code, _, _) = post(&mut client, "rival/one");
    assert_eq!(code, 201);
    // Waiting out the advertised delay restores admission.
    std::thread::sleep(Duration::from_secs(retry_after));
    let (code, _, body) = post(&mut client, "acme/three");
    assert_eq!(code, 201, "{body}");

    daemon.drain();
    server.shutdown();
    daemon.shutdown().unwrap();
}

/// Ten equal-priority tenants, one weighted 10×, one worker: the weighted
/// tenant's p99 queue wait must be measurably lower than the field's —
/// and every tenant must still finish (WFQ shares, never starvation).
#[test]
fn weighted_tenant_gets_lower_queue_waits_without_starving_anyone() {
    let truth = Arc::new(synth_truth(8_000, 6, 13));
    let pool = truth.all_ids();
    let (daemon, server, addr) = start(
        ServiceConfig {
            workers: 1,
            round_latency: Duration::from_millis(2),
            tenant_weights: vec![("heavy".to_string(), 10)],
            ..ServiceConfig::default()
        },
        &truth,
    );

    // No blocker: submitting 30 jobs takes microseconds while each job
    // runs for tens of milliseconds, so beyond the very first dispatch the
    // scheduler's pop order — not submission timing — determines every
    // job's wait. Queue waits then measure pure position-in-queue, with no
    // shared constant flattening the histogram buckets together.
    let tenants: Vec<String> = (0..10)
        .map(|i| {
            if i == 0 {
                "heavy".to_string()
            } else {
                format!("light-{i}")
            }
        })
        .collect();
    let slice = pool.len() / 30;
    let mut ids = Vec::new();
    for round in 0..3 {
        for (t, tenant) in tenants.iter().enumerate() {
            let k = round * tenants.len() + t;
            let jobs = spec(
                &format!("{tenant}/job-{round}"),
                pool[k * slice..(k + 1) * slice].to_vec(),
                8,
            );
            ids.push(daemon.submit(jobs).unwrap());
        }
    }
    daemon.drain();

    // No starvation: every job of every tenant ran to completion.
    for id in &ids {
        let report = daemon.report(*id).unwrap();
        assert!(report.status.is_done(), "{}", report.to_json());
    }
    // The weighted tenant's tail queue wait beats the field.
    let telemetry = daemon.telemetry();
    let heavy_p99 = telemetry.tenant_queue_wait_percentile_ms("heavy", 99.0);
    let light_p99: Vec<u64> = (1..10)
        .map(|i| telemetry.tenant_queue_wait_percentile_ms(&format!("light-{i}"), 99.0))
        .collect();
    let light_best = *light_p99.iter().min().unwrap();
    assert!(
        heavy_p99 < light_best,
        "10x-weighted tenant must see lower p99 queue wait: heavy={heavy_p99}ms lights={light_p99:?}"
    );
    // The per-tenant histograms are on the public scrape surface too.
    let (code, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(code, 200);
    assert!(
        metrics.contains("audit_tenant_queue_wait_ms_bucket{tenant=\"heavy\""),
        "{metrics}"
    );

    server.shutdown();
    daemon.shutdown().unwrap();
}

/// Satellite 6 regression: with **equal** weights configured (the WFQ
/// layer degenerates to the identity), the daemon reproduces the PR 5
/// priority+aging finished order *exactly* — same blocker, same
/// priorities, same order as `priority_orders_the_daemon_pool`.
#[test]
fn equal_weights_reproduce_pr5_finished_order() {
    let truth = Arc::new(synth_truth(6_000, 6, 11));
    let pool = truth.all_ids();
    let daemon = AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            round_latency: Duration::from_millis(2),
            tenant_weights: (0..4)
                .map(|i| (format!("tenant-{i}"), 1))
                .chain([("blocker".to_string(), 1)])
                .collect(),
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    );
    let blocker = daemon.submit(spec("blocker", pool.clone(), 40)).unwrap();
    poll_until(|| (daemon.status(blocker) == Some(JobStatus::Running)).then_some(()));
    // Queued behind it: priorities 2, 9, 9, 5 over disjoint slices — the
    // exact PR 5 scenario.
    let slice = pool.len() / 4;
    let priorities = [2u32, 9, 9, 5];
    let queued: Vec<JobId> = priorities
        .iter()
        .enumerate()
        .map(|(i, priority)| {
            daemon
                .submit(
                    spec(
                        &format!("tenant-{i}"),
                        pool[i * slice..(i + 1) * slice].to_vec(),
                        10,
                    )
                    .seed(i as u64)
                    .priority(*priority),
                )
                .unwrap()
        })
        .collect();
    daemon.drain();
    let finished = daemon.finished_order();
    assert_eq!(finished[0], blocker);
    // 9 before 9 by submission order, then 5, then 2 — byte-for-byte the
    // PR 5 expectation.
    assert_eq!(
        &finished[1..],
        &[queued[1], queued[2], queued[3], queued[0]],
        "stats: {:?}",
        daemon.stats()
    );
    daemon.shutdown().unwrap();
}

/// ISSUE 10 satellite: `tenant_weights` naming a tenant that never
/// submits ("ghost") and a tenant that only appears after config load
/// ("late") must both degrade gracefully — the ghost entry is inert and
/// the late arrival runs at weight 1. Pinned by the exact WFQ finished
/// order: with `vip` at weight 2 and `late` at the implicit weight 1,
/// three jobs each queued behind a blocker interleave as
/// `vip, late, vip, vip, late, late`.
#[test]
fn ghost_and_late_tenants_run_at_weight_one_with_pinned_order() {
    let truth = Arc::new(synth_truth(6_000, 6, 11));
    let pool = truth.all_ids();
    let daemon = AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            round_latency: Duration::from_millis(2),
            // "ghost" never submits a job; "late" submits but is absent
            // here and must fall back to weight 1.
            tenant_weights: vec![("ghost".to_string(), 9), ("vip".to_string(), 2)],
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    );
    let blocker = daemon
        .submit(spec("blocker/hold", pool.clone(), 40))
        .unwrap();
    poll_until(|| (daemon.status(blocker) == Some(JobStatus::Running)).then_some(()));
    // Three vip jobs, then three late-tenant jobs, all equal priority
    // over disjoint slices. Submission order breaks virtual-time ties,
    // so the finished order is fully determined by the weights.
    let slice = pool.len() / 6;
    let queued: Vec<JobId> = (0..6)
        .map(|i| {
            let tenant = if i < 3 { "vip" } else { "late" };
            let at = if i < 3 { i } else { i - 3 };
            daemon
                .submit(
                    spec(
                        &format!("{tenant}/job-{at}"),
                        pool[i * slice..(i + 1) * slice].to_vec(),
                        10,
                    )
                    .seed(i as u64),
                )
                .unwrap()
        })
        .collect();
    daemon.drain();
    let finished = daemon.finished_order();
    assert_eq!(finished[0], blocker);
    // Weight-2 vip vs weight-1 late: start tags interleave as
    // v(0), l(0), v(½), v(1 tie→seq), l(1), l(2) — in job terms
    // vip0, late0, vip1, vip2, late1, late2.
    assert_eq!(
        &finished[1..],
        &[queued[0], queued[3], queued[1], queued[2], queued[4], queued[5]],
        "stats: {:?}",
        daemon.stats()
    );
    daemon.shutdown().unwrap();
}
