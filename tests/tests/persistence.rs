//! The durable knowledge plane must never change an answer — it only
//! changes who pays for it.
//!
//! The contract under test (ISSUE 7):
//!
//! * a daemon **killed at an arbitrary WAL prefix** and restarted produces
//!   `JobReport`s byte-identical (modulo `wall_ms`/`phases_ms`, and the
//!   reuse/spend tally, which by design can only improve) to an
//!   uninterrupted run, across **all five drivers** — with crowd spend
//!   never higher (proptested over the cut point);
//! * running *with* persistence is byte-identical (including spend) to
//!   running without it — the WAL sink is a pure observer;
//! * `shutdown()` fsyncs the WAL and cuts a final snapshot, so a
//!   restarted daemon **forwards zero** already-answered questions;
//! * the `KnowledgeStore` serde surface round-trips: snapshot JSON and
//!   WAL replay both reconstruct the exact fact base;
//! * (ISSUE 10) the `POST /store/import` door under damage — a torn
//!   body, truncated JSON, or a daemon already shutting down — answers a
//!   structured `400`/`503` and leaves the fact base untouched.

use coverage_core::prelude::*;
use coverage_service::{AuditDaemon, AuditKind, JobId, JobReport, JobSpec, ServiceConfig};
use integration_tests::female;
use proptest::prelude::*;
use serde::{Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deterministic pseudo-random single-attribute labeling (the
/// `daemon_service` fixture).
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        labels.push(Labels::single(u8::from(next() % 100 < density_pct)));
    }
    VecGroundTruth::new(labels)
}

/// A fresh scratch directory under the system temp dir; unique per call so
/// concurrent tests (and proptest cases) never share state.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cvg-persistence-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// One job per driver — the full five-algorithm matrix, with fixed seeds
/// so any two runs over the same store state are deterministic.
fn five_driver_workload(truth: &VecGroundTruth) -> Vec<JobSpec> {
    let pool = truth.all_ids();
    let schema = AttributeSchema::single_binary("gender", "male", "female");
    vec![
        JobSpec::new(
            "base",
            pool[..pool.len() / 4].to_vec(),
            AuditKind::BaseCoverage { target: female() },
        )
        .tau(10)
        .seed(1),
        JobSpec::new(
            "group",
            pool.clone(),
            AuditKind::GroupCoverage { target: female() },
        )
        .tau(20)
        .seed(2),
        JobSpec::new(
            "multiple",
            pool.clone(),
            AuditKind::MultipleCoverage {
                groups: vec![Pattern::parse("0").unwrap(), Pattern::parse("1").unwrap()],
            },
        )
        .tau(20)
        .seed(3),
        JobSpec::new(
            "intersectional",
            pool.clone(),
            AuditKind::IntersectionalCoverage { schema },
        )
        .tau(20)
        .seed(4),
        JobSpec::new(
            "classifier",
            pool.clone(),
            AuditKind::ClassifierCoverage {
                target: female(),
                predicted: pool[..pool.len() / 8].to_vec(),
            },
        )
        .tau(20)
        .seed(5),
    ]
}

/// The verdict surface of a report: everything except wall-clock, the
/// daemon's id sequence, and the reuse/spend tally (which recovery is
/// *supposed* to improve). Status, outcome, error and the logical ledger
/// must match byte for byte.
fn verdict_surface(report: &JobReport) -> String {
    let mut report = report.clone();
    report.id = JobId(0);
    report.wall_ms = 0;
    report.phases_ms = coverage_service::PhaseDurations::default();
    report.crowd_tasks = 0;
    report.reuse = ReuseStats::default();
    report.to_json()
}

/// The *full* normalized report — only wall-clock and id removed. Used
/// where spend itself must be identical (persistence as a pure observer).
fn full_surface(report: &JobReport) -> String {
    let mut report = report.clone();
    report.id = JobId(0);
    report.wall_ms = 0;
    report.phases_ms = coverage_service::PhaseDurations::default();
    report.to_json()
}

/// Serializes a store canonically, with its (run-dependent) reuse tally
/// stripped: two stores holding the same fact base fingerprint
/// identically. Hash maps serialize as `[key, value]` pair arrays in
/// iteration order, so every all-pairs array level is sorted; genuinely
/// ordered arrays (label vectors, object lists) contain no pairs and are
/// left alone.
fn store_fingerprint(store: &KnowledgeStore) -> String {
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    fn canonical(value: Value) -> Value {
        match value {
            Value::Object(pairs) => {
                Value::Object(pairs.into_iter().map(|(k, v)| (k, canonical(v))).collect())
            }
            Value::Array(items) => {
                let mut items: Vec<Value> = items.into_iter().map(canonical).collect();
                let all_pairs = !items.is_empty()
                    && items
                        .iter()
                        .all(|item| matches!(item, Value::Array(pair) if pair.len() == 2));
                if all_pairs {
                    items.sort_by_key(|item| serde_json::to_string(&Raw(item.clone())).unwrap());
                }
                Value::Array(items)
            }
            other => other,
        }
    }
    let Value::Object(pairs) = store.to_value() else {
        panic!("a store serializes as an object");
    };
    let facts: Vec<(String, Value)> = pairs
        .into_iter()
        .filter(|(k, _)| k != "stats")
        .map(|(k, v)| (k, canonical(v)))
        .collect();
    serde_json::to_string(&Raw(Value::Object(facts))).unwrap()
}

/// Runs the workload on a fresh daemon over `truth` and returns the
/// reports plus the lifetime crowd spend. `data_dir` opts into
/// persistence; `spill` opts into the disk spill.
fn run_workload(
    truth: &Arc<VecGroundTruth>,
    workload: &[JobSpec],
    data_dir: Option<&Path>,
    spill: Option<usize>,
) -> (Vec<JobReport>, u64) {
    let daemon = start_daemon(truth, data_dir, spill);
    let reports = run_on(&daemon, workload);
    let spend = daemon.stats().crowd_tasks;
    drop(daemon); // a crash, not a shutdown: no final snapshot
    (reports, spend)
}

fn start_daemon(
    truth: &Arc<VecGroundTruth>,
    data_dir: Option<&Path>,
    spill: Option<usize>,
) -> AuditDaemon<SharedTruthSource<VecGroundTruth>> {
    AuditDaemon::start(
        ServiceConfig {
            workers: 1, // deterministic scheduling: submission order
            data_dir: data_dir.map(Path::to_path_buf),
            spill_high_watermark: spill,
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(truth)),
    )
}

fn run_on(
    daemon: &AuditDaemon<SharedTruthSource<VecGroundTruth>>,
    workload: &[JobSpec],
) -> Vec<JobReport> {
    let ids: Vec<JobId> = workload
        .iter()
        .map(|spec| daemon.submit(spec.clone()).unwrap())
        .collect();
    daemon.drain();
    ids.iter().map(|id| daemon.report(*id).unwrap()).collect()
}

/// Truncates the current-generation WAL to `permille`/1000 of its length —
/// the crash injection. A mid-frame cut leaves a torn tail the next open
/// must discard cleanly.
fn cut_wal(dir: &Path, permille: u64) -> (u64, u64) {
    let wal = fs::read_dir(dir)
        .unwrap()
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            path.file_name()?
                .to_str()?
                .starts_with("wal-")
                .then_some(path)
        })
        .max()
        .expect("a persisting daemon leaves a WAL");
    let full = fs::metadata(&wal).unwrap().len();
    let keep = full * permille / 1000;
    let file = fs::OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(keep).unwrap();
    (full, keep)
}

/// Persistence is a pure observer: with a `data_dir` (and even with the
/// disk spill squeezing the store), every report — spend and reuse tally
/// included — is byte-identical to a plain in-memory run.
#[test]
fn persistence_and_spill_never_change_a_report() {
    let truth = Arc::new(synth_truth(2_000, 9, 41));
    let workload = five_driver_workload(&truth);
    let (plain, plain_spend) = run_workload(&truth, &workload, None, None);

    let dir = scratch_dir("observer");
    let (persisted, persisted_spend) = run_workload(&truth, &workload, Some(&dir), None);
    let spill_dir = scratch_dir("observer-spill");
    let (spilled, spilled_spend) = run_workload(&truth, &workload, Some(&spill_dir), Some(64));

    for ((a, b), c) in plain.iter().zip(&persisted).zip(&spilled) {
        assert_eq!(full_surface(a), full_surface(b), "WAL changed a report");
        assert_eq!(full_surface(a), full_surface(c), "spill changed a report");
    }
    assert_eq!(plain_spend, persisted_spend);
    assert_eq!(plain_spend, spilled_spend, "spill must never re-buy a fact");
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&spill_dir);
}

/// Satellite 3: `shutdown()` fsyncs the WAL and writes a final snapshot,
/// so a restarted daemon re-asks **zero** crowd questions — every fact
/// survives the restart, and the fact base round-trips exactly.
#[test]
fn shutdown_then_restart_forwards_zero_questions() {
    let truth = Arc::new(synth_truth(2_500, 7, 13));
    let workload = five_driver_workload(&truth);
    let dir = scratch_dir("shutdown");

    let first = start_daemon(&truth, Some(&dir), None);
    let first_reports = run_on(&first, &workload);
    let exported = first.export_store();
    first.shutdown().expect("first shutdown");
    assert!(
        fs::read_dir(&dir).unwrap().any(|e| {
            e.unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("snapshot-")
        }),
        "shutdown must leave a final snapshot"
    );

    let second = start_daemon(&truth, Some(&dir), None);
    assert_eq!(
        store_fingerprint(&second.export_store()),
        store_fingerprint(&exported),
        "the recovered fact base must equal the one shut down"
    );
    let second_reports = run_on(&second, &workload);
    let stats = second.stats();
    assert_eq!(
        stats.reuse.forwarded, 0,
        "every question was already answered before the restart: {stats:?}"
    );
    assert_eq!(stats.crowd_tasks, 0, "{stats:?}");
    for (a, b) in first_reports.iter().zip(&second_reports) {
        assert_eq!(verdict_surface(a), verdict_surface(b));
    }
    second.shutdown().expect("second shutdown");
    let _ = fs::remove_dir_all(&dir);
}

/// The snapshot cadence compacts and rotates without losing a fact: a tiny
/// `snapshot_every` forces a rotation at every job boundary, and a daemon
/// crash-dropped right after still recovers the full fact base.
#[test]
fn snapshot_rotation_loses_nothing() {
    let truth = Arc::new(synth_truth(1_500, 11, 29));
    let workload = five_driver_workload(&truth);
    let dir = scratch_dir("rotation");

    let first = AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            data_dir: Some(dir.clone()),
            snapshot_every: 1, // rotate at every job boundary
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    );
    run_on(&first, &workload);
    let exported = first.export_store();
    drop(first); // crash: the last snapshot + its WAL must suffice

    let second = start_daemon(&truth, Some(&dir), None);
    assert_eq!(
        store_fingerprint(&second.export_store()),
        store_fingerprint(&exported),
    );
    run_on(&second, &workload);
    let stats = second.stats();
    assert_eq!(stats.reuse.forwarded, 0, "{stats:?}");
    let _ = fs::remove_dir_all(&dir);
}

/// `KnowledgeStore` serde round-trips through real JSON — the same path
/// `GET /store/export`, snapshots and the import door all share.
#[test]
fn knowledge_store_serde_round_trips() {
    let truth = Arc::new(synth_truth(1_200, 12, 3));
    let daemon = start_daemon(&truth, None, None);
    run_on(&daemon, &five_driver_workload(&truth));
    let store = daemon.export_store();
    assert!(!store.is_empty());
    let json = serde_json::to_string(&store).unwrap();
    let back: KnowledgeStore = serde_json::from_str(&json).unwrap();
    assert_eq!(back, store);
    assert_eq!(store_fingerprint(&back), store_fingerprint(&store));
    daemon.shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: a daemon killed at an **arbitrary WAL
    /// prefix** — any cut point, torn frames included — and restarted
    /// produces, for every one of the five drivers, a report verdict-
    /// identical to the uninterrupted run, and never spends more than it.
    /// A full prefix (nothing lost) re-asks nothing at all.
    #[test]
    fn killed_at_any_wal_prefix_recovers_equivalent_reports(
        cut_permille in 0u64..1001,
        n_total in 900usize..1_800,
        density_pct in 3u64..25,
        seed in 0u64..1_000,
    ) {
        let truth = Arc::new(synth_truth(n_total, density_pct, seed));
        let workload = five_driver_workload(&truth);
        let dir = scratch_dir("crash");

        // The uninterrupted run, persisting as it goes… then the crash:
        // the WAL keeps only an arbitrary prefix.
        let (uninterrupted, full_spend) = run_workload(&truth, &workload, Some(&dir), None);
        let (wal_len, kept) = cut_wal(&dir, cut_permille);

        let restarted = start_daemon(&truth, Some(&dir), None);
        let recovered = run_on(&restarted, &workload);
        let stats = restarted.stats();

        for (before, after) in uninterrupted.iter().zip(&recovered) {
            prop_assert_eq!(
                verdict_surface(before),
                verdict_surface(after),
                "driver {} drifted after crash recovery (wal {} -> {} bytes)",
                before.name, wal_len, kept
            );
        }
        prop_assert!(
            stats.crowd_tasks <= full_spend,
            "recovery re-bought knowledge: {} > {} (wal {} -> {} bytes)",
            stats.crowd_tasks, full_spend, wal_len, kept
        );
        if cut_permille == 1000 {
            prop_assert_eq!(
                stats.reuse.forwarded, 0,
                "a full WAL prefix answers everything: {:?}", stats
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// ISSUE 10 satellite: every way a `/store/import` can go wrong —
/// truncated JSON, a body torn mid-transfer, a daemon already shutting
/// down — must answer a structured `400`/`503` and leave the fact base
/// fingerprint-identical, with the daemon healthy for the next client.
#[test]
fn damaged_imports_leave_the_fact_base_untouched() {
    use coverage_service::http::{http_request, HttpServer};
    use std::io::{Read, Write};

    let truth = Arc::new(synth_truth(500, 15, 9));
    let daemon = Arc::new(start_daemon(&truth, None, None));
    // Buy some facts first, so "unchanged" is a non-trivial claim.
    let report = &run_on(&daemon, &five_driver_workload(&truth)[1..2])[0];
    assert!(report.crowd_tasks > 0, "{}", report.to_json());
    let fingerprint = store_fingerprint(&daemon.export_store());

    let server = HttpServer::serve("127.0.0.1:0", Arc::clone(&daemon)).unwrap();
    let addr = server.local_addr();
    let (code, full) = http_request(addr, "GET", "/store/export", None).unwrap();
    assert_eq!(code, 200);

    // Truncated JSON inside intact HTTP framing: a structured 400.
    let (code, reply) =
        http_request(addr, "POST", "/store/import", Some(&full[..full.len() / 2])).unwrap();
    assert_eq!(code, 400, "{reply}");
    assert!(reply.contains("\"error\""), "{reply}");
    assert!(reply.contains("invalid knowledge store"), "{reply}");

    // A torn body: the head promises the full export but the connection
    // dies halfway through it. The engine's contract is a clean `400`
    // close, a `408` deadline, or a silent close — never a wedged loop
    // and never a partial import.
    let mut torn = std::net::TcpStream::connect(addr).unwrap();
    torn.write_all(
        format!(
            "POST /store/import HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            full.len()
        )
        .as_bytes(),
    )
    .unwrap();
    torn.write_all(&full.as_bytes()[..full.len() / 2]).unwrap();
    torn.shutdown(std::net::Shutdown::Write).unwrap();
    let mut leftovers = String::new();
    let _ = torn.read_to_string(&mut leftovers);
    assert!(
        leftovers.is_empty()
            || leftovers.starts_with("HTTP/1.1 400")
            || leftovers.starts_with("HTTP/1.1 408"),
        "a torn import must close cleanly, got: {leftovers}"
    );

    // Neither damaged import moved a fact, and the daemon still serves.
    let (code, exported) = http_request(addr, "GET", "/store/export", None).unwrap();
    assert_eq!(code, 200);
    let after = serde_json::from_str::<KnowledgeStore>(&exported).unwrap();
    assert_eq!(
        store_fingerprint(&after),
        fingerprint,
        "a damaged import moved the fact base"
    );
    let (code, _) = http_request(addr, "GET", "/healthz", None).unwrap();
    assert_eq!(code, 200);

    // Once shutdown has begun, even a pristine import is refused with a
    // structured 503 — the door policy that keeps an import from racing
    // the teardown.
    daemon.drain();
    daemon.shutdown().unwrap();
    let (code, reply) = http_request(addr, "POST", "/store/import", Some(&full)).unwrap();
    assert_eq!(code, 503, "{reply}");
    assert!(reply.contains("\"error\""), "{reply}");

    server.shutdown();
}
