//! Reuse equivalence: the object-level `KnowledgeStore` must never change
//! an audit verdict — only reduce crowd spend.
//!
//! The contract under test (ISSUE 3): for a consistent answer source, a
//! full audit run behind a [`KnowledgeSource`] produces verdicts, counts,
//! witnesses and engine ledgers **byte-identical** to the same audit behind
//! the exact-match [`MemoizedSource`], while the number of questions that
//! reach the source only ever drops. A second battery checks the shared,
//! concurrent variant: jobs multiplexed over one [`SharedKnowledgeSource`]
//! stay byte-identical to their serial runs under any interleaving.

use coverage_core::classifier::{classifier_coverage, ClassifierConfig};
use coverage_core::multiple::{multiple_coverage, MultipleConfig};
use coverage_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic pseudo-random two-attribute labeling (gender × skin).
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        let a = u8::from(next() % 100 < density_pct);
        let b = u8::from(next() % 100 < 50);
        labels.push(Labels::new(&[a, b]));
    }
    VecGroundTruth::new(labels)
}

fn schema() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").unwrap(),
        Attribute::binary("skin", "light", "dark").unwrap(),
    ])
    .unwrap()
}

fn female() -> Target {
    Target::group(Pattern::parse("1X").unwrap())
}

/// Runs the paper's five drivers back to back on ONE engine (so knowledge
/// accumulated by one algorithm flows into the next) and returns every
/// outcome serialized, ready for byte comparison.
fn full_audit<S: AnswerSource>(
    engine: &mut Engine<S>,
    truth: &VecGroundTruth,
    tau: usize,
    n: usize,
    seed: u64,
) -> Vec<String> {
    let pool = truth.all_ids();
    let target = female();
    let predicted: Vec<ObjectId> = pool
        .iter()
        .copied()
        .filter(|id| target.matches(&truth.labels_of(*id)))
        .take(3 * tau)
        .collect();
    let groups = vec![Pattern::parse("0X").unwrap(), Pattern::parse("1X").unwrap()];
    let multiple_cfg = MultipleConfig {
        tau,
        n,
        ..MultipleConfig::default()
    };
    let classifier_cfg = ClassifierConfig {
        tau,
        n,
        ..ClassifierConfig::default()
    };

    let mut outcomes = Vec::new();
    outcomes
        .push(serde_json::to_string(&base_coverage(engine, &pool, &target, tau).unwrap()).unwrap());
    outcomes.push(
        serde_json::to_string(
            &group_coverage(engine, &pool, &target, tau, n, &DncConfig::with_witnesses()).unwrap(),
        )
        .unwrap(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    outcomes.push(
        serde_json::to_string(
            &multiple_coverage(engine, &pool, &groups, &multiple_cfg, &mut rng).unwrap(),
        )
        .unwrap(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    outcomes.push(
        serde_json::to_string(
            &intersectional_coverage(engine, &pool, &schema(), &multiple_cfg, &mut rng).unwrap(),
        )
        .unwrap(),
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    outcomes.push(
        serde_json::to_string(
            &classifier_coverage(
                engine,
                &pool,
                &predicted,
                &target,
                &classifier_cfg,
                &mut rng,
            )
            .unwrap(),
        )
        .unwrap(),
    );
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All five drivers, cross-pollinating one store: verdicts, witnesses
    /// and logical ledgers identical to the exact-match baseline, with
    /// crowd contact only ever lower.
    #[test]
    fn knowledge_store_preserves_all_verdicts(
        n_total in 1usize..350,
        density_pct in 0u64..40,
        tau in 1usize..60,
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        let truth = synth_truth(n_total, density_pct, seed);

        let mut memo = Engine::with_point_batch(
            MemoizedSource::new(PerfectSource::new(&truth)), n);
        let memo_outcomes = full_audit(&mut memo, &truth, tau, n, seed);

        let mut know = Engine::with_point_batch(
            KnowledgeSource::new(PerfectSource::new(&truth)), n);
        let know_outcomes = full_audit(&mut know, &truth, tau, n, seed);

        // Byte-identical verdicts for every driver...
        prop_assert_eq!(&memo_outcomes, &know_outcomes);
        // ...and identical logical ledgers (the engine meters what the
        // algorithms asked, not what the crowd answered).
        prop_assert_eq!(memo.ledger(), know.ledger());
        // Crowd-side spend can only shrink.
        let memo_spend = memo.source().cache_misses();
        let know_stats = know.source().reuse_stats();
        prop_assert!(
            know_stats.forwarded <= memo_spend,
            "knowledge forwarded {} > exact-match {}",
            know_stats.forwarded, memo_spend
        );
        // Consistency of the tally itself.
        prop_assert_eq!(
            know_stats.questions(),
            know.source().reuse_stats().hits + know_stats.forwarded
        );
    }

    /// Two jobs sharing one store, concurrently: each stays byte-identical
    /// to its own serial run against a raw source — no matter which job's
    /// facts arrive first.
    #[test]
    fn shared_store_jobs_match_their_serial_runs(
        n_total in 2usize..300,
        density_pct in 0u64..40,
        tau_a in 1usize..50,
        tau_b in 1usize..50,
        n in 1usize..60,
        seed in 0u64..500,
    ) {
        let truth = synth_truth(n_total, density_pct, seed);
        let pool = truth.all_ids();
        let target = female();

        // Serial baselines on raw (uncached) engines.
        let mut raw_a = Engine::with_point_batch(PerfectSource::new(&truth), n);
        let base_a = serde_json::to_string(&group_coverage(
            &mut raw_a, &pool, &target, tau_a, n, &DncConfig::with_witnesses(),
        ).unwrap()).unwrap();
        let mut raw_b = Engine::with_point_batch(PerfectSource::new(&truth), n);
        let base_b = serde_json::to_string(&base_coverage(
            &mut raw_b, &pool, &target, tau_b,
        ).unwrap()).unwrap();

        let root = SharedKnowledgeSource::new(PerfectSource::new(&truth));
        let (got_a, got_b) = std::thread::scope(|scope| {
            let job_a = {
                let src = root.clone();
                let pool = &pool;
                let target = &target;
                scope.spawn(move || {
                    let mut engine = Engine::with_point_batch(src, n);
                    serde_json::to_string(&group_coverage(
                        &mut engine, pool, target, tau_a, n, &DncConfig::with_witnesses(),
                    ).unwrap()).unwrap()
                })
            };
            let job_b = {
                let src = root.clone();
                let pool = &pool;
                let target = &target;
                scope.spawn(move || {
                    let mut engine = Engine::with_point_batch(src, n);
                    serde_json::to_string(&base_coverage(
                        &mut engine, pool, target, tau_b,
                    ).unwrap()).unwrap()
                })
            };
            (job_a.join().unwrap(), job_b.join().unwrap())
        });
        prop_assert_eq!(got_a, base_a);
        prop_assert_eq!(got_b, base_b);
    }
}

/// The headline saving, pinned deterministically: a base-coverage job's
/// labels let a sibling group-coverage job over the same pool finish with
/// strictly fewer crowd questions than the exact-match cache allows.
#[test]
fn labels_strictly_reduce_sibling_set_queries() {
    let truth = synth_truth(600, 20, 7);
    let pool = truth.all_ids();
    let target = female();

    let run = |shared_knowledge: bool| -> (String, u64) {
        // Job 1: base coverage labels a prefix of the pool.
        // Job 2: group coverage over the full pool.
        if shared_knowledge {
            let root = SharedKnowledgeSource::new(PerfectSource::new(&truth));
            let mut e1 = Engine::with_point_batch(root.clone(), 50);
            base_coverage(&mut e1, &pool[..300], &target, 40).unwrap();
            let mut e2 = Engine::with_point_batch(root.clone(), 50);
            let out =
                group_coverage(&mut e2, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
            (
                serde_json::to_string(&out).unwrap(),
                root.reuse_stats().forwarded,
            )
        } else {
            // One engine, two back-to-back jobs over the same exact-match
            // cache (the ledger is irrelevant here; only the outcome and
            // the crowd-side spend are compared).
            let mut engine =
                Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&truth)), 50);
            base_coverage(&mut engine, &pool[..300], &target, 40).unwrap();
            let out =
                group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
            (
                serde_json::to_string(&out).unwrap(),
                engine.source().cache_misses(),
            )
        }
    };

    let (memo_outcome, memo_spend) = run(false);
    let (know_outcome, know_spend) = run(true);
    assert_eq!(memo_outcome, know_outcome, "verdicts must not move");
    assert!(
        know_spend < memo_spend,
        "knowledge reuse must strictly beat exact-match: {know_spend} vs {memo_spend}"
    );
}
