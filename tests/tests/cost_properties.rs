//! Property tests on task costs across compositions and placements —
//! checking the paper's analysis (§3.2) holds for the implementation, not
//! just for hand-picked unit cases.

use coverage_core::prelude::*;
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn gc_tasks(data: &dataset_sim::Dataset, tau: usize, n: usize) -> (bool, u64) {
    let mut engine = Engine::with_point_batch(PerfectSource::new(data), n);
    let out = group_coverage(
        &mut engine,
        &data.all_ids(),
        &female(),
        tau,
        n,
        &DncConfig::default(),
    )
    .unwrap();
    (out.covered, engine.ledger().total_tasks())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The explicit worst-case envelope ⌈N/n⌉ + 2·min(f,τ)·(log2 n + 1)
    /// holds for every placement strategy.
    #[test]
    fn envelope_holds_for_all_placements(
        n_total in 100usize..4000,
        f_frac in 0.0f64..0.2,
        tau in 1usize..80,
        n in 2usize..128,
        placement_idx in 0usize..4,
        seed in 0u64..100,
    ) {
        let placement = [
            Placement::Shuffled,
            Placement::UniformSpread,
            Placement::Clustered,
            Placement::FrontLoaded,
        ][placement_idx];
        let f = ((n_total as f64) * f_frac) as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = binary_dataset(n_total, f, placement, &mut rng);
        let (covered, tasks) = gc_tasks(&data, tau, n);
        prop_assert_eq!(covered, f >= tau);
        let roots = n_total.div_ceil(n) as f64;
        let leaves = f.min(tau) as f64;
        let envelope = roots + 2.0 * leaves * ((n as f64).log2() + 1.0);
        prop_assert!(
            tasks as f64 <= envelope,
            "{} tasks > envelope {} (N={}, f={}, tau={}, n={}, {:?})",
            tasks, envelope, n_total, f, tau, n, placement
        );
    }

    /// Base-Coverage always pays at least as much as Group-Coverage on
    /// uncovered groups (where both must certify the whole pool), for n > 1.
    #[test]
    fn base_never_beats_gc_on_uncovered(
        n_total in 200usize..3000,
        f in 0usize..40,
        seed in 0u64..100,
    ) {
        let tau = 50;
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = binary_dataset(n_total, f.min(tau - 1), Placement::Shuffled, &mut rng);
        let (covered, gc) = gc_tasks(&data, tau, 50);
        prop_assert!(!covered);
        let mut engine = Engine::new(PerfectSource::new(&data));
        base_coverage(&mut engine, &data.all_ids(), &female(), tau).unwrap();
        let base = engine.ledger().total_tasks();
        prop_assert!(gc <= base, "gc {} > base {}", gc, base);
    }

    /// Clustered minorities are never more expensive than uniformly spread
    /// ones for uncovered verification: spreading maximizes the number of
    /// subtrees the d&c must open (the tightness construction of Thm 3.2).
    #[test]
    fn uniform_spread_is_adversarial(
        f in 2usize..45,
        seed in 0u64..50,
    ) {
        let n_total = 5000;
        let tau = 50;
        let mut rng = SmallRng::seed_from_u64(seed);
        let clustered = binary_dataset(n_total, f, Placement::Clustered, &mut rng);
        let spread = binary_dataset(n_total, f, Placement::UniformSpread, &mut rng);
        let (_, t_clustered) = gc_tasks(&clustered, tau, 50);
        let (_, t_spread) = gc_tasks(&spread, tau, 50);
        prop_assert!(
            t_clustered <= t_spread,
            "clustered {} > spread {} (f={})",
            t_clustered, t_spread, f
        );
    }

    /// Monotonicity in τ for a fixed uncovered dataset: certifying a higher
    /// threshold can never need fewer tasks.
    #[test]
    fn tasks_monotone_in_tau(seed in 0u64..50) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = binary_dataset(2000, 30, Placement::Shuffled, &mut rng);
        let mut last = 0u64;
        for tau in [1usize, 5, 10, 20, 31] {
            let (_, tasks) = gc_tasks(&data, tau, 50);
            prop_assert!(tasks >= last, "tau {} cost {} < previous {}", tau, tasks, last);
            last = tasks;
        }
    }

    /// The ledger's batched point accounting: labeling k objects through an
    /// engine with batch b charges exactly ceil(k/b) tasks.
    #[test]
    fn point_batching_accounting(k in 0usize..500, b in 1usize..100) {
        let labels: Vec<Labels> = (0..k.max(1)).map(|_| Labels::single(0)).collect();
        let truth = VecGroundTruth::new(labels);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), b);
        let ids: Vec<ObjectId> = (0..k as u32).map(ObjectId).collect();
        engine.ask_point_labels_batched(&ids).unwrap();
        prop_assert_eq!(engine.ledger().point_tasks(), k.div_ceil(b) as u64);
    }
}
