//! The daemon is the scoped batch, kept alive: live statuses, priority
//! scheduling and drain/shutdown must add **zero** result drift.
//!
//! The contract under test (ISSUE 5):
//!
//! * a spec run through [`AuditDaemon`] reports **byte-identically** (up
//!   to wall-clock and job id) to the same spec run through the scoped
//!   [`AuditService::run`] — whatever the submission interleaving, the
//!   priorities, or how many jobs share the daemon (proptested);
//! * the worker pool dispatches by priority with submission-order ties —
//!   observable through the daemon's finished order;
//! * [`AuditDaemon::drain`] returns only when every submitted job has a
//!   terminal report;
//! * the full HTTP loop — submit three prioritized jobs, watch
//!   `Queued → Running → terminal` live, cancel one mid-run — matches the
//!   scoped path on every surviving job.

use coverage_core::prelude::*;
use coverage_service::http::{HttpClient, HttpServer};
use coverage_service::{
    AuditDaemon, AuditKind, AuditService, JobId, JobReport, JobSpec, JobStatus, ServiceConfig,
};
use integration_tests::female;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic pseudo-random single-attribute labeling.
fn synth_truth(n_total: usize, density_pct: u64, seed: u64) -> VecGroundTruth {
    let mut labels = Vec::with_capacity(n_total);
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    for _ in 0..n_total {
        labels.push(Labels::single(u8::from(next() % 100 < density_pct)));
    }
    VecGroundTruth::new(labels)
}

/// A report with the schedule-dependent surface normalized away: wall-clock
/// always differs between runs, and the daemon keeps its own id sequence.
/// Everything else — status, outcome, ledger, crowd spend, reuse tally —
/// must match byte for byte.
fn normalized(report: &JobReport) -> String {
    let mut report = report.clone();
    report.id = JobId(0);
    report.wall_ms = 0;
    report.phases_ms = coverage_service::PhaseDurations::default();
    report.to_json()
}

/// `k` group-coverage jobs over pairwise-disjoint pool slices (disjoint so
/// per-job reuse and crowd spend cannot depend on which sibling ran first
/// — full-report byte-identity is then well-defined under any schedule).
fn disjoint_workload(truth: &VecGroundTruth, k: usize, tau: usize) -> Vec<JobSpec> {
    let pool = truth.all_ids();
    let slice = pool.len() / k;
    (0..k)
        .map(|i| {
            JobSpec::new(
                format!("tenant-{i}"),
                pool[i * slice..(i + 1) * slice].to_vec(),
                AuditKind::GroupCoverage { target: female() },
            )
            .tau(tau)
            .seed(i as u64)
        })
        .collect()
}

/// Runs the workload through the scoped batch path and returns the reports.
fn scoped_reports_on(
    truth: &Arc<VecGroundTruth>,
    workload: &[JobSpec],
    workers: usize,
) -> Vec<JobReport> {
    let mut service = AuditService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    });
    for spec in workload {
        service.submit(spec.clone());
    }
    let (report, _source) = service.run(SharedTruthSource::new(Arc::clone(truth)));
    report.jobs
}

/// Polls `f` every millisecond until it returns `Some`, bounded by a
/// generous timeout so a broken daemon fails the test instead of hanging
/// it.
fn poll_until<T>(mut f: impl FnMut() -> Option<T>) -> T {
    for _ in 0..60_000 {
        if let Some(value) = f() {
            return value;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("polling timed out after 60s");
}

/// Drain blocks until every job is terminal — reports exist the moment it
/// returns, with live statuses visible beforehand.
#[test]
fn drain_waits_for_every_report() {
    let truth = Arc::new(synth_truth(2_000, 8, 7));
    let workload = disjoint_workload(&truth, 4, 10);
    let daemon = AuditDaemon::start(
        ServiceConfig {
            workers: 2,
            round_latency: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    );
    let ids: Vec<JobId> = workload
        .iter()
        .map(|spec| daemon.submit(spec.clone()).unwrap())
        .collect();
    daemon.drain();
    for id in &ids {
        let report = daemon
            .report(*id)
            .expect("drain returned before a report landed");
        assert!(report.status.is_done(), "{}", report.to_json());
        assert_eq!(daemon.status(*id), Some(report.status));
    }
    let stats = daemon.stats();
    assert_eq!(stats.finished, ids.len() as u64);
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0);
    let (summary, _) = daemon.shutdown().unwrap();
    assert_eq!(summary.jobs.len(), ids.len());
}

/// With one worker pinned by a blocker job, queued jobs finish in strict
/// (priority, submission-order) sequence — the scheduler's core promise.
#[test]
fn priority_orders_the_daemon_pool() {
    let truth = Arc::new(synth_truth(6_000, 6, 11));
    let pool = truth.all_ids();
    let daemon = AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            round_latency: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    );
    // The blocker occupies the only worker while the rest queue up.
    let blocker = daemon
        .submit(
            JobSpec::new(
                "blocker",
                pool.clone(),
                AuditKind::GroupCoverage { target: female() },
            )
            .tau(40),
        )
        .unwrap();
    poll_until(|| (daemon.status(blocker) == Some(JobStatus::Running)).then_some(()));
    // Queued behind it: priorities 2, 9, 9, 5 over disjoint slices.
    let specs = disjoint_workload(&truth, 4, 10);
    let priorities = [2u32, 9, 9, 5];
    let queued: Vec<JobId> = specs
        .into_iter()
        .zip(priorities)
        .map(|(spec, priority)| daemon.submit(spec.priority(priority)).unwrap())
        .collect();
    daemon.drain();
    let finished = daemon.finished_order();
    assert_eq!(finished[0], blocker);
    // 9 before 9 by submission order, then 5, then 2.
    assert_eq!(
        &finished[1..],
        &[queued[1], queued[2], queued[3], queued[0]],
        "stats: {:?}",
        daemon.stats()
    );
    daemon.shutdown().unwrap();
}

/// The acceptance loop, end to end over the real socket: three prioritized
/// jobs over HTTP, live `Running`/`Queued` statuses, one cancelled
/// mid-run, drained — and every surviving report byte-identical to the
/// scoped `run()` path.
#[test]
fn http_jobs_match_scoped_run_with_mid_run_cancel() {
    let truth = Arc::new(synth_truth(9_000, 5, 23));
    let pool = truth.all_ids();
    let daemon = Arc::new(AuditDaemon::start(
        ServiceConfig {
            workers: 1,
            round_latency: Duration::from_millis(2),
            ..ServiceConfig::default()
        },
        SharedTruthSource::new(Arc::clone(&truth)),
    ));
    let server = HttpServer::serve("127.0.0.1:0", Arc::clone(&daemon)).unwrap();
    let addr = server.local_addr();
    // One keep-alive connection carries the whole session: submissions,
    // status polls, the cancel, the final listing.
    let client = std::cell::RefCell::new(HttpClient::connect(addr).unwrap());
    let post = |spec: &JobSpec| {
        let (code, body) = client
            .borrow_mut()
            .request("POST", "/jobs", Some(&serde_json::to_string(spec).unwrap()))
            .unwrap();
        assert_eq!(code, 201, "{body}");
    };

    // Job 0: a long, low-priority audit over the first two thirds of the
    // dataset — the one we will cancel mid-run.
    let doomed = JobSpec::new(
        "doomed",
        pool[..6_000].to_vec(),
        AuditKind::GroupCoverage { target: female() },
    )
    .tau(200)
    .priority(0);
    // Jobs 1 and 2: disjoint slices of the remaining third, distinct
    // priorities — the survivors compared against the scoped path.
    let low = JobSpec::new(
        "survivor-low",
        pool[6_000..7_500].to_vec(),
        AuditKind::GroupCoverage { target: female() },
    )
    .tau(15)
    .seed(1)
    .priority(3);
    let high = JobSpec::new(
        "survivor-high",
        pool[7_500..].to_vec(),
        AuditKind::GroupCoverage { target: female() },
    )
    .tau(15)
    .seed(2)
    .priority(8);

    post(&doomed);
    // Live status: the doomed job reaches `Running` before anything else
    // is even submitted (one worker, empty queue).
    poll_until(|| {
        let (code, body) = client.borrow_mut().request("GET", "/jobs/0", None).unwrap();
        assert_eq!(code, 200);
        body.contains("\"Running\"").then_some(())
    });
    post(&low);
    post(&high);
    // Both survivors queue behind the running blocker.
    let (_, body) = client.borrow_mut().request("GET", "/jobs/1", None).unwrap();
    assert!(body.contains("\"Queued\""), "{body}");
    // Cancel the running job over HTTP, mid-run.
    let (code, body) = client
        .borrow_mut()
        .request("DELETE", "/jobs/0", None)
        .unwrap();
    assert_eq!(code, 200, "{body}");
    daemon.drain();

    // The cancelled job stopped mid-run with a partial outcome.
    let cancelled = daemon.report(JobId(0)).unwrap();
    assert!(cancelled.status.is_cancelled(), "{}", cancelled.to_json());
    assert!(
        cancelled.outcome.is_some(),
        "mid-run cancel keeps the partial result"
    );
    assert!(
        cancelled.ledger.total_tasks() > 0,
        "the job must have been genuinely mid-run when cancelled"
    );
    // The high-priority survivor ran before the low-priority one.
    assert_eq!(
        daemon.finished_order(),
        vec![JobId(0), JobId(2), JobId(1)],
        "stats: {:?}",
        daemon.stats()
    );
    // Statuses over HTTP are terminal now — still on the same connection,
    // which by now has carried the whole session's worth of requests.
    let (_, body) = client.borrow_mut().request("GET", "/jobs", None).unwrap();
    assert!(body.contains("\"Cancelled\""), "{body}");
    assert!(body.contains("\"Done\""), "{body}");
    assert!(
        daemon.telemetry().keepalive_reuses() > 0,
        "the session must actually have reused the connection"
    );

    // Byte-identity of the survivors against the scoped batch path.
    let scoped = scoped_reports_on(&truth, &[low, high], 1);
    for (daemon_id, scoped_report) in [(JobId(1), &scoped[0]), (JobId(2), &scoped[1])] {
        let daemon_report = daemon.report(daemon_id).unwrap();
        assert!(daemon_report.status.is_done());
        assert_eq!(
            normalized(&daemon_report),
            normalized(scoped_report),
            "daemon and scoped reports must be byte-identical"
        );
    }

    server.shutdown();
    let (summary, _) = daemon.shutdown().unwrap();
    assert_eq!(summary.jobs.len(), 3);
    assert!(daemon.shutdown().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent daemon submissions report byte-identically to the serial
    /// scoped batch: any worker count, any priority assignment, any pool
    /// carve — same specs, same reports.
    #[test]
    fn daemon_reports_match_scoped_serial(
        n_total in 1_200usize..3_000,
        density_pct in 2u64..30,
        jobs in 2usize..5,
        workers in 1usize..4,
        tau in 5usize..25,
        priorities in proptest::collection::vec(0u32..10, 4),
        seed in 0u64..1_000,
    ) {
        let truth = Arc::new(synth_truth(n_total, density_pct, seed));
        let workload: Vec<JobSpec> = disjoint_workload(&truth, jobs, tau)
            .into_iter()
            .enumerate()
            .map(|(i, spec)| spec.priority(priorities[i % priorities.len()]))
            .collect();

        let daemon = AuditDaemon::start(
            ServiceConfig { workers, ..ServiceConfig::default() },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        let ids: Vec<JobId> = workload
            .iter()
            .map(|spec| daemon.submit(spec.clone()).unwrap())
            .collect();
        daemon.drain();
        let daemon_reports: Vec<JobReport> =
            ids.iter().map(|id| daemon.report(*id).unwrap()).collect();
        let (summary, _) = daemon.shutdown().unwrap();
        prop_assert_eq!(summary.jobs.len(), workload.len());

        let scoped = scoped_reports_on(&truth, &workload, 1);
        for (daemon_report, scoped_report) in daemon_reports.iter().zip(&scoped) {
            prop_assert_eq!(
                normalized(daemon_report),
                normalized(scoped_report),
                "spec {} drifted between daemon and scoped run",
                scoped_report.name
            );
        }
    }
}
