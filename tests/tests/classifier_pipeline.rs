//! Integration tests for the classifier-assisted pipeline across all
//! Table 2 presets, plus degenerate-classifier failure injection.

use classifier_sim::{table2_presets, BinaryRates, NoisyBinaryPredictor};
use coverage_core::prelude::*;
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every Table 2 preset produces the right verdict through
/// Classifier-Coverage, and the strategy choice follows the paper.
#[test]
fn all_presets_verdicts_and_strategies() {
    for preset in table2_presets() {
        let rates = preset.rates().unwrap();
        let mut correct = 0;
        let runs = 5;
        for seed in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed * 13 + 1);
            let data = binary_dataset(
                preset.total(),
                preset.females,
                Placement::Shuffled,
                &mut rng,
            );
            let predictor = NoisyBinaryPredictor::new(female(), rates);
            let predicted = predictor.predict_pool_exact(&data, &data.all_ids(), &mut rng);
            let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
            let out = classifier_coverage(
                &mut engine,
                &data.all_ids(),
                &predicted,
                &female(),
                &ClassifierConfig::default(),
                &mut rng,
            )
            .unwrap();
            if out.covered == (preset.females >= 50) {
                correct += 1;
            }
            // Strategy matches the paper except within sampling noise of
            // the 0.75 threshold: the precision estimate comes from ≈20
            // samples (σ ≈ 0.11), so only assert outside a 2σ window.
            if (preset.precision - 0.75).abs() > 0.25 {
                let want = if preset.precision >= 0.75 {
                    FpElimination::Partition
                } else {
                    FpElimination::Label
                };
                assert_eq!(
                    out.strategy, want,
                    "{} / {} seed {seed}",
                    preset.dataset, preset.classifier
                );
            }
        }
        assert_eq!(
            correct, runs,
            "{} / {}: wrong verdicts",
            preset.dataset, preset.classifier
        );
    }
}

/// High-precision classifiers must save a large fraction of the standalone
/// Group-Coverage cost (the paper reports ≈80% savings on FERET).
#[test]
fn high_precision_saves_most_of_the_bill() {
    let preset = &table2_presets()[0]; // FERET / DeepFace (opencv)
    let rates = preset.rates().unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    let data = binary_dataset(
        preset.total(),
        preset.females,
        Placement::Shuffled,
        &mut rng,
    );
    let predictor = NoisyBinaryPredictor::new(female(), rates);
    let predicted = predictor.predict_pool_exact(&data, &data.all_ids(), &mut rng);

    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    let cc = classifier_coverage(
        &mut engine,
        &data.all_ids(),
        &predicted,
        &female(),
        &ClassifierConfig::default(),
        &mut rng,
    )
    .unwrap();
    let cc_tasks = cc.tasks.total_tasks();

    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    group_coverage(
        &mut engine,
        &data.all_ids(),
        &female(),
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    let gc_tasks = engine.ledger().total_tasks();
    assert!(
        (cc_tasks as f64) < 0.4 * gc_tasks as f64,
        "classifier-assisted {cc_tasks} should be well under 40% of {gc_tasks}"
    );
}

/// Failure injection: a classifier that predicts *everything* positive
/// (precision = base rate) must not corrupt the verdict.
#[test]
fn all_positive_classifier_still_correct() {
    let mut rng = SmallRng::seed_from_u64(11);
    let data = binary_dataset(1500, 30, Placement::Shuffled, &mut rng);
    let pool = data.all_ids();
    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    let out = classifier_coverage(
        &mut engine,
        &pool,
        &pool.clone(), // G = D
        &female(),
        &ClassifierConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert!(!out.covered);
    assert_eq!(out.count, 30);
}

/// Failure injection: a classifier that predicts *nothing* positive
/// degrades gracefully to plain Group-Coverage.
#[test]
fn all_negative_classifier_still_correct() {
    let mut rng = SmallRng::seed_from_u64(12);
    let data = binary_dataset(1500, 80, Placement::Shuffled, &mut rng);
    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    let out = classifier_coverage(
        &mut engine,
        &data.all_ids(),
        &[],
        &female(),
        &ClassifierConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert!(out.covered);
}

/// Failure injection: an *anti*-classifier (all predictions inverted) —
/// the predicted set holds no members, the rest holds all of them.
#[test]
fn inverted_classifier_still_correct() {
    let mut rng = SmallRng::seed_from_u64(13);
    let data = binary_dataset(2000, 70, Placement::Shuffled, &mut rng);
    let rates = BinaryRates::new(0.0, 1.0).unwrap(); // predicts NOT-female as female
    let predictor = NoisyBinaryPredictor::new(female(), rates);
    let predicted = predictor.predict_pool_exact(&data, &data.all_ids(), &mut rng);
    assert_eq!(predicted.len(), 2000 - 70);
    let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
    let out = classifier_coverage(
        &mut engine,
        &data.all_ids(),
        &predicted,
        &female(),
        &ClassifierConfig::default(),
        &mut rng,
    )
    .unwrap();
    assert!(
        out.covered,
        "the 70 females hide in D − G but must be found"
    );
}

/// The downstream harness wires into coverage: fixing the MUP the audit
/// finds reduces model disparity (the paper's full §6.4 story).
#[test]
fn audit_then_fix_reduces_disparity() {
    use classifier_sim::{LogisticRegression, TrainConfig};
    use dataset_sim::catalogs;

    let mut rng = SmallRng::seed_from_u64(21);
    // Audit: the spectacled group is uncovered in the training simulacrum.
    let train0 = catalogs::mrl_eye_train_sampled(600, 0, &mut rng);
    let spectacled = Target::group(Pattern::parse("X1").unwrap());
    let mut engine = Engine::with_point_batch(PerfectSource::new(&train0), 50);
    let audit = group_coverage(
        &mut engine,
        &train0.all_ids(),
        &spectacled,
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    assert!(!audit.covered, "audit must flag the spectacled gap");

    // Fix: add spectacled samples; disparity shrinks.
    let (mixed, spec_only) = catalogs::mrl_eye_test(&mut rng);
    let cfg = TrainConfig::default();
    let m0 = LogisticRegression::train(&train0, 0, &cfg, &mut rng);
    let d0 = m0.evaluate(&mixed, 0).accuracy - m0.evaluate(&spec_only, 0).accuracy;
    let train1 = catalogs::mrl_eye_train_sampled(600, 120, &mut rng);
    let m1 = LogisticRegression::train(&train1, 0, &cfg, &mut rng);
    let d1 = m1.evaluate(&mixed, 0).accuracy - m1.evaluate(&spec_only, 0).accuracy;
    assert!(
        d1 < d0,
        "disparity should shrink after resolving coverage: {d0} → {d1}"
    );
}
