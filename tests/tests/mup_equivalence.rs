//! Property tests: the crowd-driven intersectional pipeline finds exactly
//! the MUPs an offline pass over fully-labeled data would find.

use coverage_core::prelude::*;
use dataset_sim::DatasetBuilder;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn schema_2x3() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("a", "a0", "a1").unwrap(),
        Attribute::new("b", ["b0", "b1", "b2"]).unwrap(),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crowd pipeline ≡ offline Pattern-Combiner, on random compositions
    /// over a 2×3 schema (6 cells), random τ, random seeds.
    #[test]
    fn crowd_mups_equal_offline_mups(
        cells in proptest::collection::vec(0usize..300, 6),
        tau in 5usize..80,
        seed in 0u64..1000,
    ) {
        let schema = schema_2x3();
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = DatasetBuilder::new(schema.clone())
            .counts(&cells)
            .build(&mut rng);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
        let cfg = MultipleConfig { tau, ..MultipleConfig::default() };
        let report = intersectional_coverage(
            &mut engine, &data.all_ids(), &schema, &cfg, &mut rng,
        ).unwrap();
        let mut got: Vec<String> = report.mups.iter().map(|m| m.to_string()).collect();
        let mut want: Vec<String> = mups_from_labels(data.labels(), &schema, tau)
            .iter().map(|m| m.to_string()).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want, "cells {:?} tau {}", cells, tau);
    }

    /// Per-pattern coverage verdicts agree with ground-truth counts.
    #[test]
    fn pattern_verdicts_agree_with_counts(
        cells in proptest::collection::vec(0usize..200, 6),
        tau in 5usize..60,
        seed in 0u64..500,
    ) {
        let schema = schema_2x3();
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = DatasetBuilder::new(schema.clone())
            .counts(&cells)
            .build(&mut rng);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
        let cfg = MultipleConfig { tau, ..MultipleConfig::default() };
        let report = intersectional_coverage(
            &mut engine, &data.all_ids(), &schema, &cfg, &mut rng,
        ).unwrap();
        for pc in &report.patterns {
            let true_count = data.count(&Target::group(pc.pattern));
            prop_assert_eq!(
                pc.covered,
                true_count >= tau,
                "pattern {} verdict {} but count {} (tau {})",
                pc.pattern, pc.covered, true_count, tau
            );
            if pc.exact {
                prop_assert_eq!(pc.count, true_count, "pattern {}", pc.pattern);
            } else {
                prop_assert!(pc.count <= true_count, "pattern {}", pc.pattern);
            }
        }
    }

    /// Multiple-Coverage verdicts agree with ground truth across random
    /// single-attribute compositions (σ up to 6) — including the penalty
    /// and super-group paths.
    #[test]
    fn multiple_coverage_verdicts(
        counts in proptest::collection::vec(0usize..250, 2..7),
        tau in 5usize..70,
        seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = dataset_sim::multi_group_dataset(&counts, &mut rng);
        let groups: Vec<Pattern> = (0..counts.len())
            .map(|v| Pattern::single(1, 0, v as u8))
            .collect();
        let mut engine = Engine::with_point_batch(PerfectSource::new(&data), 50);
        let cfg = MultipleConfig { tau, ..MultipleConfig::default() };
        let report = multiple_coverage(
            &mut engine, &data.all_ids(), &groups, &cfg, &mut rng,
        ).unwrap();
        for (v, want) in counts.iter().enumerate() {
            let r = report.result_for(&Pattern::single(1, 0, v as u8)).unwrap();
            prop_assert_eq!(
                r.covered,
                *want >= tau,
                "group {} count {} tau {} verdict {}",
                v, want, tau, r.covered
            );
            if r.count_exact {
                prop_assert_eq!(r.count, *want, "group {}", v);
            }
        }
    }
}
