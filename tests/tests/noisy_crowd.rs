//! Failure injection: what happens to the pipeline when the crowd is bad,
//! and which quality controls rescue it.

use coverage_core::prelude::*;
use crowd_sim::{MTurkSim, PoolConfig, QualityControl, WorkerPool};
use dataset_sim::{binary_dataset, Placement};
use integration_tests::female;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_gc(
    data: &dataset_sim::Dataset,
    pool_cfg: &PoolConfig,
    qc: QualityControl,
    seed: u64,
) -> (bool, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let workers = WorkerPool::generate(pool_cfg, &mut rng);
    let sim = MTurkSim::new(data, data.schema().clone(), workers, qc, seed);
    let mut engine = Engine::with_point_batch(sim, 50);
    let out = group_coverage(
        &mut engine,
        &data.all_ids(),
        &female(),
        50,
        50,
        &DncConfig::default(),
    )
    .unwrap();
    let err = engine.source().stats().aggregated_error_rate();
    (out.covered, err)
}

/// A hostile pool (60% spammers) without screening produces unreliable
/// aggregates; the qualification test restores correctness.
#[test]
fn qualification_test_rescues_hostile_pool() {
    let mut rng = SmallRng::seed_from_u64(1);
    let data = binary_dataset(2000, 260, Placement::Shuffled, &mut rng);

    let mut unscreened_errors = 0.0;
    let mut screened_errors = 0.0;
    let runs = 8;
    for seed in 0..runs {
        let (_, e) = run_gc(
            &data,
            &PoolConfig::hostile(120),
            QualityControl::majority_vote_only(),
            seed,
        );
        unscreened_errors += e;
        let (covered, e) = run_gc(
            &data,
            &PoolConfig::hostile(120),
            QualityControl::with_qualification(),
            100 + seed,
        );
        screened_errors += e;
        assert!(
            covered,
            "screened pool must find the 260 females (seed {seed})"
        );
    }
    assert!(
        screened_errors < unscreened_errors,
        "screening should reduce aggregate error: {screened_errors} vs {unscreened_errors}"
    );
}

/// With a reliable pool, the verdict is stable across many seeds even for
/// a borderline composition (f = τ).
#[test]
fn borderline_composition_is_stable_under_noise() {
    let mut rng = SmallRng::seed_from_u64(2);
    let data = binary_dataset(1000, 50, Placement::Shuffled, &mut rng);
    let mut correct = 0;
    let runs = 10;
    for seed in 0..runs {
        let (covered, _) = run_gc(
            &data,
            &PoolConfig::all_reliable(50),
            QualityControl::with_rating(),
            seed,
        );
        if covered {
            correct += 1;
        }
    }
    // f = τ exactly is the noise-critical composition: losing a *single*
    // member to a missed set answer flips the verdict to uncovered (the
    // error direction is always under-counting — coverage is never
    // fabricated). With per-member miss ≈ 3% and ~6 queries per member, a
    // minority of runs legitimately flip; require a clear majority.
    assert!(
        correct > runs / 2,
        "only {correct}/{runs} runs found the borderline group covered"
    );
}

/// Worker errors can only *under*-count via missed set members (a false
/// "no" prunes real members), never fabricate coverage of an empty group:
/// with zero females, a covered verdict requires τ false alarms to survive
/// majority vote — practically impossible with a reliable pool.
#[test]
fn empty_group_never_reported_covered() {
    let mut rng = SmallRng::seed_from_u64(3);
    let data = binary_dataset(2000, 0, Placement::Shuffled, &mut rng);
    for seed in 0..10 {
        let (covered, _) = run_gc(
            &data,
            &PoolConfig::default(),
            QualityControl::with_rating(),
            seed,
        );
        assert!(!covered, "seed {seed} fabricated coverage");
    }
}

/// The platform refuses to run when screening leaves too few workers.
#[test]
#[should_panic(expected = "eligible workers")]
fn overscreening_panics_loudly() {
    let mut rng = SmallRng::seed_from_u64(4);
    let data = binary_dataset(10, 2, Placement::Shuffled, &mut rng);
    // Every worker is a spammer: none meet the rating bar.
    let workers = WorkerPool::from_profiles(
        (0..5)
            .map(|i| crowd_sim::WorkerProfile::spammer(crowd_sim::WorkerId(i)))
            .collect(),
    );
    MTurkSim::new(
        &data,
        data.schema().clone(),
        workers,
        QualityControl::with_rating(),
        0,
    );
}

/// Dawid–Skene inference recovers truth from a crowd that majority vote
/// cannot handle (failure injection at the aggregation layer).
#[test]
fn dawid_skene_survives_anticorrelated_majority() {
    use crowd_sim::{majority_vote, DawidSkene};
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(5);
    let truths: Vec<bool> = (0..300).map(|_| rng.gen_bool(0.5)).collect();
    // 2 experts, 3 workers who are wrong 70% of the time.
    let accs = [0.97, 0.95, 0.3, 0.3, 0.3];
    let mut answers = Vec::new();
    for (t, truth) in truths.iter().enumerate() {
        for (w, acc) in accs.iter().enumerate() {
            let correct = rng.gen_bool(*acc);
            answers.push((t, w, if correct { *truth } else { !*truth }));
        }
    }
    let mut mv_votes: Vec<Vec<bool>> = vec![Vec::new(); truths.len()];
    for (t, _, a) in &answers {
        mv_votes[*t].push(*a);
    }
    let mv_acc = mv_votes
        .iter()
        .zip(&truths)
        .filter(|(v, t)| majority_vote(v) == **t)
        .count() as f64
        / truths.len() as f64;
    let ds = DawidSkene::fit(truths.len(), accs.len(), &answers, 30);
    let ds_acc = ds
        .decisions()
        .iter()
        .zip(&truths)
        .filter(|(a, b)| a == b)
        .count() as f64
        / truths.len() as f64;
    assert!(mv_acc < 0.75, "majority vote should struggle: {mv_acc}");
    assert!(ds_acc > 0.9, "Dawid–Skene should recover: {ds_acc}");
}
