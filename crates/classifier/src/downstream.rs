//! The downstream-task disparity harness (§6.4, Figure 6).
//!
//! Protocol, as in the paper: build a training set whose uncovered region
//! holds `k` added samples per class (k = 0, 20, …, 100), train a model,
//! and measure the *disparity* between a random mixed test set and a test
//! set drawn exclusively from the uncovered group. Repeat over fresh
//! datasets and average. As `k` grows the disparity should fall toward
//! zero — resolving the lack of coverage fixes the unfairness.

use crate::linear::{LogisticRegression, TrainConfig};
use dataset_sim::Dataset;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One point of a Figure 6 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisparityPoint {
    /// Samples of the uncovered group added to each class.
    pub added_per_class: usize,
    /// Mean accuracy on the mixed test set.
    pub overall_accuracy: f64,
    /// Mean accuracy on the uncovered-group test set.
    pub uncovered_accuracy: f64,
    /// `overall_accuracy − uncovered_accuracy`.
    pub accuracy_disparity: f64,
    /// `loss(uncovered) − loss(mixed)`.
    pub loss_disparity: f64,
}

/// Runs the §6.4 protocol.
///
/// * `build_train(k, rng)` — training set with `k` uncovered-group samples
///   added per class;
/// * `build_tests(rng)` — `(mixed, uncovered_only)` evaluation sets;
/// * `class_attr` — the attribute the model predicts;
/// * `additions` — the k values to sweep (the paper: 0, 20, 40, 60, 80, 100);
/// * `repetitions` — fresh datasets per point (the paper: 10).
pub fn run_disparity_experiment<R, FTrain, FTests>(
    build_train: FTrain,
    build_tests: FTests,
    class_attr: usize,
    additions: &[usize],
    repetitions: usize,
    rng: &mut R,
) -> Vec<DisparityPoint>
where
    R: Rng + ?Sized,
    FTrain: Fn(usize, &mut R) -> Dataset,
    FTests: Fn(&mut R) -> (Dataset, Dataset),
{
    assert!(repetitions > 0, "need at least one repetition");
    let cfg = TrainConfig::default();
    let mut out = Vec::with_capacity(additions.len());
    for &k in additions {
        let mut acc_mixed = 0.0;
        let mut acc_unc = 0.0;
        let mut loss_mixed = 0.0;
        let mut loss_unc = 0.0;
        for _ in 0..repetitions {
            let train = build_train(k, rng);
            let (mixed, uncovered) = build_tests(rng);
            let model = LogisticRegression::train(&train, class_attr, &cfg, rng);
            let em = model.evaluate(&mixed, class_attr);
            let eu = model.evaluate(&uncovered, class_attr);
            acc_mixed += em.accuracy;
            acc_unc += eu.accuracy;
            loss_mixed += em.log_loss;
            loss_unc += eu.log_loss;
        }
        let n = repetitions as f64;
        out.push(DisparityPoint {
            added_per_class: k,
            overall_accuracy: acc_mixed / n,
            uncovered_accuracy: acc_unc / n,
            accuracy_disparity: (acc_mixed - acc_unc) / n,
            loss_disparity: (loss_unc - loss_mixed) / n,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataset_sim::catalogs;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The core §6.4 claim on the MRL simulacrum: disparity exists at k=0
    /// and shrinks materially by k=100. (Small repetition count keeps the
    /// test fast; the bench binary runs the full protocol.)
    #[test]
    fn disparity_shrinks_with_added_coverage() {
        let mut rng = SmallRng::seed_from_u64(17);
        let points = run_disparity_experiment(
            |k, rng| catalogs::mrl_eye_train_sampled(2000, k, rng),
            catalogs::mrl_eye_test,
            0,
            &[0, 100],
            3,
            &mut rng,
        );
        let at_zero = points[0];
        let at_hundred = points[1];
        assert!(
            at_zero.accuracy_disparity > 0.02,
            "no-coverage disparity should be visible: {:?}",
            at_zero
        );
        assert!(
            at_hundred.accuracy_disparity < at_zero.accuracy_disparity,
            "adding coverage must shrink disparity: {at_zero:?} → {at_hundred:?}"
        );
        assert!(at_zero.loss_disparity > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        run_disparity_experiment(
            |k, rng| catalogs::mrl_eye_train_sampled(100, k, rng),
            catalogs::mrl_eye_test,
            0,
            &[0],
            0,
            &mut rng,
        );
    }
}
