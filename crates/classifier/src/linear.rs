//! From-scratch trainable models over feature vectors: logistic regression
//! (SGD) and a nearest-centroid baseline.
//!
//! These stand in for the CNNs of §6.4 — the downstream experiments only
//! need *a* learner whose per-group accuracy reflects the training
//! composition.

use crate::metrics::{log_loss, BinaryConfusion};
use dataset_sim::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// SGD hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 12,
            learning_rate: 0.05,
            l2: 1e-4,
        }
    }
}

/// Binary logistic regression trained with SGD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f32>,
    bias: f32,
}

impl LogisticRegression {
    /// Trains on a dataset with attached features; the label is
    /// `class_attr`'s value (must be binary: value 1 = positive).
    ///
    /// # Panics
    /// Panics when the dataset has no features or is empty.
    pub fn train<R: Rng + ?Sized>(
        data: &Dataset,
        class_attr: usize,
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(
            !data.features().is_empty(),
            "dataset has no feature vectors attached"
        );
        let dim = data.features().dim();
        let mut model = Self {
            weights: vec![0.0; dim],
            bias: 0.0,
        };
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(rng);
            for &i in &order {
                let x = data.features().row(i);
                let y = f32::from(data.labels()[i].get(class_attr) == 1);
                let p = model.predict_proba(x);
                let err = p - y;
                for (w, xi) in model.weights.iter_mut().zip(x) {
                    *w -= cfg.learning_rate * (err * xi + cfg.l2 * *w);
                }
                model.bias -= cfg.learning_rate * err;
            }
        }
        model
    }

    /// P(class = 1 | x).
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), self.weights.len());
        let z: f32 = self
            .weights
            .iter()
            .zip(x)
            .map(|(w, xi)| w * xi)
            .sum::<f32>()
            + self.bias;
        1.0 / (1.0 + (-z).exp())
    }

    /// Hard decision at 0.5.
    pub fn predict(&self, x: &[f32]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Accuracy and log loss over a dataset.
    pub fn evaluate(&self, data: &Dataset, class_attr: usize) -> ModelEval {
        evaluate_model(data, class_attr, |x| f64::from(self.predict_proba(x)))
    }
}

/// Nearest-centroid classifier: predicts the class whose feature centroid
/// is closer. A sanity baseline for the downstream experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NearestCentroid {
    centroid_neg: Vec<f32>,
    centroid_pos: Vec<f32>,
}

impl NearestCentroid {
    /// Fits centroids on a dataset with attached features.
    ///
    /// # Panics
    /// Panics when either class is absent or no features are attached.
    pub fn train(data: &Dataset, class_attr: usize) -> Self {
        assert!(
            !data.features().is_empty(),
            "dataset has no feature vectors attached"
        );
        let dim = data.features().dim();
        let mut sums = [vec![0.0f64; dim], vec![0.0f64; dim]];
        let mut counts = [0usize; 2];
        for i in 0..data.len() {
            let c = usize::from(data.labels()[i].get(class_attr) == 1);
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(data.features().row(i)) {
                *s += f64::from(*x);
            }
        }
        assert!(
            counts[0] > 0 && counts[1] > 0,
            "both classes must be present to fit centroids"
        );
        let centroid = |sum: &[f64], n: usize| -> Vec<f32> {
            sum.iter().map(|s| (*s / n as f64) as f32).collect()
        };
        Self {
            centroid_neg: centroid(&sums[0], counts[0]),
            centroid_pos: centroid(&sums[1], counts[1]),
        }
    }

    /// Hard decision by centroid distance.
    pub fn predict(&self, x: &[f32]) -> bool {
        let d = |c: &[f32]| -> f32 { c.iter().zip(x).map(|(ci, xi)| (ci - xi) * (ci - xi)).sum() };
        d(&self.centroid_pos) <= d(&self.centroid_neg)
    }

    /// Accuracy and (hard-decision) log loss over a dataset.
    pub fn evaluate(&self, data: &Dataset, class_attr: usize) -> ModelEval {
        evaluate_model(
            data,
            class_attr,
            |x| {
                if self.predict(x) {
                    0.99
                } else {
                    0.01
                }
            },
        )
    }
}

/// Evaluation summary of a model on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelEval {
    /// Fraction of correct hard decisions.
    pub accuracy: f64,
    /// Binary cross-entropy.
    pub log_loss: f64,
    /// Confusion counts.
    pub confusion: BinaryConfusion,
}

fn evaluate_model<F: Fn(&[f32]) -> f64>(data: &Dataset, class_attr: usize, proba: F) -> ModelEval {
    assert!(!data.is_empty(), "cannot evaluate on an empty dataset");
    let mut truths = Vec::with_capacity(data.len());
    let mut probs = Vec::with_capacity(data.len());
    let mut confusion = BinaryConfusion::default();
    for i in 0..data.len() {
        let t = data.labels()[i].get(class_attr) == 1;
        let p = proba(data.features().row(i));
        confusion.record(t, p >= 0.5);
        truths.push(t);
        probs.push(p);
    }
    ModelEval {
        accuracy: confusion.accuracy(),
        log_loss: log_loss(&truths, &probs),
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::pattern::Pattern;
    use dataset_sim::synth::DatasetBuilder;
    use dataset_sim::ShiftedFeatureModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Balanced two-class dataset with unshifted separable features.
    fn separable(n_per_class: usize, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let d = DatasetBuilder::one_attribute("class", &["neg", "pos"])
            .counts(&[n_per_class, n_per_class])
            .build(&mut rng);
        let mut model = ShiftedFeatureModel::new(
            0,
            Pattern::parse("9").unwrap_or_else(|_| {
                // group that never matches: value 9 is out of domain, so build
                // a never-matching pattern from an unused value of a 1-attr
                // schema by using rotation 0 instead.
                Pattern::all_unspecified(1)
            }),
        );
        // No shifted subgroup: rotation 0 on everything.
        model.rotation = 0.0;
        model.separation = 2.5;
        model.attach(d, &mut rng)
    }

    #[test]
    fn logistic_learns_separable_data() {
        let train = separable(400, 1);
        let test = separable(400, 2);
        let mut rng = SmallRng::seed_from_u64(3);
        let m = LogisticRegression::train(&train, 0, &TrainConfig::default(), &mut rng);
        let eval = m.evaluate(&test, 0);
        assert!(eval.accuracy > 0.85, "accuracy {}", eval.accuracy);
        assert!(eval.log_loss < 0.5, "loss {}", eval.log_loss);
    }

    #[test]
    fn centroid_learns_separable_data() {
        let train = separable(400, 4);
        let test = separable(400, 5);
        let m = NearestCentroid::train(&train, 0);
        let eval = m.evaluate(&test, 0);
        assert!(eval.accuracy > 0.85, "accuracy {}", eval.accuracy);
    }

    #[test]
    fn logistic_weights_concentrate_on_signal_dims() {
        let train = separable(600, 6);
        let mut rng = SmallRng::seed_from_u64(7);
        let m = LogisticRegression::train(&train, 0, &TrainConfig::default(), &mut rng);
        let w = m.weights();
        let signal = w[0].abs();
        let max_noise = w[2..].iter().map(|x| x.abs()).fold(0.0f32, f32::max);
        assert!(
            signal > max_noise,
            "signal weight {signal} vs noise {max_noise}"
        );
    }

    #[test]
    fn probabilities_are_probabilities() {
        let train = separable(100, 8);
        let mut rng = SmallRng::seed_from_u64(9);
        let m = LogisticRegression::train(&train, 0, &TrainConfig::default(), &mut rng);
        for i in 0..train.len() {
            let p = m.predict_proba(train.features().row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "no feature vectors")]
    fn training_without_features_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = DatasetBuilder::one_attribute("class", &["a", "b"])
            .counts(&[5, 5])
            .build(&mut rng);
        LogisticRegression::train(&d, 0, &TrainConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn centroid_needs_both_classes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = DatasetBuilder::one_attribute("class", &["a", "b"])
            .counts(&[10, 0])
            .build(&mut rng);
        let mut model = ShiftedFeatureModel::new(0, Pattern::all_unspecified(1));
        model.rotation = 0.0;
        let d = model.attach(d, &mut rng);
        NearestCentroid::train(&d, 0);
    }
}
