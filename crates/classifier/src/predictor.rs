//! The calibrated noisy binary predictor — the stand-in for DeepFace /
//! BaseCNN in the Table 2 experiments.

use crate::metrics::BinaryConfusion;
use crate::rates::BinaryRates;
use coverage_core::engine::{GroundTruth, ObjectId};
use coverage_core::target::Target;
use rand::seq::SliceRandom;
use rand::Rng;

/// A binary group predictor operating at a fixed (TPR, FPR) point.
#[derive(Debug, Clone)]
pub struct NoisyBinaryPredictor {
    target: Target,
    rates: BinaryRates,
}

impl NoisyBinaryPredictor {
    /// Creates a predictor for `target` at the given operating point.
    pub fn new(target: Target, rates: BinaryRates) -> Self {
        Self { target, rates }
    }

    /// The group this predictor recognizes.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// The operating point.
    pub fn rates(&self) -> BinaryRates {
        self.rates
    }

    /// Bernoulli prediction for one object.
    pub fn predict_one<G: GroundTruth, R: Rng + ?Sized>(
        &self,
        truth: &G,
        id: ObjectId,
        rng: &mut R,
    ) -> bool {
        let positive = self.target.matches(&truth.labels_of(id));
        if positive {
            rng.gen_bool(self.rates.tpr)
        } else {
            rng.gen_bool(self.rates.fpr)
        }
    }

    /// Predicts the whole pool object-by-object (Bernoulli draws).
    /// Returns the predicted-positive ids in pool order.
    pub fn predict_pool<G: GroundTruth, R: Rng + ?Sized>(
        &self,
        truth: &G,
        pool: &[ObjectId],
        rng: &mut R,
    ) -> Vec<ObjectId> {
        pool.iter()
            .filter(|id| self.predict_one(truth, **id, rng))
            .copied()
            .collect()
    }

    /// Predicts with *exact* expected counts: picks exactly
    /// `round(tpr·|positives|)` true members and `round(fpr·|negatives|)`
    /// non-members, uniformly at random. This removes sampling noise from
    /// the Table 2 reproduction so each run matches the paper's reported
    /// confusion structure.
    pub fn predict_pool_exact<G: GroundTruth, R: Rng + ?Sized>(
        &self,
        truth: &G,
        pool: &[ObjectId],
        rng: &mut R,
    ) -> Vec<ObjectId> {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        for id in pool {
            if self.target.matches(&truth.labels_of(*id)) {
                positives.push(*id);
            } else {
                negatives.push(*id);
            }
        }
        let tp = ((self.rates.tpr * positives.len() as f64).round() as usize).min(positives.len());
        let fp = ((self.rates.fpr * negatives.len() as f64).round() as usize).min(negatives.len());
        positives.shuffle(rng);
        negatives.shuffle(rng);
        let mut predicted: Vec<ObjectId> = positives[..tp]
            .iter()
            .chain(negatives[..fp].iter())
            .copied()
            .collect();
        // Present the predicted set in pool order, as a real pipeline would.
        let index: std::collections::HashMap<ObjectId, usize> =
            pool.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        predicted.sort_by_key(|id| index[id]);
        predicted
    }

    /// Evaluates a predicted-positive set against ground truth.
    pub fn evaluate<G: GroundTruth>(
        &self,
        truth: &G,
        pool: &[ObjectId],
        predicted: &[ObjectId],
    ) -> BinaryConfusion {
        let predicted_set: std::collections::HashSet<ObjectId> =
            predicted.iter().copied().collect();
        let mut c = BinaryConfusion::default();
        for id in pool {
            let t = self.target.matches(&truth.labels_of(*id));
            c.record(t, predicted_set.contains(id));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::engine::VecGroundTruth;
    use coverage_core::pattern::Pattern;
    use coverage_core::schema::Labels;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn truth(n: usize, positives: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < positives)))
                .collect(),
        )
    }

    fn female() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    #[test]
    fn exact_prediction_hits_expected_counts() {
        let t = truth(3000, 20);
        let rates = BinaryRates::from_accuracy_precision(0.9653, 0.08, 20, 2980).unwrap();
        let p = NoisyBinaryPredictor::new(female(), rates);
        let mut rng = SmallRng::seed_from_u64(1);
        let predicted = p.predict_pool_exact(&t, &t.all_ids(), &mut rng);
        let c = p.evaluate(&t, &t.all_ids(), &predicted);
        assert_eq!(c.tp, 8);
        assert_eq!(c.fp, 92);
        assert!((c.accuracy() - 0.9653).abs() < 0.002);
        assert!((c.precision() - 0.08).abs() < 0.01);
    }

    #[test]
    fn exact_prediction_preserves_pool_order() {
        let t = truth(100, 50);
        let p = NoisyBinaryPredictor::new(female(), BinaryRates::perfect());
        let mut rng = SmallRng::seed_from_u64(2);
        let predicted = p.predict_pool_exact(&t, &t.all_ids(), &mut rng);
        let mut sorted = predicted.clone();
        sorted.sort();
        assert_eq!(predicted, sorted, "pool order is ascending ids here");
        assert_eq!(predicted.len(), 50);
    }

    #[test]
    fn bernoulli_prediction_approximates_rates() {
        let t = truth(5000, 1000);
        let rates = BinaryRates::new(0.8, 0.1).unwrap();
        let p = NoisyBinaryPredictor::new(female(), rates);
        let mut rng = SmallRng::seed_from_u64(3);
        let predicted = p.predict_pool(&t, &t.all_ids(), &mut rng);
        let c = p.evaluate(&t, &t.all_ids(), &predicted);
        assert!((c.recall() - 0.8).abs() < 0.05, "tpr {}", c.recall());
        assert!(
            (c.false_positive_rate() - 0.1).abs() < 0.02,
            "fpr {}",
            c.false_positive_rate()
        );
    }

    #[test]
    fn perfect_predictor_is_exact() {
        let t = truth(500, 77);
        let p = NoisyBinaryPredictor::new(female(), BinaryRates::perfect());
        let mut rng = SmallRng::seed_from_u64(4);
        let predicted = p.predict_pool(&t, &t.all_ids(), &mut rng);
        let c = p.evaluate(&t, &t.all_ids(), &predicted);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(predicted.len(), 77);
    }
}
