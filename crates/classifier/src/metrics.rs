//! Binary classification metrics.

use serde::{Deserialize, Serialize};

/// Confusion counts for a binary task (positive = the group of interest,
/// e.g. *female*).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl BinaryConfusion {
    /// Records one prediction.
    pub fn record(&mut self, truth: bool, predicted: bool) {
        match (truth, predicted) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Builds a confusion matrix from paired truths/predictions.
    ///
    /// # Panics
    /// Panics when lengths differ.
    pub fn from_pairs(truths: &[bool], predictions: &[bool]) -> Self {
        assert_eq!(truths.len(), predictions.len(), "length mismatch");
        let mut c = Self::default();
        for (t, p) in truths.iter().zip(predictions) {
            c.record(*t, *p);
        }
        c
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP + TN) / total`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// `TP / (TP + FP)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// `TP / (TP + FN)` (sensitivity); 0 when no positives exist.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// `FP / (FP + TN)`; 0 when no negatives exist.
    pub fn false_positive_rate(&self) -> f64 {
        if self.fp + self.tn == 0 {
            0.0
        } else {
            self.fp as f64 / (self.fp + self.tn) as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when either is 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Binary cross-entropy of probabilistic predictions, clamped for stability.
///
/// # Panics
/// Panics when lengths differ or inputs are empty.
pub fn log_loss(truths: &[bool], probabilities: &[f64]) -> f64 {
    assert_eq!(truths.len(), probabilities.len(), "length mismatch");
    assert!(!truths.is_empty(), "log loss of nothing is undefined");
    let eps = 1e-12;
    let mut sum = 0.0;
    for (t, p) in truths.iter().zip(probabilities) {
        let p = p.clamp(eps, 1.0 - eps);
        sum -= if *t { p.ln() } else { (1.0 - p).ln() };
    }
    sum / truths.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let c = BinaryConfusion::from_pairs(&[true, false, true], &[true, false, true]);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.false_positive_rate(), 0.0);
    }

    #[test]
    fn known_confusion() {
        // TP=2 FP=1 TN=3 FN=2.
        let c = BinaryConfusion {
            tp: 2,
            fp: 1,
            tn: 3,
            fn_: 2,
        };
        assert!((c.accuracy() - 5.0 / 8.0).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.false_positive_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let empty = BinaryConfusion::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    fn log_loss_of_confident_truths_is_small() {
        let loss = log_loss(&[true, false], &[0.99, 0.01]);
        assert!(loss < 0.02);
        let bad = log_loss(&[true, false], &[0.01, 0.99]);
        assert!(bad > 4.0);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        let loss = log_loss(&[true], &[0.0]); // would be inf unclamped
        assert!(loss.is_finite());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_pairs_panic() {
        BinaryConfusion::from_pairs(&[true], &[true, false]);
    }
}
