//! # classifier-sim
//!
//! Pre-trained-model substrate for the EDBT 2024 coverage reproduction.
//!
//! * [`metrics`] — confusion counts, accuracy/precision/recall, log loss;
//! * [`rates`] — derive a (TPR, FPR) operating point from a reported
//!   (accuracy, precision) on a known composition — the calibration that
//!   lets a simulated predictor reproduce each row of the paper's Table 2;
//! * [`predictor`] — the calibrated noisy binary predictor
//!   (stands in for DeepFace / BaseCNN);
//! * [`catalog`] — presets for every classifier × dataset cell of Table 2;
//! * [`linear`] — from-scratch logistic regression (SGD) and a nearest
//!   centroid baseline for the §6.4 downstream-task experiments;
//! * [`downstream`] — the train/evaluate disparity harness behind Figure 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod downstream;
pub mod linear;
pub mod metrics;
pub mod predictor;
pub mod rates;

pub use catalog::{table2_presets, ClassifierPreset};
pub use downstream::{run_disparity_experiment, DisparityPoint};
pub use linear::{LogisticRegression, NearestCentroid, TrainConfig};
pub use metrics::BinaryConfusion;
pub use predictor::NoisyBinaryPredictor;
pub use rates::BinaryRates;
