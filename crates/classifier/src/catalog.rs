//! Presets reproducing every classifier × dataset cell of the paper's
//! Table 2.
//!
//! Each preset records the dataset composition and the classifier's
//! published (accuracy, precision-on-female); [`ClassifierPreset::rates`]
//! solves for the implied operating point (see [`crate::rates`]).

use crate::rates::{BinaryRates, CalibrationError};
use serde::{Deserialize, Serialize};

/// One row of Table 2: a classifier evaluated on a dataset slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierPreset {
    /// Dataset label as printed in the paper.
    pub dataset: &'static str,
    /// Classifier label as printed in the paper.
    pub classifier: &'static str,
    /// Females in the slice.
    pub females: usize,
    /// Males in the slice.
    pub males: usize,
    /// Published accuracy (fraction).
    pub accuracy: f64,
    /// Published precision on the female group (fraction).
    pub precision: f64,
    /// The paper's reported Classifier-Coverage HIT count (for
    /// EXPERIMENTS.md comparison).
    pub paper_cc_hits: u64,
    /// The paper's reported standalone Group-Coverage HIT count.
    pub paper_gc_hits: u64,
    /// The strategy the paper's heuristic picked.
    pub paper_strategy: &'static str,
}

impl ClassifierPreset {
    /// The calibrated operating point for this row.
    pub fn rates(&self) -> Result<BinaryRates, CalibrationError> {
        BinaryRates::from_accuracy_precision(
            self.accuracy,
            self.precision,
            self.females,
            self.males,
        )
    }

    /// Total slice size.
    pub fn total(&self) -> usize {
        self.females + self.males
    }
}

/// All nine rows of Table 2.
pub fn table2_presets() -> Vec<ClassifierPreset> {
    vec![
        ClassifierPreset {
            dataset: "FERET (F=403, M=591)",
            classifier: "DeepFace (opencv)",
            females: 403,
            males: 591,
            accuracy: 0.7957,
            precision: 0.995,
            paper_cc_hits: 14,
            paper_gc_hits: 80,
            paper_strategy: "Partition",
        },
        ClassifierPreset {
            dataset: "FERET (F=403, M=591)",
            classifier: "DeepFace (retinaface)",
            females: 403,
            males: 591,
            accuracy: 0.841,
            precision: 1.0,
            paper_cc_hits: 17,
            paper_gc_hits: 80,
            paper_strategy: "Partition",
        },
        ClassifierPreset {
            dataset: "FERET (F=403, M=591)",
            classifier: "BaseCNN",
            females: 403,
            males: 591,
            accuracy: 0.6448,
            precision: 0.5919,
            paper_cc_hits: 84,
            paper_gc_hits: 80,
            paper_strategy: "Label",
        },
        ClassifierPreset {
            dataset: "UTKFace (F=200, M=2800)",
            classifier: "DeepFace (opencv)",
            females: 200,
            males: 2800,
            accuracy: 0.9356,
            precision: 0.5202,
            paper_cc_hits: 97,
            paper_gc_hits: 51,
            paper_strategy: "Label",
        },
        ClassifierPreset {
            dataset: "UTKFace (F=200, M=2800)",
            classifier: "DeepFace (retinaface)",
            females: 200,
            males: 2800,
            accuracy: 0.9416,
            precision: 0.5615,
            paper_cc_hits: 89,
            paper_gc_hits: 51,
            paper_strategy: "Label",
        },
        ClassifierPreset {
            dataset: "UTKFace (F=200, M=2800)",
            classifier: "BaseCNN",
            females: 200,
            males: 2800,
            accuracy: 0.976,
            precision: 0.748,
            paper_cc_hits: 69,
            paper_gc_hits: 51,
            paper_strategy: "Label",
        },
        ClassifierPreset {
            dataset: "UTKFace (F=20, M=2980)",
            classifier: "DeepFace (opencv)",
            females: 20,
            males: 2980,
            accuracy: 0.9653,
            precision: 0.08,
            paper_cc_hits: 134,
            paper_gc_hits: 221,
            paper_strategy: "Label",
        },
        ClassifierPreset {
            dataset: "UTKFace (F=20, M=2980)",
            classifier: "DeepFace (retinaface)",
            females: 20,
            males: 2980,
            accuracy: 0.9643,
            precision: 0.1009,
            paper_cc_hits: 143,
            paper_gc_hits: 221,
            paper_strategy: "Label",
        },
        ClassifierPreset {
            dataset: "UTKFace (F=20, M=2980)",
            classifier: "BaseCNN",
            females: 20,
            males: 2980,
            accuracy: 0.976,
            precision: 0.2159,
            paper_cc_hits: 122,
            paper_gc_hits: 221,
            paper_strategy: "Label",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_rows_present() {
        let rows = table2_presets();
        assert_eq!(rows.len(), 9);
        let feret = rows
            .iter()
            .filter(|r| r.dataset.starts_with("FERET"))
            .count();
        assert_eq!(feret, 3);
    }

    #[test]
    fn every_row_calibrates() {
        for row in table2_presets() {
            let rates = row
                .rates()
                .unwrap_or_else(|e| panic!("{} / {}: {e}", row.dataset, row.classifier));
            // Round-trip within float noise.
            let acc = rates.expected_accuracy(row.females, row.males);
            let prec = rates.expected_precision(row.females, row.males);
            assert!(
                (acc - row.accuracy).abs() < 1e-6,
                "{}: accuracy {acc} vs {}",
                row.classifier,
                row.accuracy
            );
            assert!(
                (prec - row.precision).abs() < 1e-6,
                "{}: precision {prec} vs {}",
                row.classifier,
                row.precision
            );
        }
    }

    #[test]
    fn strategies_follow_precision_threshold() {
        // The paper's decisions are reproduced by the 0.75 threshold.
        for row in table2_presets() {
            let expected = if row.precision >= 0.75 {
                "Partition"
            } else {
                "Label"
            };
            assert_eq!(
                row.paper_strategy, expected,
                "{} / {}",
                row.dataset, row.classifier
            );
        }
    }

    #[test]
    fn predicted_set_sizes_are_sane() {
        for row in table2_presets() {
            let rates = row.rates().unwrap();
            let g = rates.expected_predicted_positives(row.females, row.males);
            assert!(
                g > 0.0 && g < row.total() as f64,
                "{}: |G|={g}",
                row.classifier
            );
        }
    }
}
