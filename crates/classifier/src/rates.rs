//! Deriving an operating point from published metrics.
//!
//! The paper's Table 2 characterizes each classifier on each dataset by
//! (accuracy, precision-on-female). Given the known composition
//! (`n_pos` females, `n_neg` males), those two numbers pin down the
//! confusion matrix — and hence the (TPR, FPR) a simulated predictor must
//! have to reproduce the row:
//!
//! ```text
//! TP + TN = accuracy · (n_pos + n_neg)
//! TP / (TP + FP) = precision         ⇒ FP = TP · (1 − precision)/precision
//! TN = n_neg − FP
//! ⇒ TP · (1 − (1 − precision)/precision) ... solved linearly below.
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// True-positive and false-positive rates of a binary predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinaryRates {
    /// P(predict positive | positive).
    pub tpr: f64,
    /// P(predict positive | negative).
    pub fpr: f64,
}

/// Why a published (accuracy, precision) pair cannot be realized on a
/// composition.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrationError {
    /// Inputs outside `[0, 1]` or an empty composition.
    InvalidInput(String),
    /// The implied confusion matrix has a negative or oversized cell.
    Infeasible {
        /// Implied true positives.
        tp: f64,
        /// Implied false positives.
        fp: f64,
    },
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidInput(m) => write!(f, "invalid calibration input: {m}"),
            Self::Infeasible { tp, fp } => write!(
                f,
                "metrics are infeasible on this composition (implied TP={tp:.2}, FP={fp:.2})"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

impl BinaryRates {
    /// A flawless predictor.
    pub fn perfect() -> Self {
        Self { tpr: 1.0, fpr: 0.0 }
    }

    /// Creates rates, validating the ranges.
    pub fn new(tpr: f64, fpr: f64) -> Result<Self, CalibrationError> {
        if !(0.0..=1.0).contains(&tpr) || !(0.0..=1.0).contains(&fpr) {
            return Err(CalibrationError::InvalidInput(format!(
                "rates must lie in [0,1], got tpr={tpr}, fpr={fpr}"
            )));
        }
        Ok(Self { tpr, fpr })
    }

    /// Solves for the (TPR, FPR) that realize the published
    /// `(accuracy, precision)` on a composition of `n_pos` positives and
    /// `n_neg` negatives.
    ///
    /// Precision 1.0 means zero false positives; precision 0.0 is rejected
    /// (no TP at all ⇒ accuracy alone cannot place the operating point).
    pub fn from_accuracy_precision(
        accuracy: f64,
        precision: f64,
        n_pos: usize,
        n_neg: usize,
    ) -> Result<Self, CalibrationError> {
        if !(0.0..=1.0).contains(&accuracy) || !(0.0..=1.0).contains(&precision) {
            return Err(CalibrationError::InvalidInput(format!(
                "accuracy={accuracy}, precision={precision} must lie in [0,1]"
            )));
        }
        if precision == 0.0 {
            return Err(CalibrationError::InvalidInput(
                "precision 0 leaves the operating point undetermined".into(),
            ));
        }
        if n_pos == 0 || n_neg == 0 {
            return Err(CalibrationError::InvalidInput(
                "composition needs both positives and negatives".into(),
            ));
        }
        let total = (n_pos + n_neg) as f64;
        // correct = TP + TN, TN = n_neg − FP, FP = r·TP with
        // r = (1 − precision)/precision:
        //   accuracy·total = TP + n_neg − r·TP  ⇒  TP = (accuracy·total − n_neg)/(1 − r)
        let r = (1.0 - precision) / precision;
        let denom = 1.0 - r;
        if denom.abs() < 1e-12 {
            return Err(CalibrationError::InvalidInput(
                "precision 0.5 makes TP cancel out; composition cannot be solved".into(),
            ));
        }
        let tp = (accuracy * total - n_neg as f64) / denom;
        let fp = r * tp;
        if tp < -1e-9 || fp < -1e-9 || tp > n_pos as f64 + 1e-9 || fp > n_neg as f64 + 1e-9 {
            return Err(CalibrationError::Infeasible { tp, fp });
        }
        Self::new(
            (tp / n_pos as f64).clamp(0.0, 1.0),
            (fp / n_neg as f64).clamp(0.0, 1.0),
        )
    }

    /// Expected accuracy of these rates on a composition.
    pub fn expected_accuracy(&self, n_pos: usize, n_neg: usize) -> f64 {
        let total = (n_pos + n_neg) as f64;
        (self.tpr * n_pos as f64 + (1.0 - self.fpr) * n_neg as f64) / total
    }

    /// Expected precision of these rates on a composition (0 when nothing
    /// is predicted positive).
    pub fn expected_precision(&self, n_pos: usize, n_neg: usize) -> f64 {
        let tp = self.tpr * n_pos as f64;
        let fp = self.fpr * n_neg as f64;
        if tp + fp == 0.0 {
            0.0
        } else {
            tp / (tp + fp)
        }
    }

    /// Expected size of the predicted-positive set.
    pub fn expected_predicted_positives(&self, n_pos: usize, n_neg: usize) -> f64 {
        self.tpr * n_pos as f64 + self.fpr * n_neg as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The paper's FERET row: DeepFace (opencv), accuracy 79.57 %,
    /// precision 99.5 % on 403 F / 591 M.
    #[test]
    fn feret_deepface_opencv_row() {
        let r = BinaryRates::from_accuracy_precision(0.7957, 0.995, 403, 591).unwrap();
        // Implied TP ≈ 201, FP ≈ 1.
        assert!((r.tpr * 403.0 - 201.0).abs() < 3.0, "tp {}", r.tpr * 403.0);
        assert!(r.fpr * 591.0 < 2.5, "fp {}", r.fpr * 591.0);
        // Round-trip.
        assert!((r.expected_accuracy(403, 591) - 0.7957).abs() < 1e-6);
        assert!((r.expected_precision(403, 591) - 0.995).abs() < 1e-6);
    }

    /// The paper's hardest row: UTKFace 20 F / 2980 M, accuracy 96.53 %,
    /// precision 8 % ⇒ predicted set ≈ 100 with only 8 real females.
    #[test]
    fn utkface_20_2980_low_precision_row() {
        let r = BinaryRates::from_accuracy_precision(0.9653, 0.08, 20, 2980).unwrap();
        let predicted = r.expected_predicted_positives(20, 2980);
        assert!((90.0..115.0).contains(&predicted), "predicted {predicted}");
        assert!((r.expected_precision(20, 2980) - 0.08).abs() < 1e-6);
    }

    #[test]
    fn perfect_precision_means_zero_fp() {
        let r = BinaryRates::from_accuracy_precision(0.841, 1.0, 403, 591).unwrap();
        assert_eq!(r.fpr, 0.0);
        assert!((r.expected_accuracy(403, 591) - 0.841).abs() < 1e-9);
    }

    #[test]
    fn infeasible_combination_rejected() {
        // Accuracy 10% with precision 99% on a 50/50 split is impossible.
        let e = BinaryRates::from_accuracy_precision(0.10, 0.99, 500, 500);
        assert!(matches!(e, Err(CalibrationError::Infeasible { .. })));
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(BinaryRates::from_accuracy_precision(1.2, 0.9, 10, 10).is_err());
        assert!(BinaryRates::from_accuracy_precision(0.9, 0.0, 10, 10).is_err());
        assert!(BinaryRates::from_accuracy_precision(0.9, 0.9, 0, 10).is_err());
        assert!(BinaryRates::new(1.5, 0.0).is_err());
        let e = BinaryRates::from_accuracy_precision(0.9, 0.5, 10, 10);
        assert!(e.is_err(), "precision 0.5 is singular: {e:?}");
    }

    #[test]
    fn error_display() {
        let e = CalibrationError::Infeasible { tp: -3.0, fp: 1.0 };
        assert!(e.to_string().contains("infeasible"));
    }

    proptest! {
        /// Calibration round-trips: feasible (acc, prec) pairs reproduce
        /// themselves in expectation.
        #[test]
        fn prop_roundtrip(
            tpr in 0.05f64..1.0,
            fpr in 0.0f64..0.95,
            n_pos in 10usize..2000,
            n_neg in 10usize..2000,
        ) {
            let r0 = BinaryRates::new(tpr, fpr).unwrap();
            let acc = r0.expected_accuracy(n_pos, n_neg);
            let prec = r0.expected_precision(n_pos, n_neg);
            prop_assume!(prec > 0.01 && (prec - 0.5).abs() > 0.01);
            let r1 = BinaryRates::from_accuracy_precision(acc, prec, n_pos, n_neg).unwrap();
            prop_assert!((r1.expected_accuracy(n_pos, n_neg) - acc).abs() < 1e-6);
            prop_assert!((r1.expected_precision(n_pos, n_neg) - prec).abs() < 1e-6);
        }
    }
}
