//! # dataset-sim
//!
//! The image-dataset substrate for the EDBT 2024 coverage-reproduction
//! workspace.
//!
//! The paper evaluates on real image collections (FERET, UTKFace, MRL eye)
//! whose pixels are irrelevant to the coverage algorithms — only the latent
//! demographic composition and the order in which objects are presented
//! matter. This crate provides:
//!
//! * [`dataset`] — a [`dataset::Dataset`] of objects with latent
//!   ground-truth labels (implements `coverage-core`'s `GroundTruth`);
//! * [`synth`] — generators: exact per-group counts, proportions, and
//!   placement strategies (shuffled / uniformly spread / clustered /
//!   front-loaded) used by the synthetic experiments of §6.5;
//! * [`features`] — group-conditioned Gaussian feature vectors that stand in
//!   for image embeddings, with a controllable distribution shift for one
//!   subgroup (drives the downstream-task experiments of §6.4);
//! * [`catalogs`] — simulacra of the exact dataset slices the paper uses
//!   (FERET 215 F/1307 M, UTKFace 20 F/2980 M, MRL-eye, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalogs;
pub mod dataset;
pub mod features;
pub mod synth;

pub use dataset::{Dataset, FeatureMatrix};
pub use features::ShiftedFeatureModel;
pub use synth::{binary_dataset, multi_group_dataset, DatasetBuilder, Placement};
