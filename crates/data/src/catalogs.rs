//! Simulacra of the exact dataset slices the paper evaluates on.
//!
//! The coverage algorithms never see pixels — only the latent composition
//! and presentation order matter (DESIGN.md §4). Each constructor
//! reproduces the composition reported in the paper and shuffles with the
//! caller's RNG.

use crate::dataset::Dataset;
use crate::features::ShiftedFeatureModel;
use crate::synth::{DatasetBuilder, Placement};
use coverage_core::pattern::Pattern;
use coverage_core::schema::{Attribute, AttributeSchema};
use rand::Rng;

/// Schema used by all gender slices: `gender ∈ {male, female}`
/// (female = value 1).
pub fn gender_schema() -> AttributeSchema {
    AttributeSchema::single_binary("gender", "male", "female")
}

/// FERET slice used in the Table 1 MTurk experiments:
/// 215 females, 1307 males (N = 1522).
pub fn feret_215_1307<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    DatasetBuilder::new(gender_schema())
        .counts(&[1307, 215])
        .placement(Placement::Shuffled)
        .build(rng)
}

/// FERET slice of unique individuals used in Table 2:
/// 403 females, 591 males (N = 994).
pub fn feret_403_591<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    DatasetBuilder::new(gender_schema())
        .counts(&[591, 403])
        .placement(Placement::Shuffled)
        .build(rng)
}

/// UTKFace 3000-point subset, covered case: 200 females, 2800 males.
pub fn utkface_200_2800<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    DatasetBuilder::new(gender_schema())
        .counts(&[2800, 200])
        .placement(Placement::Shuffled)
        .build(rng)
}

/// UTKFace 3000-point subset, uncovered case: 20 females, 2980 males.
pub fn utkface_20_2980<R: Rng + ?Sized>(rng: &mut R) -> Dataset {
    DatasetBuilder::new(gender_schema())
        .counts(&[2980, 20])
        .placement(Placement::Shuffled)
        .build(rng)
}

/// Schema of the MRL-eye simulacrum: `eye ∈ {open, closed}` ×
/// `glasses ∈ {none, spectacled}`.
pub fn mrl_schema() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("eye", "open", "closed").expect("binary"),
        Attribute::binary("glasses", "none", "spectacled").expect("binary"),
    ])
    .expect("schema")
}

/// MRL-eye training simulacrum (§6.4.1): 26 480 infrared eye images —
/// 14 279 open + 12 201 closed — with **zero** spectacled subjects
/// (the intentionally uncovered region), plus `extra_spectacled` spectacled
/// images added back to *each class* (the paper adds 20..100 per class).
/// Feature vectors are attached with the spectacled group shifted.
pub fn mrl_eye_train<R: Rng + ?Sized>(extra_spectacled_per_class: usize, rng: &mut R) -> Dataset {
    // full_groups order over (eye, glasses): (open,none), (open,spec),
    // (closed,none), (closed,spec).
    let d = DatasetBuilder::new(mrl_schema())
        .counts(&[
            14_279,
            extra_spectacled_per_class,
            12_201,
            extra_spectacled_per_class,
        ])
        .placement(Placement::Shuffled)
        .build(rng);
    mrl_feature_model().attach(d, rng)
}

/// Down-scaled MRL-eye training simulacrum for quick experiments and tests:
/// `base_per_class` unspectacled images per class plus
/// `extra_spectacled_per_class` spectacled ones.
pub fn mrl_eye_train_sampled<R: Rng + ?Sized>(
    base_per_class: usize,
    extra_spectacled_per_class: usize,
    rng: &mut R,
) -> Dataset {
    let d = DatasetBuilder::new(mrl_schema())
        .counts(&[
            base_per_class,
            extra_spectacled_per_class,
            base_per_class,
            extra_spectacled_per_class,
        ])
        .placement(Placement::Shuffled)
        .build(rng);
    mrl_feature_model().attach(d, rng)
}

/// MRL-eye evaluation sets: a random mixed test set and an all-spectacled
/// test set, both class-balanced.
pub fn mrl_eye_test<R: Rng + ?Sized>(rng: &mut R) -> (Dataset, Dataset) {
    let mixed = DatasetBuilder::new(mrl_schema())
        .counts(&[700, 300, 700, 300])
        .placement(Placement::Shuffled)
        .build(rng);
    let spectacled = DatasetBuilder::new(mrl_schema())
        .counts(&[0, 1000, 0, 1000])
        .placement(Placement::Shuffled)
        .build(rng);
    let model = mrl_feature_model();
    (model.attach(mixed, rng), model.attach(spectacled, rng))
}

fn mrl_feature_model() -> ShiftedFeatureModel {
    // Class attribute 0 (eye open/closed); spectacled subgroup shifted.
    ShiftedFeatureModel::new(0, Pattern::parse("X1").expect("pattern"))
}

/// Schema of the UTKFace downstream simulacrum: `gender` × `race`
/// (`race ∈ {caucasian, black}` — the paper trains on Caucasian only).
pub fn utkface_downstream_schema() -> AttributeSchema {
    AttributeSchema::new(vec![
        Attribute::binary("gender", "male", "female").expect("binary"),
        Attribute::binary("race", "caucasian", "black").expect("binary"),
    ])
    .expect("schema")
}

/// UTKFace gender-detection training simulacrum (§6.4.2): 7 055 faces —
/// 3 834 male + 3 221 female, Caucasian only — plus `extra_black_per_class`
/// Black subjects added back to each gender class. Features attached with
/// the Black subgroup shifted.
pub fn utkface_gender_train<R: Rng + ?Sized>(extra_black_per_class: usize, rng: &mut R) -> Dataset {
    // full_groups order over (gender, race): (m,cauc), (m,black),
    // (f,cauc), (f,black).
    let d = DatasetBuilder::new(utkface_downstream_schema())
        .counts(&[3834, extra_black_per_class, 3221, extra_black_per_class])
        .placement(Placement::Shuffled)
        .build(rng);
    utkface_feature_model().attach(d, rng)
}

/// Down-scaled UTKFace gender-training simulacrum for quick experiments:
/// `base_per_class` Caucasian faces per gender plus
/// `extra_black_per_class` Black faces per gender.
pub fn utkface_gender_train_sampled<R: Rng + ?Sized>(
    base_per_class: usize,
    extra_black_per_class: usize,
    rng: &mut R,
) -> Dataset {
    let d = DatasetBuilder::new(utkface_downstream_schema())
        .counts(&[
            base_per_class,
            extra_black_per_class,
            base_per_class,
            extra_black_per_class,
        ])
        .placement(Placement::Shuffled)
        .build(rng);
    utkface_feature_model().attach(d, rng)
}

/// UTKFace evaluation sets: mixed-race and all-Black, gender-balanced.
pub fn utkface_gender_test<R: Rng + ?Sized>(rng: &mut R) -> (Dataset, Dataset) {
    let mixed = DatasetBuilder::new(utkface_downstream_schema())
        .counts(&[800, 200, 800, 200])
        .placement(Placement::Shuffled)
        .build(rng);
    let black = DatasetBuilder::new(utkface_downstream_schema())
        .counts(&[0, 1000, 0, 1000])
        .placement(Placement::Shuffled)
        .build(rng);
    let model = utkface_feature_model();
    (model.attach(mixed, rng), model.attach(black, rng))
}

fn utkface_feature_model() -> ShiftedFeatureModel {
    // Gender is the task class; Black subjects carry the shifted signal.
    // The paper reports only ≈1% disparity here (vs ≈10% for MRL), so the
    // rotation is milder.
    let mut m = ShiftedFeatureModel::new(0, Pattern::parse("X1").expect("pattern"));
    m.rotation = 0.6;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::target::Target;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn female_count(d: &Dataset) -> usize {
        d.count(&Target::group(Pattern::parse("1").unwrap()))
    }

    #[test]
    fn feret_compositions() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = feret_215_1307(&mut rng);
        assert_eq!(d.len(), 1522);
        assert_eq!(female_count(&d), 215);
        let d = feret_403_591(&mut rng);
        assert_eq!(d.len(), 994);
        assert_eq!(female_count(&d), 403);
    }

    #[test]
    fn utkface_compositions() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = utkface_200_2800(&mut rng);
        assert_eq!(d.len(), 3000);
        assert_eq!(female_count(&d), 200);
        let d = utkface_20_2980(&mut rng);
        assert_eq!(d.len(), 3000);
        assert_eq!(female_count(&d), 20);
    }

    #[test]
    fn mrl_train_composition_matches_paper() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = mrl_eye_train(0, &mut rng);
        assert_eq!(d.len(), 26_480);
        let open = d.count(&Target::group(Pattern::parse("0X").unwrap()));
        let closed = d.count(&Target::group(Pattern::parse("1X").unwrap()));
        assert_eq!(open, 14_279);
        assert_eq!(closed, 12_201);
        let spectacled = d.count(&Target::group(Pattern::parse("X1").unwrap()));
        assert_eq!(spectacled, 0, "spectacled region intentionally uncovered");
        assert_eq!(d.features().rows(), d.len());
    }

    #[test]
    fn mrl_extra_spectacled_added_per_class() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = mrl_eye_train(60, &mut rng);
        let spectacled = d.count(&Target::group(Pattern::parse("X1").unwrap()));
        assert_eq!(spectacled, 120);
        let spec_open = d.count(&Target::group(Pattern::parse("01").unwrap()));
        assert_eq!(spec_open, 60);
    }

    #[test]
    fn mrl_test_sets_shapes() {
        let mut rng = SmallRng::seed_from_u64(0);
        let (mixed, spec) = mrl_eye_test(&mut rng);
        assert_eq!(mixed.len(), 2000);
        assert_eq!(spec.len(), 2000);
        assert_eq!(
            spec.count(&Target::group(Pattern::parse("X1").unwrap())),
            2000
        );
        assert!(!mixed.features().is_empty());
    }

    #[test]
    fn utkface_downstream_composition() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = utkface_gender_train(0, &mut rng);
        assert_eq!(d.len(), 7055);
        let male = d.count(&Target::group(Pattern::parse("0X").unwrap()));
        assert_eq!(male, 3834);
        let black = d.count(&Target::group(Pattern::parse("X1").unwrap()));
        assert_eq!(black, 0);
        let d = utkface_gender_train(100, &mut rng);
        let black = d.count(&Target::group(Pattern::parse("X1").unwrap()));
        assert_eq!(black, 200);
    }
}
