//! Synthetic dataset generators (§6.1: "we create synthetic data with a
//! variety of distributions").
//!
//! Composition is specified as exact per-group counts; *placement* controls
//! where group members sit in the presentation order, which is what drives
//! Group-Coverage's cost:
//!
//! * [`Placement::Shuffled`] — uniform random order (the experiments'
//!   default: "shuffle it randomly to prepare for the experiment");
//! * [`Placement::UniformSpread`] — members spaced evenly, the adversarial
//!   instance of the tightness proof (Theorem 3.2);
//! * [`Placement::Clustered`] — members in one contiguous run (friendliest
//!   case: most chunks prune immediately);
//! * [`Placement::FrontLoaded`] — members first (best case for the
//!   `Base-Coverage` baseline).

use crate::dataset::Dataset;
use coverage_core::schema::{Attribute, AttributeSchema, Labels};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where minority members sit in the presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// Uniform random permutation.
    #[default]
    Shuffled,
    /// Evenly spaced (adversarial for the d&c pruning).
    UniformSpread,
    /// One contiguous run starting at a random offset.
    Clustered,
    /// All minority members first.
    FrontLoaded,
}

/// Builder for synthetic datasets with exact group counts.
///
/// ```
/// use dataset_sim::{DatasetBuilder, Placement};
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let d = DatasetBuilder::one_attribute("race", &["white", "black", "asian"])
///     .counts(&[800, 150, 50])
///     .placement(Placement::Shuffled)
///     .build(&mut rng);
/// assert_eq!(d.len(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    schema: AttributeSchema,
    counts: Vec<usize>,
    placement: Placement,
}

impl DatasetBuilder {
    /// Starts a builder over an arbitrary schema. Group counts are supplied
    /// later, aligned with `schema.full_groups()` order.
    pub fn new(schema: AttributeSchema) -> Self {
        let m = schema.num_full_groups();
        Self {
            schema,
            counts: vec![0; m],
            placement: Placement::default(),
        }
    }

    /// Starts a builder over a single attribute with the given values.
    pub fn one_attribute(name: &str, values: &[&str]) -> Self {
        let schema = AttributeSchema::new(vec![
            Attribute::new(name, values.iter().copied()).expect("valid attribute")
        ])
        .expect("valid schema");
        Self::new(schema)
    }

    /// Sets per-group counts, aligned with `schema.full_groups()` order.
    ///
    /// # Panics
    /// Panics when the count of counts differs from the number of
    /// fully-specified subgroups.
    #[must_use]
    pub fn counts(mut self, counts: &[usize]) -> Self {
        assert_eq!(
            counts.len(),
            self.schema.num_full_groups(),
            "need one count per fully-specified subgroup"
        );
        self.counts = counts.to_vec();
        self
    }

    /// Sets the placement strategy.
    #[must_use]
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Materializes the dataset.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let groups = self.schema.full_groups();
        let total: usize = self.counts.iter().sum();

        // Identify the single largest group as "majority filler"; everything
        // else is placed according to the strategy.
        let majority_idx = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0);

        let group_labels: Vec<Labels> = groups
            .iter()
            .map(|g| {
                let vals: Vec<u8> = (0..g.d()).map(|i| g.get(i).expect("full group")).collect();
                Labels::new(&vals)
            })
            .collect();

        match self.placement {
            Placement::Shuffled => {
                let mut labels = Vec::with_capacity(total);
                for (i, c) in self.counts.iter().enumerate() {
                    labels.extend(std::iter::repeat_n(group_labels[i], *c));
                }
                labels.shuffle(rng);
                Dataset::new(self.schema.clone(), labels).expect("valid labels")
            }
            Placement::FrontLoaded => {
                let mut labels = Vec::with_capacity(total);
                // Minorities first (ascending count), majority last.
                let mut order: Vec<usize> = (0..self.counts.len()).collect();
                order.sort_by_key(|i| self.counts[*i]);
                for i in order {
                    labels.extend(std::iter::repeat_n(group_labels[i], self.counts[i]));
                }
                Dataset::new(self.schema.clone(), labels).expect("valid labels")
            }
            Placement::UniformSpread => {
                let mut labels = vec![group_labels[majority_idx]; total];
                let minority_total: usize = self
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != majority_idx)
                    .map(|(_, c)| *c)
                    .sum();
                if minority_total > 0 {
                    // Member k of the interleaved minority stream goes to
                    // ⌊k·total/minority_total⌋ — strictly increasing, hence
                    // collision-free, and evenly spaced.
                    let mut stream: Vec<Labels> = Vec::with_capacity(minority_total);
                    for (i, c) in self.counts.iter().enumerate() {
                        if i != majority_idx {
                            stream.extend(std::iter::repeat_n(group_labels[i], *c));
                        }
                    }
                    for (k, l) in stream.into_iter().enumerate() {
                        let pos = k * total / minority_total;
                        labels[pos] = l;
                    }
                }
                Dataset::new(self.schema.clone(), labels).expect("valid labels")
            }
            Placement::Clustered => {
                let mut labels = vec![group_labels[majority_idx]; total];
                let minority_total: usize = self
                    .counts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != majority_idx)
                    .map(|(_, c)| *c)
                    .sum();
                if minority_total > 0 && total > minority_total {
                    let start = rng.gen_range(0..=total - minority_total);
                    let mut pos = start;
                    for (i, c) in self.counts.iter().enumerate() {
                        if i == majority_idx {
                            continue;
                        }
                        for _ in 0..*c {
                            labels[pos] = group_labels[i];
                            pos += 1;
                        }
                    }
                } else if minority_total > 0 {
                    // Everything is minority; just lay the groups out.
                    let mut pos = 0usize;
                    for (i, c) in self.counts.iter().enumerate() {
                        if i == majority_idx {
                            continue;
                        }
                        for _ in 0..*c {
                            labels[pos] = group_labels[i];
                            pos += 1;
                        }
                    }
                }
                Dataset::new(self.schema.clone(), labels).expect("valid labels")
            }
        }
    }
}

/// The single-binary-attribute workhorse of §6.5: `n_total` objects with
/// `minority` females (`gender ∈ {male, female}`, female = value 1).
pub fn binary_dataset<R: Rng + ?Sized>(
    n_total: usize,
    minority: usize,
    placement: Placement,
    rng: &mut R,
) -> Dataset {
    assert!(
        minority <= n_total,
        "minority count {minority} exceeds dataset size {n_total}"
    );
    DatasetBuilder::one_attribute("gender", &["male", "female"])
        .counts(&[n_total - minority, minority])
        .placement(placement)
        .build(rng)
}

/// One attribute of cardinality `counts.len()` with the given counts,
/// shuffled. Group `i` has value index `i`.
pub fn multi_group_dataset<R: Rng + ?Sized>(counts: &[usize], rng: &mut R) -> Dataset {
    let names: Vec<String> = (0..counts.len()).map(|i| format!("g{i}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    DatasetBuilder::one_attribute("group", &refs)
        .counts(counts)
        .placement(Placement::Shuffled)
        .build(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::pattern::Pattern;
    use coverage_core::target::Target;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn female() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    #[test]
    fn binary_composition_exact() {
        let mut rng = SmallRng::seed_from_u64(0);
        for placement in [
            Placement::Shuffled,
            Placement::UniformSpread,
            Placement::Clustered,
            Placement::FrontLoaded,
        ] {
            let d = binary_dataset(1000, 215, placement, &mut rng);
            assert_eq!(d.len(), 1000);
            assert_eq!(d.count(&female()), 215, "{placement:?}");
        }
    }

    #[test]
    fn front_loaded_puts_minority_first() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = binary_dataset(100, 10, Placement::FrontLoaded, &mut rng);
        for i in 0..10 {
            assert_eq!(d.labels()[i], Labels::single(1));
        }
        assert_eq!(d.labels()[10], Labels::single(0));
    }

    #[test]
    fn uniform_spread_spaces_members() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = binary_dataset(1000, 10, Placement::UniformSpread, &mut rng);
        let positions: Vec<usize> = d
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Labels::single(1))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 10);
        // Gaps should all be near 100.
        for w in positions.windows(2) {
            let gap = w[1] - w[0];
            assert!((60..=140).contains(&gap), "gap {gap} far from stride");
        }
    }

    #[test]
    fn clustered_is_contiguous() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = binary_dataset(500, 40, Placement::Clustered, &mut rng);
        let positions: Vec<usize> = d
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Labels::single(1))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(positions.len(), 40);
        assert_eq!(positions[39] - positions[0], 39, "must be one run");
    }

    #[test]
    fn multi_group_counts() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = multi_group_dataset(&[500, 300, 150, 50], &mut rng);
        assert_eq!(d.len(), 1000);
        for (v, want) in [(0u8, 500usize), (1, 300), (2, 150), (3, 50)] {
            let t = Target::group(Pattern::single(1, 0, v));
            assert_eq!(d.count(&t), want);
        }
    }

    #[test]
    fn all_minority_clustered_does_not_panic() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = binary_dataset(10, 10, Placement::Clustered, &mut rng);
        assert_eq!(d.count(&female()), 10);
    }

    #[test]
    fn empty_dataset_ok() {
        let mut rng = SmallRng::seed_from_u64(0);
        let d = binary_dataset(0, 0, Placement::Shuffled, &mut rng);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds dataset size")]
    fn oversized_minority_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        binary_dataset(5, 6, Placement::Shuffled, &mut rng);
    }

    #[test]
    fn builder_two_attributes() {
        let schema = AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::binary("skin", "light", "dark").unwrap(),
        ])
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(0);
        // full_groups order: 00, 01, 10, 11.
        let d = DatasetBuilder::new(schema.clone())
            .counts(&[400, 50, 300, 5])
            .build(&mut rng);
        assert_eq!(d.len(), 755);
        let dark_female = Target::group(
            schema
                .pattern(&[("gender", "female"), ("skin", "dark")])
                .unwrap(),
        );
        assert_eq!(d.count(&dark_female), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every placement preserves exact composition.
        #[test]
        fn prop_composition_preserved(
            counts in proptest::collection::vec(0usize..200, 2..5),
            seed in 0u64..500,
            placement_idx in 0usize..4,
        ) {
            let placement = [
                Placement::Shuffled,
                Placement::UniformSpread,
                Placement::Clustered,
                Placement::FrontLoaded,
            ][placement_idx];
            let names: Vec<String> = (0..counts.len()).map(|i| format!("v{i}")).collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let mut rng = SmallRng::seed_from_u64(seed);
            let d = DatasetBuilder::one_attribute("a", &refs)
                .counts(&counts)
                .placement(placement)
                .build(&mut rng);
            prop_assert_eq!(d.len(), counts.iter().sum::<usize>());
            for (v, want) in counts.iter().enumerate() {
                let t = Target::group(Pattern::single(1, 0, v as u8));
                prop_assert_eq!(d.count(&t), *want);
            }
        }
    }
}
