//! Group-conditioned Gaussian features — the stand-in for image embeddings
//! in the downstream-task experiments (§6.4).
//!
//! The experiments' causal claim is about *data*, not model architecture: a
//! model trained on data that misses a subgroup performs worse on that
//! subgroup, and adding subgroup samples closes the gap. To reproduce that
//! chain without CNNs or pixels, each object gets a feature vector whose
//! class signal points in a direction that depends on subgroup membership:
//!
//! ```text
//! x = y · sep · (cos θ_g · e1 + sin θ_g · e2) + noise,   θ_g = 0 or `rotation`
//! ```
//!
//! where `y ∈ {−1, +1}` is the task class (e.g. eyes open/closed) and `g`
//! flags the shifted subgroup (e.g. spectacled). A linear model fit on
//! unshifted data learns `e1` and loses `1 − cos θ` of its margin on the
//! shifted subgroup — the §6.4 disparity. Mixing shifted samples into
//! training rotates the learned direction and shrinks the disparity.

use crate::dataset::{Dataset, FeatureMatrix};
use coverage_core::pattern::Pattern;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the shifted two-class feature generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShiftedFeatureModel {
    /// Feature dimensionality (≥ 2).
    pub dim: usize,
    /// Index of the attribute holding the *task class* (must be binary).
    pub class_attr: usize,
    /// Subgroup whose class signal is rotated.
    pub shifted_group: Pattern,
    /// Distance of class centroids from the origin.
    pub separation: f32,
    /// Rotation (radians) of the shifted subgroup's class direction.
    /// `0` ⇒ no shift; `π/2` ⇒ the subgroup's signal is invisible to a
    /// model trained on unshifted data.
    pub rotation: f32,
    /// Isotropic Gaussian noise σ.
    pub noise: f32,
}

impl ShiftedFeatureModel {
    /// A reasonable default: 8-dim, separation 2, rotation 72°, noise 1.
    pub fn new(class_attr: usize, shifted_group: Pattern) -> Self {
        Self {
            dim: 8,
            class_attr,
            shifted_group,
            separation: 2.0,
            rotation: 1.25,
            noise: 1.0,
        }
    }

    /// Generates one feature row for an object.
    pub fn sample_row<R: Rng + ?Sized>(
        &self,
        labels: &coverage_core::schema::Labels,
        rng: &mut R,
    ) -> Vec<f32> {
        assert!(self.dim >= 2, "need at least two dimensions");
        let y = if labels.get(self.class_attr) == 1 {
            1.0f32
        } else {
            -1.0
        };
        let theta = if self.shifted_group.matches(labels) {
            self.rotation
        } else {
            0.0
        };
        let mut row = vec![0.0f32; self.dim];
        row[0] = y * self.separation * theta.cos();
        row[1] = y * self.separation * theta.sin();
        for v in row.iter_mut() {
            *v += gaussian(rng) * self.noise;
        }
        row
    }

    /// Generates a feature matrix for a whole dataset and attaches it.
    pub fn attach<R: Rng + ?Sized>(&self, dataset: Dataset, rng: &mut R) -> Dataset {
        let mut m = FeatureMatrix::new(self.dim, Vec::with_capacity(dataset.len() * self.dim));
        for l in dataset.labels() {
            m.push_row(&self.sample_row(l, rng));
        }
        dataset.with_features(m)
    }
}

/// Standard normal via Box–Muller (avoids pulling in `rand_distr`).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::EPSILON {
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{DatasetBuilder, Placement};
    use coverage_core::schema::{Attribute, AttributeSchema, Labels};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_attr_schema() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("eye", "open", "closed").unwrap(),
            Attribute::binary("glasses", "none", "spectacled").unwrap(),
        ])
        .unwrap()
    }

    fn model() -> ShiftedFeatureModel {
        ShiftedFeatureModel::new(0, Pattern::parse("X1").unwrap())
    }

    #[test]
    fn rows_match_dataset_size_and_dim() {
        let mut rng = SmallRng::seed_from_u64(1);
        let d = DatasetBuilder::new(two_attr_schema())
            .counts(&[100, 20, 100, 20])
            .placement(Placement::Shuffled)
            .build(&mut rng);
        let d = model().attach(d, &mut rng);
        assert_eq!(d.features().rows(), 240);
        assert_eq!(d.features().dim(), 8);
    }

    #[test]
    fn classes_are_separated_along_e1_for_unshifted() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = model();
        let mut mean_open = 0.0f32;
        let mut mean_closed = 0.0f32;
        let k = 500;
        for _ in 0..k {
            mean_open += m.sample_row(&Labels::new(&[0, 0]), &mut rng)[0];
            mean_closed += m.sample_row(&Labels::new(&[1, 0]), &mut rng)[0];
        }
        mean_open /= k as f32;
        mean_closed /= k as f32;
        assert!(
            mean_closed - mean_open > 2.0,
            "{mean_closed} vs {mean_open}"
        );
    }

    #[test]
    fn shifted_group_signal_is_rotated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let m = model();
        // For the shifted group, e1 carries cos(1.25)≈0.32 of the signal and
        // e2 carries sin(1.25)≈0.95 of it.
        let k = 800;
        let mut e1 = 0.0f32;
        let mut e2 = 0.0f32;
        for _ in 0..k {
            let row = m.sample_row(&Labels::new(&[1, 1]), &mut rng);
            e1 += row[0];
            e2 += row[1];
        }
        e1 /= k as f32;
        e2 /= k as f32;
        assert!(e2 > e1, "rotated signal should favour e2: e1={e1}, e2={e2}");
        assert!(e2 > 1.0);
    }

    #[test]
    fn zero_rotation_means_no_shift() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut m = model();
        m.rotation = 0.0;
        let k = 500;
        let mut e2 = 0.0f32;
        for _ in 0..k {
            e2 += m.sample_row(&Labels::new(&[1, 1]), &mut rng)[1];
        }
        e2 /= k as f32;
        assert!(e2.abs() < 0.3, "e2 mean should be ≈0, got {e2}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SmallRng::seed_from_u64(5);
        let k = 20_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..k {
            let g = f64::from(gaussian(&mut rng));
            sum += g;
            sq += g * g;
        }
        let mean = sum / k as f64;
        let var = sq / k as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
