//! A dataset of image-like objects with latent labels and optional
//! feature vectors.

use coverage_core::engine::{GroundTruth, ObjectId};
use coverage_core::error::CoverageError;
use coverage_core::pattern::Pattern;
use coverage_core::schema::{AttributeSchema, Labels};
use coverage_core::target::Target;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// A dense row-major matrix of per-object feature vectors — the stand-in
/// for image embeddings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    dim: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len()` is not a multiple of `dim`, or `dim == 0`
    /// with non-empty data.
    pub fn new(dim: usize, data: Vec<f32>) -> Self {
        if data.is_empty() {
            return Self { dim, data };
        }
        assert!(dim > 0, "feature dimension must be positive");
        assert_eq!(data.len() % dim, 0, "row-major data must fill whole rows");
        Self { dim, data }
    }

    /// An empty (featureless) matrix.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// True when no features are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(
            i < self.rows(),
            "row {i} out of range ({} rows)",
            self.rows()
        );
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row length differs from `dim`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row length must equal dim");
        self.data.extend_from_slice(row);
    }
}

/// A collection of `N` unlabeled-to-the-algorithms objects, each carrying
/// latent ground-truth labels over an [`AttributeSchema`] and, optionally,
/// a feature vector.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: AttributeSchema,
    labels: Vec<Labels>,
    features: FeatureMatrix,
}

impl Dataset {
    /// Creates a dataset, validating every label vector against the schema.
    pub fn new(schema: AttributeSchema, labels: Vec<Labels>) -> Result<Self, CoverageError> {
        for l in &labels {
            schema.validate_labels(l)?;
        }
        Ok(Self {
            schema,
            labels,
            features: FeatureMatrix::empty(),
        })
    }

    /// Attaches feature vectors (one row per object).
    ///
    /// # Panics
    /// Panics when the row count differs from the dataset size.
    #[must_use]
    pub fn with_features(mut self, features: FeatureMatrix) -> Self {
        assert_eq!(
            features.rows(),
            self.labels.len(),
            "feature rows must match dataset size"
        );
        self.features = features;
        self
    }

    /// Number of objects `N`.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The attributes of interest.
    pub fn schema(&self) -> &AttributeSchema {
        &self.schema
    }

    /// All latent labels, in presentation order.
    pub fn labels(&self) -> &[Labels] {
        &self.labels
    }

    /// The features, possibly empty.
    pub fn features(&self) -> &FeatureMatrix {
        &self.features
    }

    /// Feature row of one object.
    ///
    /// # Panics
    /// Panics when no features are attached or the id is out of range.
    pub fn features_of(&self, id: ObjectId) -> &[f32] {
        self.features.row(id.index())
    }

    /// Exact population of a target (ground-truth evaluation only).
    pub fn count(&self, target: &Target) -> usize {
        self.labels.iter().filter(|l| target.matches(l)).count()
    }

    /// Exact counts of every fully-specified subgroup.
    pub fn full_group_counts(&self) -> HashMap<Pattern, usize> {
        let mut counts = HashMap::with_capacity(self.schema.num_full_groups());
        for l in &self.labels {
            *counts.entry(Pattern::fully_specified(l)).or_insert(0) += 1;
        }
        counts
    }

    /// Shuffles object order in place (features follow their objects).
    pub fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.reorder(&order);
    }

    /// Reorders objects so position `i` holds previous object `order[i]`.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of `0..len`.
    pub fn reorder(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.len(), "order must cover every object");
        let mut seen = vec![false; self.len()];
        for &i in order {
            assert!(!seen[i], "order must be a permutation");
            seen[i] = true;
        }
        self.labels = order.iter().map(|&i| self.labels[i]).collect();
        if !self.features.is_empty() {
            let mut data = Vec::with_capacity(self.features.data.len());
            for &i in order {
                data.extend_from_slice(self.features.row(i));
            }
            self.features = FeatureMatrix::new(self.features.dim, data);
        }
    }

    /// A new dataset holding only the given objects, in the given order.
    ///
    /// # Panics
    /// Panics when an id is out of range.
    pub fn subset(&self, ids: &[ObjectId]) -> Dataset {
        let labels: Vec<Labels> = ids.iter().map(|id| self.labels[id.index()]).collect();
        let features = if self.features.is_empty() {
            FeatureMatrix::empty()
        } else {
            let mut m = FeatureMatrix::new(self.features.dim, Vec::new());
            for id in ids {
                m.push_row(self.features.row(id.index()));
            }
            m
        };
        Dataset {
            schema: self.schema.clone(),
            labels,
            features,
        }
    }

    /// Concatenates another dataset (same schema) after this one.
    ///
    /// # Panics
    /// Panics on schema mismatch or when exactly one side has features.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.schema, other.schema, "schemas must match");
        assert_eq!(
            self.features.is_empty(),
            other.features.is_empty(),
            "both sides must agree on having features"
        );
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let features = if self.features.is_empty() {
            FeatureMatrix::empty()
        } else {
            assert_eq!(
                self.features.dim, other.features.dim,
                "feature dims must match"
            );
            let mut data = self.features.data.clone();
            data.extend_from_slice(&other.features.data);
            FeatureMatrix::new(self.features.dim, data)
        };
        Dataset {
            schema: self.schema.clone(),
            labels,
            features,
        }
    }
}

impl GroundTruth for Dataset {
    fn num_objects(&self) -> usize {
        self.len()
    }

    fn labels_of(&self, id: ObjectId) -> Labels {
        self.labels[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn schema() -> AttributeSchema {
        AttributeSchema::single_binary("gender", "male", "female")
    }

    fn tiny() -> Dataset {
        Dataset::new(
            schema(),
            vec![
                Labels::single(0),
                Labels::single(1),
                Labels::single(0),
                Labels::single(1),
                Labels::single(1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn new_validates_labels() {
        let bad = Dataset::new(schema(), vec![Labels::single(7)]);
        assert!(bad.is_err());
    }

    #[test]
    fn counts_and_ground_truth() {
        let d = tiny();
        let female = Target::group(Pattern::parse("1").unwrap());
        assert_eq!(d.count(&female), 3);
        assert_eq!(d.count_matching(&female), 3); // via GroundTruth
        assert_eq!(d.num_objects(), 5);
        assert_eq!(d.labels_of(ObjectId(1)), Labels::single(1));
    }

    #[test]
    fn full_group_counts_sum_to_n() {
        let d = tiny();
        let counts = d.full_group_counts();
        assert_eq!(counts[&Pattern::parse("0").unwrap()], 2);
        assert_eq!(counts[&Pattern::parse("1").unwrap()], 3);
    }

    #[test]
    fn shuffle_preserves_composition() {
        let mut d = tiny();
        let female = Target::group(Pattern::parse("1").unwrap());
        let mut rng = SmallRng::seed_from_u64(1);
        d.shuffle(&mut rng);
        assert_eq!(d.count(&female), 3);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn shuffle_moves_features_with_objects() {
        let mut features = FeatureMatrix::new(2, Vec::new());
        for i in 0..5 {
            features.push_row(&[i as f32, -(i as f32)]);
        }
        let mut d = tiny().with_features(features);
        // Tag each object: feature[0] == original index.
        let mut rng = SmallRng::seed_from_u64(3);
        let before: Vec<(Labels, f32)> = (0..5)
            .map(|i| (d.labels()[i], d.features_of(ObjectId(i as u32))[0]))
            .collect();
        d.shuffle(&mut rng);
        for i in 0..5 {
            let f = d.features_of(ObjectId(i as u32))[0];
            let l = d.labels()[i];
            let orig = before.iter().find(|(_, bf)| *bf == f).unwrap();
            assert_eq!(orig.0, l, "labels must travel with features");
        }
    }

    #[test]
    fn subset_and_concat() {
        let d = tiny();
        let sub = d.subset(&[ObjectId(1), ObjectId(4)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[Labels::single(1), Labels::single(1)]);
        let joined = sub.concat(&d);
        assert_eq!(joined.len(), 7);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reorder_rejects_non_permutation() {
        let mut d = tiny();
        d.reorder(&[0, 0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "match dataset size")]
    fn with_features_size_mismatch_panics() {
        let features = FeatureMatrix::new(2, vec![0.0; 4]);
        let _ = tiny().with_features(features);
    }

    #[test]
    fn feature_matrix_basics() {
        let m = FeatureMatrix::new(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert!(FeatureMatrix::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn feature_matrix_ragged_panics() {
        FeatureMatrix::new(3, vec![1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn feature_row_out_of_range_panics() {
        FeatureMatrix::new(2, vec![0.0; 4]).row(2);
    }
}
