//! The query engine: how algorithms talk to the crowd (§2.3).
//!
//! Algorithms never see ground truth. They pose questions through an
//! [`Engine`], which meters every question in a [`TaskLedger`] and forwards
//! it to an [`AnswerSource`] — a perfect oracle for synthetic experiments, or
//! a full crowdsourcing simulation (see the `crowd-sim` crate).
//!
//! Two HIT shapes exist (paper Figures 1 and 2):
//!
//! * **point query** — "what are the attribute values of this object?", or
//!   the yes/no variant "does this object belong to g?";
//! * **set query** — "does this *set* contain at least one object of g?".
//!
//! The ask path is **fallible**: every question can come back as an
//! [`AskError`] — a budget refused it, the run's [`CancelToken`] was
//! flipped, or the source itself failed. Sources that can never fail
//! implement [`InfallibleSource`] and pick up the fallible [`AnswerSource`]
//! interface through a zero-cost blanket adapter.
//!
//! The ledger meters **logical** work: every question the algorithm asked
//! and had answered, regardless of how the answer was produced. Answer
//! *reuse* — [`crate::memo::KnowledgeSource`] answering a set query from
//! known facts, or forwarding only its unknown residual — happens inside
//! the source, below the engine, so reports and outcomes are identical
//! with and without reuse while the *crowd-side* spend (metered by
//! whatever budget layer sits inside the reuse wrapper) drops.

use crate::error::AskError;
use crate::ledger::{batched_tasks, TaskLedger};
use crate::schema::Labels;
use crate::target::Target;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Identifier of an object (image) in a dataset: a dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Allocation-free iterator over the dense object ids `t0..tN` of a
/// dataset (see [`GroundTruth::ids`]).
#[derive(Debug, Clone)]
pub struct ObjectIds {
    range: Range<u32>,
}

impl Iterator for ObjectIds {
    type Item = ObjectId;

    fn next(&mut self) -> Option<ObjectId> {
        self.range.next().map(ObjectId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for ObjectIds {}

impl DoubleEndedIterator for ObjectIds {
    fn next_back(&mut self) -> Option<ObjectId> {
        self.range.next_back().map(ObjectId)
    }
}

/// Access to the latent labels of a dataset. Implemented by dataset
/// substrates; **never handed to algorithms directly** — only to answer
/// sources, which may distort it (worker errors, classifier noise).
pub trait GroundTruth {
    /// Number of objects `N`.
    fn num_objects(&self) -> usize;

    /// Latent labels of one object.
    ///
    /// # Panics
    /// Implementations panic when `id` is out of range.
    fn labels_of(&self, id: ObjectId) -> Labels;

    /// Iterates over the object ids `t0..tN` in dataset order without
    /// allocating. Prefer this over [`GroundTruth::all_ids`] on evaluation
    /// paths that only traverse the ids once.
    fn ids(&self) -> ObjectIds {
        ObjectIds {
            range: 0..self.num_objects() as u32,
        }
    }

    /// All object ids `t0..tN` as a vector, for callers that need a pool
    /// slice. Allocates; use [`GroundTruth::ids`] for pure iteration.
    fn all_ids(&self) -> Vec<ObjectId> {
        self.ids().collect()
    }

    /// Exact number of objects matching a target (evaluation only).
    fn count_matching(&self, target: &Target) -> usize {
        self.ids()
            .filter(|id| target.matches(&self.labels_of(*id)))
            .count()
    }
}

/// The simplest [`GroundTruth`]: a vector of label vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecGroundTruth {
    labels: Vec<Labels>,
}

impl VecGroundTruth {
    /// Wraps a vector of per-object labels.
    pub fn new(labels: Vec<Labels>) -> Self {
        Self { labels }
    }

    /// The underlying labels.
    pub fn labels(&self) -> &[Labels] {
        &self.labels
    }
}

impl GroundTruth for VecGroundTruth {
    fn num_objects(&self) -> usize {
        self.labels.len()
    }

    fn labels_of(&self, id: ObjectId) -> Labels {
        self.labels[id.index()]
    }
}

/// Something that can answer crowd questions, fallibly. Answers may be
/// wrong — that is the point of the abstraction — and may be *refused*:
/// budget governors return [`AskError::BudgetExhausted`], serving layers
/// return [`AskError::SourceFailed`] when the platform is unreachable.
///
/// Sources that can never fail (a perfect oracle, a pure simulator over
/// in-range ids) should implement [`InfallibleSource`] instead; a blanket
/// adapter lifts them into this trait by wrapping every answer in `Ok`.
pub trait AnswerSource {
    /// Answer a set query: does `objects` contain at least one member of
    /// `target`?
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError>;

    /// Answer a point query: the attribute values of `object`.
    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError>;

    /// Answer a yes/no point query: does `object` belong to `target`?
    ///
    /// The default derives the answer from a label request; sources with a
    /// distinct yes/no error process should override.
    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        let labels = self.try_answer_point_labels(object)?;
        Ok(target.matches(&labels))
    }
}

/// An answer source that can never refuse a question.
///
/// Implement this for oracles and simulators whose every answer is a plain
/// value; the blanket `impl<S: InfallibleSource> AnswerSource for S` adapts
/// them to the fallible interface at zero cost (each answer is wrapped in
/// `Ok`, nothing else).
pub trait InfallibleSource {
    /// Answer a set query: does `objects` contain at least one member of
    /// `target`?
    fn answer_set(&mut self, objects: &[ObjectId], target: &Target) -> bool;

    /// Answer a point query: the attribute values of `object`.
    fn answer_point_labels(&mut self, object: ObjectId) -> Labels;

    /// Answer a yes/no point query: does `object` belong to `target`?
    fn answer_membership(&mut self, object: ObjectId, target: &Target) -> bool {
        let labels = self.answer_point_labels(object);
        target.matches(&labels)
    }
}

impl<S: InfallibleSource> AnswerSource for S {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        Ok(self.answer_set(objects, target))
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        Ok(self.answer_point_labels(object))
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        Ok(self.answer_membership(object, target))
    }
}

/// Extension of [`AnswerSource`] for sources that can serve many questions
/// in one round trip.
///
/// The batch path exists for serving layers (see the `coverage-service`
/// crate): when several audits run concurrently, their point queries can be
/// coalesced into many-images-per-HIT batches — the paper's actual HIT
/// layout — instead of hitting the platform once per object. The default
/// methods fall back to one-at-a-time answering, so any source is trivially
/// a batch source; platforms with real per-HIT overhead (e.g. `MTurkSim` in
/// the `crowd-sim` crate) override them. A batch is all-or-nothing: on
/// `Err` no answer of the batch is delivered.
pub trait BatchAnswerSource: AnswerSource {
    /// Labels every object in `objects`, treating the whole slice as one
    /// coalesced request. Answers must line up index-for-index.
    fn try_answer_point_labels_batch(
        &mut self,
        objects: &[ObjectId],
    ) -> Result<Vec<Labels>, AskError> {
        objects
            .iter()
            .map(|o| self.try_answer_point_labels(*o))
            .collect()
    }

    /// Answers a batch of independent set queries, one answer per query.
    ///
    /// Serving layers that recover from a failed batch by re-asking its
    /// questions individually (the `coverage-service` dispatcher does)
    /// require `Err` to mean **nothing was served or charged**. Overriders
    /// with side effects must therefore validate the whole batch before
    /// serving any of it (as `MTurkSim` does); the default implementation
    /// below serves sequentially, which satisfies the contract only for
    /// side-effect-free sources.
    fn try_answer_sets_batch(
        &mut self,
        queries: &[(Vec<ObjectId>, Target)],
    ) -> Result<Vec<bool>, AskError> {
        queries
            .iter()
            .map(|(objects, target)| self.try_answer_set(objects, target))
            .collect()
    }
}

/// A cooperative cancellation flag shared between a running audit and
/// whoever may want to stop it.
///
/// Clone the token, hand one clone to [`Engine::set_cancel_token`], keep
/// the other; [`CancelToken::cancel`] makes the engine's next `ask_*`
/// return [`AskError::Cancelled`], and the interrupted algorithm surfaces
/// its partial result. Cancellation is observed at question boundaries —
/// no work in flight is torn down.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every engine holding a clone observes it at
    /// its next question.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// An error-free answer source backed by ground truth. This is the model
/// used by the paper's synthetic experiments (§6.5), which "simulate the
/// behavior of the crowdworkers in answering queries".
#[derive(Debug, Clone)]
pub struct PerfectSource<'a, G: GroundTruth> {
    truth: &'a G,
}

impl<'a, G: GroundTruth> PerfectSource<'a, G> {
    /// Wraps a ground truth.
    pub fn new(truth: &'a G) -> Self {
        Self { truth }
    }
}

impl<G: GroundTruth> InfallibleSource for PerfectSource<'_, G> {
    fn answer_set(&mut self, objects: &[ObjectId], target: &Target) -> bool {
        objects
            .iter()
            .any(|o| target.matches(&self.truth.labels_of(*o)))
    }

    fn answer_point_labels(&mut self, object: ObjectId) -> Labels {
        self.truth.labels_of(object)
    }
}

impl<G: GroundTruth> BatchAnswerSource for PerfectSource<'_, G> {}

/// An answer source that intra-audit parallel drivers can split across
/// worker threads and merge back.
///
/// [`multiple_coverage_par`](crate::multiple::multiple_coverage_par) shards
/// its super-group scan over `std::thread::scope` workers; each worker asks
/// through its own **fork** of the job's source and, when the scan joins,
/// the fork is handed back so per-handle state (e.g. the local
/// [`ReuseStats`](crate::memo::ReuseStats) tally of a
/// [`SharedKnowledgeSource`](crate::memo::SharedKnowledgeSource) handle)
/// is folded into the original. Forks must answer **consistently** with
/// the original — the same fixed labeling behind every handle — which is
/// what makes parallel scans byte-identical to sequential ones.
pub trait ForkableSource: AnswerSource + Send + Sized {
    /// A handle over the same underlying answers for another thread.
    fn fork(&self) -> Self;

    /// Folds a fork's per-handle state back in once its thread is done.
    /// The default drops the fork (nothing to merge).
    fn join(&mut self, forked: Self) {
        drop(forked);
    }
}

impl<G: GroundTruth + Sync> ForkableSource for PerfectSource<'_, G> {
    fn fork(&self) -> Self {
        // Not `clone()`: the derived bound would demand `G: Clone`; a fork
        // only needs another handle on the same borrowed truth.
        Self { truth: self.truth }
    }
}

/// An **owned** error-free answer source: [`PerfectSource`] semantics over
/// an `Arc`-shared ground truth, with no borrowed lifetime.
///
/// `PerfectSource` borrows its truth, which ties every run to the stack
/// frame that owns the dataset — fine for a scoped
/// `AuditService::run`, impossible for a long-lived daemon whose worker
/// and dispatcher threads outlive any caller's frame. `SharedTruthSource`
/// owns an `Arc<G>` instead, so it is `'static` whenever `G` is: the
/// `coverage-service` `AuditDaemon` can hold it (and fork it, see
/// [`ForkableSource`]) across arbitrarily many job runs.
///
/// ```
/// use coverage_core::prelude::*;
/// use std::sync::Arc;
///
/// let truth = VecGroundTruth::new(vec![Labels::single(1), Labels::single(0)]);
/// let mut source = SharedTruthSource::new(Arc::new(truth));
/// let target = Target::group(Pattern::parse("1").unwrap());
/// assert!(source.answer_set(&[ObjectId(0), ObjectId(1)], &target));
/// assert!(!source.answer_membership(ObjectId(1), &target));
/// ```
#[derive(Debug)]
pub struct SharedTruthSource<G> {
    truth: Arc<G>,
}

// Not derived: the derive would demand `G: Clone`, but a clone only needs
// another `Arc` handle on the same truth.
impl<G> Clone for SharedTruthSource<G> {
    fn clone(&self) -> Self {
        Self {
            truth: Arc::clone(&self.truth),
        }
    }
}

impl<G: GroundTruth> SharedTruthSource<G> {
    /// Wraps a shared ground truth.
    pub fn new(truth: Arc<G>) -> Self {
        Self { truth }
    }

    /// The underlying ground truth (evaluation only — never hand it to an
    /// algorithm).
    pub fn truth(&self) -> &G {
        &self.truth
    }
}

impl<G: GroundTruth> InfallibleSource for SharedTruthSource<G> {
    fn answer_set(&mut self, objects: &[ObjectId], target: &Target) -> bool {
        objects
            .iter()
            .any(|o| target.matches(&self.truth.labels_of(*o)))
    }

    fn answer_point_labels(&mut self, object: ObjectId) -> Labels {
        self.truth.labels_of(object)
    }
}

impl<G: GroundTruth> BatchAnswerSource for SharedTruthSource<G> {}

impl<G: GroundTruth + Send + Sync> ForkableSource for SharedTruthSource<G> {
    fn fork(&self) -> Self {
        self.clone()
    }
}

/// Default number of images per point-query HIT, matching the paper's
/// HIT layout (`n = 50` images per HIT).
pub const DEFAULT_POINT_BATCH: usize = 50;

/// Meters questions to an [`AnswerSource`] through a [`TaskLedger`].
///
/// Every `ask_*` method is fallible: it returns `Err` when the run's
/// [`CancelToken`] was flipped, when the source's budget refuses the
/// question, or when the source itself fails. Only *answered* questions
/// are recorded in the ledger — a refused question costs nothing.
#[derive(Debug, Clone)]
pub struct Engine<S> {
    source: S,
    ledger: TaskLedger,
    point_batch: usize,
    cancel: Option<CancelToken>,
    probe: crate::probe::ProbeHandle,
}

impl<S: AnswerSource> Engine<S> {
    /// Wraps an answer source with the default point-query batch size.
    pub fn new(source: S) -> Self {
        Self::with_point_batch(source, DEFAULT_POINT_BATCH)
    }

    /// Wraps an answer source, batching up to `point_batch` point queries
    /// per charged task.
    ///
    /// # Panics
    /// Panics when `point_batch == 0`.
    pub fn with_point_batch(source: S, point_batch: usize) -> Self {
        assert!(point_batch > 0, "point batch size must be positive");
        Self {
            source,
            ledger: TaskLedger::new(),
            point_batch,
            cancel: None,
            probe: crate::probe::ProbeHandle::none(),
        }
    }

    /// Installs a cancellation token: once its [`CancelToken::cancel`] is
    /// called (from any thread holding a clone), every subsequent `ask_*`
    /// returns [`AskError::Cancelled`].
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Builder form of [`Engine::set_cancel_token`].
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.set_cancel_token(token);
        self
    }

    /// The installed cancellation token, if any — so intra-audit parallel
    /// drivers can propagate cancellation into their worker engines.
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.cancel.clone()
    }

    /// Attaches an observability probe: algorithm drivers emit coarse phase
    /// events through it (see [`crate::probe`]). Strictly read-only — a
    /// probe never changes an answer, a ledger entry or a verdict.
    pub fn set_probe(&mut self, probe: crate::probe::ProbeHandle) {
        self.probe = probe;
    }

    /// Builder form of [`Engine::set_probe`].
    pub fn with_probe(mut self, probe: crate::probe::ProbeHandle) -> Self {
        self.set_probe(probe);
        self
    }

    /// The attached probe handle (the absent handle when none was set) —
    /// drivers emit phase events through this.
    pub fn probe(&self) -> &crate::probe::ProbeHandle {
        &self.probe
    }

    /// `Err(Cancelled)` once the installed token has been flipped.
    fn checkpoint(&self) -> Result<(), AskError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Err(AskError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Issues a set query (one logical task — charged here even when a
    /// reuse layer inside the source answers it without crowd contact, so
    /// outcomes stay byte-identical with and without reuse).
    pub fn ask_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        self.checkpoint()?;
        let ans = self.source.try_answer_set(objects, target)?;
        self.ledger.record_set_query();
        Ok(ans)
    }

    /// Labels a single object as its own task (used by `Base-Coverage`-style
    /// single-object HITs).
    pub fn ask_point_labels_single(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        self.checkpoint()?;
        let labels = self.source.try_answer_point_labels(object)?;
        self.ledger.record_point_work(1, 1);
        Ok(labels)
    }

    /// Yes/no membership question about a single object (one task).
    pub fn ask_membership_single(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        self.checkpoint()?;
        let ans = self.source.try_answer_membership(object, target)?;
        self.ledger.record_point_work(1, 1);
        Ok(ans)
    }

    /// Labels a batch of objects, charged as `ceil(len / point_batch)` tasks
    /// — the paper's many-images-per-HIT layout.
    ///
    /// Delivery is all-or-nothing: on `Err` no labels are returned. The
    /// labels the source *did* answer before refusing are still metered in
    /// the ledger — they are real crowd work (a governor has charged them,
    /// and behind a cache they stay reusable), so the ledger must not
    /// understate them.
    pub fn ask_point_labels_batched(
        &mut self,
        objects: &[ObjectId],
    ) -> Result<Vec<Labels>, AskError> {
        self.checkpoint()?;
        let mut labels: Vec<Labels> = Vec::with_capacity(objects.len());
        for o in objects {
            match self.source.try_answer_point_labels(*o) {
                Ok(l) => labels.push(l),
                Err(error) => {
                    self.ledger.record_point_work(
                        labels.len() as u64,
                        batched_tasks(labels.len(), self.point_batch),
                    );
                    return Err(error);
                }
            }
        }
        self.ledger.record_point_work(
            objects.len() as u64,
            batched_tasks(objects.len(), self.point_batch),
        );
        Ok(labels)
    }

    /// The configured point-query batch size.
    pub fn point_batch(&self) -> usize {
        self.point_batch
    }

    /// Read access to the running ledger.
    pub fn ledger(&self) -> &TaskLedger {
        &self.ledger
    }

    /// Snapshot of the ledger (for `since` deltas around an algorithm call).
    pub fn ledger_snapshot(&self) -> TaskLedger {
        self.ledger
    }

    /// Resets the ledger to zero, e.g. between experiment repetitions.
    pub fn reset_ledger(&mut self) {
        self.ledger = TaskLedger::new();
    }

    /// Folds another ledger's totals into this engine's — how intra-audit
    /// parallel drivers merge their worker engines' metering back into the
    /// job's engine so callers keep reading one authoritative ledger.
    pub fn absorb_ledger(&mut self, other: &TaskLedger) {
        self.ledger.absorb(other);
    }

    /// Read access to the wrapped source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Mutable access to the wrapped source (e.g. to reseed a simulator).
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    /// Unwraps the engine into its source.
    pub fn into_source(self) -> S {
        self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    fn truth_with_minority(n: usize, minority: usize) -> VecGroundTruth {
        let labels = (0..n)
            .map(|i| Labels::single(u8::from(i < minority)))
            .collect();
        VecGroundTruth::new(labels)
    }

    #[test]
    fn perfect_source_set_query() {
        let truth = truth_with_minority(10, 3);
        let target = Target::group(Pattern::parse("1").unwrap());
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let all: Vec<ObjectId> = truth.all_ids();
        assert!(engine.ask_set(&all[..5], &target).unwrap());
        assert!(!engine.ask_set(&all[5..], &target).unwrap());
        assert_eq!(engine.ledger().set_queries(), 2);
        assert_eq!(engine.ledger().total_tasks(), 2);
    }

    #[test]
    fn perfect_source_point_queries() {
        let truth = truth_with_minority(4, 2);
        let target = Target::group(Pattern::parse("1").unwrap());
        let mut engine = Engine::new(PerfectSource::new(&truth));
        assert!(engine.ask_membership_single(ObjectId(0), &target).unwrap());
        assert!(!engine.ask_membership_single(ObjectId(3), &target).unwrap());
        assert_eq!(
            engine.ask_point_labels_single(ObjectId(1)).unwrap(),
            Labels::single(1)
        );
        assert_eq!(engine.ledger().point_tasks(), 3);
        assert_eq!(engine.ledger().point_labels(), 3);
    }

    #[test]
    fn batched_labels_charge_ceil() {
        let truth = truth_with_minority(120, 0);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let ids = truth.all_ids();
        let labels = engine.ask_point_labels_batched(&ids).unwrap();
        assert_eq!(labels.len(), 120);
        assert_eq!(engine.ledger().point_tasks(), 3); // ceil(120/50)
        assert_eq!(engine.ledger().point_labels(), 120);
    }

    #[test]
    fn empty_batch_charges_nothing() {
        let truth = truth_with_minority(1, 0);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let labels = engine.ask_point_labels_batched(&[]).unwrap();
        assert!(labels.is_empty());
        assert_eq!(engine.ledger().total_tasks(), 0);
    }

    #[test]
    fn ledger_snapshot_delta() {
        let truth = truth_with_minority(10, 5);
        let target = Target::group(Pattern::parse("1").unwrap());
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let ids = truth.all_ids();
        engine.ask_set(&ids, &target).unwrap();
        let snap = engine.ledger_snapshot();
        engine.ask_set(&ids, &target).unwrap();
        assert_eq!(engine.ledger().since(&snap).set_queries(), 1);
    }

    #[test]
    fn cancel_token_stops_every_ask() {
        let truth = truth_with_minority(10, 5);
        let target = Target::group(Pattern::parse("1").unwrap());
        let token = CancelToken::new();
        let mut engine = Engine::new(PerfectSource::new(&truth)).with_cancel_token(token.clone());
        let ids = truth.all_ids();
        assert!(engine.ask_set(&ids, &target).is_ok());
        assert!(!token.is_cancelled());
        token.cancel();
        assert_eq!(engine.ask_set(&ids, &target), Err(AskError::Cancelled));
        assert_eq!(
            engine.ask_point_labels_single(ObjectId(0)),
            Err(AskError::Cancelled)
        );
        assert_eq!(
            engine.ask_membership_single(ObjectId(0), &target),
            Err(AskError::Cancelled)
        );
        assert_eq!(
            engine.ask_point_labels_batched(&ids),
            Err(AskError::Cancelled)
        );
        // The refused questions were never charged.
        assert_eq!(engine.ledger().total_tasks(), 1);
    }

    /// A source that refuses every question after the first `allow` ones.
    struct FlakySource<'a, G: GroundTruth> {
        inner: PerfectSource<'a, G>,
        allow: usize,
    }

    impl<G: GroundTruth> AnswerSource for FlakySource<'_, G> {
        fn try_answer_set(
            &mut self,
            objects: &[ObjectId],
            target: &Target,
        ) -> Result<bool, AskError> {
            if self.allow == 0 {
                return Err(AskError::SourceFailed("flaky".into()));
            }
            self.allow -= 1;
            self.inner.try_answer_set(objects, target)
        }

        fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
            if self.allow == 0 {
                return Err(AskError::SourceFailed("flaky".into()));
            }
            self.allow -= 1;
            self.inner.try_answer_point_labels(object)
        }
    }

    #[test]
    fn failed_questions_are_not_charged() {
        let truth = truth_with_minority(10, 5);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = truth.all_ids();
        let mut engine = Engine::with_point_batch(
            FlakySource {
                inner: PerfectSource::new(&truth),
                allow: 3,
            },
            50,
        );
        assert!(engine.ask_set(&ids, &target).is_ok());
        // The batch needs 10 answers but only 2 remain: no labels are
        // delivered, yet the 2 the source answered (and a governor would
        // have charged) stay metered.
        assert!(matches!(
            engine.ask_point_labels_batched(&ids),
            Err(AskError::SourceFailed(_))
        ));
        assert_eq!(engine.ledger().point_labels(), 2);
        assert_eq!(engine.ledger().point_tasks(), 1); // ceil(2/50)
        assert_eq!(engine.ledger().total_tasks(), 2);
        // The refused question itself was never charged.
        assert!(matches!(
            engine.ask_membership_single(ObjectId(0), &target),
            Err(AskError::SourceFailed(_))
        ));
        assert_eq!(engine.ledger().total_tasks(), 2);
    }

    #[test]
    fn shared_truth_source_matches_perfect_source() {
        let truth = truth_with_minority(30, 7);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = truth.all_ids();
        let shared = Arc::new(truth.clone());
        let mut owned = SharedTruthSource::new(Arc::clone(&shared));
        let mut borrowed = PerfectSource::new(&truth);
        assert_eq!(
            owned.answer_set(&ids, &target),
            borrowed.answer_set(&ids, &target)
        );
        for id in &ids {
            assert_eq!(
                owned.answer_point_labels(*id),
                borrowed.answer_point_labels(*id)
            );
            assert_eq!(
                owned.answer_membership(*id, &target),
                borrowed.answer_membership(*id, &target)
            );
        }
        // A fork answers from the same truth; the handle is 'static-capable.
        let mut fork = owned.fork();
        assert!(fork.answer_set(&ids[..7], &target));
        assert_eq!(owned.truth().num_objects(), 30);
        fn assert_static<T: 'static>(_: &T) {}
        assert_static(&owned);
    }

    #[test]
    fn ids_iterator_matches_all_ids() {
        let truth = truth_with_minority(5, 2);
        let collected: Vec<ObjectId> = truth.ids().collect();
        assert_eq!(collected, truth.all_ids());
        assert_eq!(truth.ids().len(), 5);
        assert_eq!(truth.ids().next_back(), Some(ObjectId(4)));
        assert_eq!(truth.ids().next_back(), Some(ObjectId(4)));
        assert_eq!(truth.ids().rev().next_back(), Some(ObjectId(0)));
    }

    #[test]
    fn default_batch_source_matches_single_answers() {
        let truth = truth_with_minority(20, 6);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = truth.all_ids();

        let mut batch = PerfectSource::new(&truth);
        let batched = batch.try_answer_point_labels_batch(&ids).unwrap();
        let mut single = PerfectSource::new(&truth);
        let singles: Vec<Labels> = ids.iter().map(|o| single.answer_point_labels(*o)).collect();
        assert_eq!(batched, singles);

        let queries = vec![
            (ids[..10].to_vec(), target.clone()),
            (ids[10..].to_vec(), target.clone()),
        ];
        assert_eq!(
            batch.try_answer_sets_batch(&queries).unwrap(),
            vec![true, false]
        );
    }

    #[test]
    fn ground_truth_count_matching() {
        let truth = truth_with_minority(10, 4);
        let t1 = Target::group(Pattern::parse("1").unwrap());
        assert_eq!(truth.count_matching(&t1), 4);
        assert_eq!(truth.count_matching(&t1.negated()), 6);
    }

    #[test]
    fn reset_ledger_zeroes() {
        let truth = truth_with_minority(2, 1);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        engine.ask_point_labels_single(ObjectId(0)).unwrap();
        engine.reset_ledger();
        assert_eq!(engine.ledger().total_tasks(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_point_batch_panics() {
        let truth = truth_with_minority(1, 0);
        Engine::with_point_batch(PerfectSource::new(&truth), 0);
    }
}
