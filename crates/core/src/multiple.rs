//! **Multiple-Coverage** — coverage of many non-intersectional groups with
//! super-group aggregation (Algorithm 2, §4).
//!
//! Running Group-Coverage once per group wastes the information collected in
//! each run. Instead: (1) label a random sample of `c·τ` objects, which
//! usually certifies majority groups outright; (2) merge expected-tiny
//! groups into super-groups; (3) one Group-Coverage run per super-group —
//! an uncovered super-group certifies *all* its members uncovered at once,
//! while a covered super-group pays a penalty (each member must be re-run
//! individually, §4's "drawback").
//!
//! ## Scan independence & intra-audit parallelism
//!
//! Every super-group in step (3) is decided from the **phase-1 state**
//! alone — the sampled label store `L` and the residual pool — never from
//! another super-group's intermediate results (super-groups partition the
//! groups, so one super-group's witnesses can neither match nor mis-count
//! another's members). That makes the scan a set of independent work items:
//! [`multiple_coverage`] runs them in submission order on the caller's
//! engine, and [`multiple_coverage_par`] shards the very same items across
//! [`IntraJobParallelism`] worker threads inside one audit, each asking
//! through a fork of the job's source (see
//! [`ForkableSource`]). Because each item's
//! control flow depends only on the (consistent) source's answers, verdicts,
//! counts **and the logical ledger** are byte-identical for any worker
//! count; only wall-clock changes.

use crate::aggregate::{aggregate, SuperGroup};
use crate::engine::{AnswerSource, Engine, ForkableSource, ObjectId};
use crate::error::{try_ask, AskError, Interrupted};
use crate::group_coverage::{group_coverage, DncConfig};
use crate::ledger::TaskLedger;
use crate::pattern::Pattern;
use crate::sampling::{label_samples, LabeledStore};
use crate::target::Target;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, PoisonError};

/// How many worker threads one audit may use for its super-group scan.
///
/// `1` (the default) keeps the scan on the calling thread; higher values
/// let [`multiple_coverage_par`] / `intersectional_coverage_par` run that
/// many scan items concurrently inside a single job — the scale-out knob
/// the `coverage-service` plumbs through
/// `JobSpec` for one giant audit. Whatever the value, outcomes and logical
/// ledgers are byte-identical; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntraJobParallelism(pub usize);

impl IntraJobParallelism {
    /// The sequential default.
    pub const SERIAL: IntraJobParallelism = IntraJobParallelism(1);

    /// The effective worker count: at least one.
    pub fn workers(self) -> usize {
        self.0.max(1)
    }
}

impl Default for IntraJobParallelism {
    fn default() -> Self {
        Self::SERIAL
    }
}

/// Parameters for [`multiple_coverage`] (and, via the intersectional
/// wrapper, Algorithm 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultipleConfig {
    /// Coverage threshold `τ`.
    pub tau: usize,
    /// Subset-size upper bound `n` for set queries.
    pub n: usize,
    /// Sample-size factor `c`: the initial point-query sample labels `c·τ`
    /// objects. The paper found `c = 2` a good choice.
    pub sample_factor: usize,
    /// Restrict super-group merges to sibling subgroups (the intersectional
    /// mode of the aggregation function).
    pub multi: bool,
    /// After an uncovered super-group run, point-label the isolated
    /// witnesses (batched) to attribute exact counts to individual members.
    /// Costs `⌈count/batch⌉` extra tasks per uncovered super-group; required
    /// for sound MUP propagation in Algorithm 3.
    pub resolve_supergroup_members: bool,
    /// Divide-and-conquer knobs passed to every Group-Coverage run.
    pub dnc: DncConfig,
}

impl Default for MultipleConfig {
    fn default() -> Self {
        Self {
            tau: 50,
            n: 50,
            sample_factor: 2,
            multi: false,
            resolve_supergroup_members: false,
            dnc: DncConfig::default(),
        }
    }
}

/// Verdict for one group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupResult {
    /// The group.
    pub group: Pattern,
    /// Is the group covered (≥ τ members)?
    pub covered: bool,
    /// Known member count: exact when `count_exact`, otherwise a lower bound.
    pub count: usize,
    /// True when `count` is the exact population of the group.
    pub count_exact: bool,
}

/// Output of [`multiple_coverage`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultipleReport {
    /// Per-group verdicts, in the order the groups were supplied.
    pub results: Vec<GroupResult>,
    /// The super-groups the aggregation heuristic formed.
    pub super_groups: Vec<SuperGroup>,
    /// Crowd work consumed by this call.
    pub tasks: TaskLedger,
}

impl MultipleReport {
    /// The verdict for `group`, if it was part of the call.
    pub fn result_for(&self, group: &Pattern) -> Option<&GroupResult> {
        self.results.iter().find(|r| &r.group == group)
    }

    /// Groups found uncovered.
    pub fn uncovered(&self) -> Vec<&GroupResult> {
        self.results.iter().filter(|r| !r.covered).collect()
    }
}

/// Runs **Multiple-Coverage** (Algorithm 2) over `pool` for `groups`
/// (mutually disjoint subgroups, e.g. all values of one attribute).
///
/// # Panics
/// Panics when `groups` is empty or `cfg.n == 0`.
///
/// # Errors
/// When the ask path fails, the [`Interrupted`] error carries a partial
/// [`MultipleReport`]: the verdicts of every group fully decided (in caller
/// order), the super-groups formed, and the tasks spent. A group whose scan
/// item hit the failure is *not* included — a partial verdict would not be
/// sound — but the scan keeps going, so groups decidable without the
/// refused crowd work (e.g. certified by the phase-1 sample alone) still
/// appear; the first failing item's error is the one reported.
///
/// # Example
///
/// ```
/// use coverage_core::prelude::*;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// // One 4-valued race attribute; group 3 has only 12 members.
/// let mut labels = Vec::new();
/// for i in 0..2000u32 {
///     labels.push(Labels::single(match i % 100 {
///         0..=84 => 0,
///         85..=94 => 1,
///         _ => 2,
///     }));
/// }
/// labels.extend(std::iter::repeat(Labels::single(3)).take(12));
/// let truth = VecGroundTruth::new(labels);
/// let groups: Vec<Pattern> = (0..4).map(|v| Pattern::single(1, 0, v)).collect();
///
/// let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let report = multiple_coverage(
///     &mut engine, &truth.all_ids(), &groups,
///     &MultipleConfig { tau: 50, ..MultipleConfig::default() }, &mut rng,
/// ).unwrap();
/// assert!(report.results[0].covered);                 // the 85% majority
/// assert!(!report.result_for(&groups[3]).unwrap().covered); // 12 < 50
/// ```
pub fn multiple_coverage<S: AnswerSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    groups: &[Pattern],
    cfg: &MultipleConfig,
    rng: &mut R,
) -> Result<MultipleReport, Interrupted<MultipleReport>> {
    let phase1 = phase_one(engine, pool, groups, cfg, rng)?;

    // Step (3): scan the super-groups in order on the caller's engine.
    let (results, first_error) = scan_serial(engine, &phase1, cfg);
    finish_scan(engine, groups, phase1, results, first_error)
}

/// [`multiple_coverage`] with the super-group scan sharded across
/// `parallelism` worker threads inside this one audit.
///
/// Each worker asks through a [fork](ForkableSource::fork) of the job's
/// source and meters a private engine; when the scan joins, worker ledgers
/// are folded back into `engine` **in super-group order** and forks are
/// [joined](ForkableSource::join) so per-handle reuse tallies survive.
/// Outcomes and the merged logical ledger are byte-identical to the
/// sequential scan for any worker count (see the module docs); under a
/// *shared* budget the partial outcome of an exhausted run may differ in
/// which groups got decided first, but every reported verdict is still
/// exact.
///
/// # Panics
/// Panics when `groups` is empty or `cfg.n == 0`.
///
/// # Errors
/// As [`multiple_coverage`]; with several failing items the error of the
/// earliest super-group (submission order) is reported.
pub fn multiple_coverage_par<S: ForkableSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    groups: &[Pattern],
    cfg: &MultipleConfig,
    rng: &mut R,
    parallelism: IntraJobParallelism,
) -> Result<MultipleReport, Interrupted<MultipleReport>> {
    let phase1 = phase_one(engine, pool, groups, cfg, rng)?;
    let workers = parallelism.workers().min(phase1.super_groups.len()).max(1);
    if workers <= 1 {
        // Degenerate scan: the sequential driver, literally.
        let (results, first_error) = scan_serial(engine, &phase1, cfg);
        return finish_scan(engine, groups, phase1, results, first_error);
    }

    let cancel = engine.cancel_token();
    let point_batch = engine.point_batch();
    let forks: Vec<S> = (0..workers).map(|_| engine.source().fork()).collect();
    let next_item = Mutex::new(0usize);
    let mut slots: Vec<Option<(ScanItem, TaskLedger)>> =
        (0..phase1.super_groups.len()).map(|_| None).collect();

    let worker_outputs: Vec<WorkerOutput<S>> = std::thread::scope(|scope| {
        let handles: Vec<_> = forks
            .into_iter()
            .map(|fork| {
                let next_item = &next_item;
                let phase1 = &phase1;
                let cancel = cancel.clone();
                scope.spawn(move || {
                    let mut worker_engine = Engine::with_point_batch(fork, point_batch);
                    if let Some(token) = cancel {
                        worker_engine.set_cancel_token(token);
                    }
                    let mut items = Vec::new();
                    loop {
                        let index = {
                            let mut next = next_item.lock().unwrap_or_else(PoisonError::into_inner);
                            if *next >= phase1.super_groups.len() {
                                break;
                            }
                            let index = *next;
                            *next += 1;
                            index
                        };
                        let before = worker_engine.ledger_snapshot();
                        let item = scan_super_group(
                            &mut worker_engine,
                            &phase1.pool,
                            &phase1.labeled,
                            &phase1.super_groups[index],
                            cfg,
                        );
                        items.push((index, item, worker_engine.ledger().since(&before)));
                    }
                    (items, worker_engine.into_source())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan worker never panics"))
            .collect()
    });

    for (items, fork) in worker_outputs {
        engine.source_mut().join(fork);
        for (index, item, ledger) in items {
            slots[index] = Some((item, ledger));
        }
    }
    let mut results: Vec<GroupResult> = Vec::with_capacity(groups.len());
    let mut first_error: Option<AskError> = None;
    for slot in slots {
        let (item, ledger) = slot.expect("every scan item completes");
        engine.absorb_ledger(&ledger);
        results.extend(item.results);
        if first_error.is_none() {
            first_error = item.error;
        }
    }
    finish_scan(engine, groups, phase1, results, first_error)
}

/// Step (3), sequentially: scans every super-group in order on the
/// caller's engine, collecting decided verdicts and the first failing
/// item's error. Shared by [`multiple_coverage`] and the one-worker path
/// of [`multiple_coverage_par`] so the two can never drift apart. A failed
/// item leaves its undecided groups out and the scan moves on — groups
/// decidable without the refused crowd work (e.g. certified by the sample
/// alone) still land in the partial.
fn scan_serial<S: AnswerSource>(
    engine: &mut Engine<S>,
    phase1: &PhaseOne,
    cfg: &MultipleConfig,
) -> (Vec<GroupResult>, Option<AskError>) {
    let mut results: Vec<GroupResult> = Vec::new();
    let mut first_error: Option<AskError> = None;
    for sg in &phase1.super_groups {
        let item = scan_super_group(engine, &phase1.pool, &phase1.labeled, sg, cfg);
        results.extend(item.results);
        if first_error.is_none() {
            first_error = item.error;
        }
    }
    (results, first_error)
}

/// Everything steps (1)–(2) produce: the labeled sample `L`, the residual
/// pool, the super-groups, and the ledger snapshot taken before any work.
struct PhaseOne {
    labeled: LabeledStore,
    pool: Vec<ObjectId>,
    super_groups: Vec<SuperGroup>,
    before: TaskLedger,
}

/// Steps (1)–(2) of Algorithm 2, sequential on the caller's engine (the
/// sample consumes the RNG; everything after is RNG-free).
#[allow(clippy::result_large_err)] // the Err carries the partial report by design
fn phase_one<S: AnswerSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    groups: &[Pattern],
    cfg: &MultipleConfig,
    rng: &mut R,
) -> Result<PhaseOne, Interrupted<MultipleReport>> {
    assert!(!groups.is_empty(), "need at least one group");
    let before = engine.ledger_snapshot();
    let n_total = pool.len();
    let mut pool: Vec<ObjectId> = pool.to_vec();

    // Line 1: obtain c·τ random labels.
    let labeled = try_ask!(
        label_samples(engine, &mut pool, cfg.sample_factor * cfg.tau, rng),
        partial_report(
            groups,
            Vec::new(),
            Vec::new(),
            engine.ledger().since(&before)
        )
    );

    // Line 2: form the super-groups.
    let super_groups = aggregate(&labeled, n_total, cfg.tau, groups, cfg.multi);
    engine.probe().emit("phase1", || {
        format!(
            "sampled {} labels; {} group(s) aggregated into {} super-group(s)",
            labeled.len(),
            groups.len(),
            super_groups.len()
        )
    });
    Ok(PhaseOne {
        labeled,
        pool,
        super_groups,
        before,
    })
}

/// Orders the collected verdicts and wraps up the report (`Ok` when every
/// item succeeded, `Err(Interrupted)` carrying the partial otherwise).
#[allow(clippy::result_large_err)] // the Err carries the partial report by design
fn finish_scan<S: AnswerSource>(
    engine: &Engine<S>,
    groups: &[Pattern],
    phase1: PhaseOne,
    mut results: Vec<GroupResult>,
    first_error: Option<AskError>,
) -> Result<MultipleReport, Interrupted<MultipleReport>> {
    sort_by_caller_order(&mut results, groups);
    let report = MultipleReport {
        results,
        super_groups: phase1.super_groups,
        tasks: engine.ledger().since(&phase1.before),
    };
    // One event per super-group, emitted deterministically in super-group
    // order after any parallel scan has joined — so a job's timeline reads
    // the same whatever `IntraJobParallelism` it ran at.
    if engine.probe().is_attached() {
        let total = report.super_groups.len();
        for (index, sg) in report.super_groups.iter().enumerate() {
            let decided = report
                .results
                .iter()
                .filter(|r| sg.members.contains(&r.group))
                .count();
            engine.probe().emit("scan_group", || {
                format!(
                    "super-group {}/{total}: {} member group(s), {decided} decided",
                    index + 1,
                    sg.members.len()
                )
            });
        }
    }
    match first_error {
        None => Ok(report),
        Some(error) => Err(Interrupted {
            error,
            partial: report,
        }),
    }
}

/// What one scan worker hands back at the join: its decided items (with
/// per-item ledgers, tagged by super-group index) and its source fork.
type WorkerOutput<S> = (Vec<(usize, ScanItem, TaskLedger)>, S);

/// One scan item's outcome: the verdicts it decided, and the first error it
/// ran into (undecided groups are simply absent — a partial verdict would
/// not be sound).
struct ScanItem {
    results: Vec<GroupResult>,
    error: Option<AskError>,
}

/// Decides one super-group (lines 3–13 of Algorithm 2) from the phase-1
/// state alone. Self-contained by construction: it reads the shared sample
/// `L` and pool but owns every intermediate it produces, so items can run
/// in any order — or concurrently — without changing any verdict.
fn scan_super_group<S: AnswerSource>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    labeled: &LabeledStore,
    sg: &SuperGroup,
    cfg: &MultipleConfig,
) -> ScanItem {
    let mut results = Vec::with_capacity(sg.members.len());
    if sg.is_singleton() {
        let g = sg.members[0];
        return match check_single_group(engine, pool, labeled, &g, cfg) {
            Ok(result) => ScanItem {
                results: vec![result],
                error: None,
            },
            Err(error) => ScanItem {
                results,
                error: Some(error),
            },
        };
    }

    // Lines 5-6: search the union with the residual threshold.
    let sample_total: usize = sg
        .members
        .iter()
        .map(|g| labeled.count(&Target::group(*g)))
        .sum();
    let tau_prime = cfg.tau.saturating_sub(sample_total);
    let mut dnc = cfg.dnc.clone();
    dnc.collect_witnesses = cfg.resolve_supergroup_members;
    let out = match group_coverage(engine, pool, &sg.target(), tau_prime, cfg.n, &dnc) {
        Ok(out) => out,
        Err(interrupted) => {
            return ScanItem {
                results,
                error: Some(interrupted.error),
            }
        }
    };

    if out.covered {
        // Lines 8-12: penalty — the union is covered, so nothing is known
        // about individual members; re-run each one. A member whose re-run
        // fails stays undecided, but cheaper siblings (e.g. certified by
        // the sample) are still decided.
        let mut error = None;
        for g in &sg.members {
            match check_single_group(engine, pool, labeled, g, cfg) {
                Ok(result) => results.push(result),
                Err(e) => {
                    if error.is_none() {
                        error = Some(e);
                    }
                }
            }
        }
        return ScanItem { results, error };
    }

    // Line 13: the union is uncovered ⇒ every member is uncovered.
    let witness_labels = if cfg.resolve_supergroup_members && !out.witnesses.is_empty() {
        // Attribute exact counts: the witnesses are *all* union members
        // remaining in the pool; one batched point pass labels them.
        match engine.ask_point_labels_batched(&out.witnesses) {
            Ok(labels) => labels,
            Err(error) => {
                return ScanItem {
                    results,
                    error: Some(error),
                }
            }
        }
    } else {
        Vec::new()
    };
    for g in &sg.members {
        let target = Target::group(*g);
        // The sample's members plus this union's freshly-labeled witnesses
        // (witnesses come from the pool, so the two sets are disjoint).
        let known =
            labeled.count(&target) + witness_labels.iter().filter(|l| target.matches(l)).count();
        results.push(GroupResult {
            group: *g,
            covered: false,
            count: known,
            count_exact: cfg.resolve_supergroup_members,
        });
    }
    ScanItem {
        results,
        error: None,
    }
}

/// Orders verdicts by the caller's group order (undecided groups absent).
fn sort_by_caller_order(results: &mut [GroupResult], groups: &[Pattern]) {
    results.sort_by_key(|r| {
        groups
            .iter()
            .position(|g| g == &r.group)
            .unwrap_or(usize::MAX)
    });
}

/// Builds the partial [`MultipleReport`] surfaced when the run is cut.
fn partial_report(
    groups: &[Pattern],
    mut results: Vec<GroupResult>,
    super_groups: Vec<SuperGroup>,
    tasks: TaskLedger,
) -> MultipleReport {
    sort_by_caller_order(&mut results, groups);
    MultipleReport {
        results,
        super_groups,
        tasks,
    }
}

/// Lines 7 / 10-12 of Algorithm 2: decide one group, crediting the sample.
/// An `Err` means the group stays undecided — no partial verdict exists.
fn check_single_group<S: AnswerSource>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    labeled: &LabeledStore,
    group: &Pattern,
    cfg: &MultipleConfig,
) -> Result<GroupResult, AskError> {
    let target = Target::group(*group);
    let sample_count = labeled.count(&target);
    let tau_prime = cfg.tau.saturating_sub(sample_count);
    if tau_prime == 0 {
        return Ok(GroupResult {
            group: *group,
            covered: true,
            count: sample_count,
            count_exact: false,
        });
    }
    let out =
        group_coverage(engine, pool, &target, tau_prime, cfg.n, &cfg.dnc).map_err(|i| i.error)?;
    Ok(GroupResult {
        group: *group,
        covered: out.covered,
        count: sample_count + out.count,
        count_exact: !out.covered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GroundTruth;
    use crate::engine::{PerfectSource, VecGroundTruth};
    use crate::schema::Labels;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Dataset over one attribute with `counts[v]` objects of value `v`,
    /// deterministically interleaved.
    fn truth_1d(counts: &[usize]) -> VecGroundTruth {
        let total: usize = counts.iter().sum();
        let mut remaining: Vec<usize> = counts.to_vec();
        let mut labels = Vec::with_capacity(total);
        // Round-robin interleave so groups are spread through the pool.
        loop {
            let mut progressed = false;
            for (v, r) in remaining.iter_mut().enumerate() {
                if *r > 0 {
                    labels.push(Labels::single(v as u8));
                    *r -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        VecGroundTruth::new(labels)
    }

    fn groups_1d(card: usize) -> Vec<Pattern> {
        (0..card).map(|v| Pattern::single(1, 0, v as u8)).collect()
    }

    fn run(
        truth: &VecGroundTruth,
        card: usize,
        cfg: &MultipleConfig,
        seed: u64,
    ) -> (MultipleReport, u64) {
        let mut engine = Engine::with_point_batch(PerfectSource::new(truth), cfg.n);
        let mut rng = SmallRng::seed_from_u64(seed);
        let report = multiple_coverage(
            &mut engine,
            &truth.all_ids(),
            &groups_1d(card),
            cfg,
            &mut rng,
        )
        .unwrap();
        let total = engine.ledger().total_tasks();
        (report, total)
    }

    #[test]
    fn verdicts_match_ground_truth() {
        // τ = 50: groups of sizes 900, 60, 30, 10 ⇒ covered, covered,
        // uncovered, uncovered.
        let truth = truth_1d(&[900, 60, 30, 10]);
        let cfg = MultipleConfig::default();
        for seed in 0..5 {
            let (report, _) = run(&truth, 4, &cfg, seed);
            let covered: Vec<bool> = report.results.iter().map(|r| r.covered).collect();
            assert_eq!(covered, vec![true, true, false, false], "seed {seed}");
        }
    }

    #[test]
    fn uncovered_counts_without_resolution_are_lower_bounds() {
        let truth = truth_1d(&[900, 30, 10]);
        let cfg = MultipleConfig::default();
        let (report, _) = run(&truth, 3, &cfg, 3);
        for r in report.uncovered() {
            assert!(!r.count_exact || r.count <= 40);
        }
    }

    #[test]
    fn resolution_gives_exact_member_counts() {
        let truth = truth_1d(&[950, 20, 12]);
        let cfg = MultipleConfig {
            resolve_supergroup_members: true,
            ..MultipleConfig::default()
        };
        for seed in 0..5 {
            let (report, _) = run(&truth, 3, &cfg, seed);
            let r1 = report.result_for(&Pattern::single(1, 0, 1)).unwrap();
            let r2 = report.result_for(&Pattern::single(1, 0, 2)).unwrap();
            assert!(!r1.covered && !r2.covered);
            assert!(r1.count_exact && r2.count_exact, "seed {seed}");
            assert_eq!(r1.count, 20, "seed {seed}");
            assert_eq!(r2.count, 12, "seed {seed}");
        }
    }

    #[test]
    fn effective_case_beats_brute_force() {
        // Table 3 "effective 1": three tiny uncovered minorities whose union
        // is still uncovered ⇒ one shared run replaces three scans.
        let truth = truth_1d(&[9960, 15, 15, 10]);
        let cfg = MultipleConfig::default();
        let (report, multi_tasks) = run(&truth, 4, &cfg, 11);
        assert!(report.results[0].covered);
        assert!(!report.results[1].covered);

        // Brute force: Group-Coverage per group on the full pool.
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        for g in groups_1d(4) {
            group_coverage(
                &mut engine,
                &truth.all_ids(),
                &Target::group(g),
                50,
                50,
                &DncConfig::default(),
            )
            .unwrap();
        }
        let brute_tasks = engine.ledger().total_tasks();
        assert!(
            multi_tasks < brute_tasks,
            "aggregated {multi_tasks} should beat brute {brute_tasks}"
        );
    }

    #[test]
    fn adversarial_case_pays_penalty_but_stays_correct() {
        // Table 3 "adversarial": three uncovered minorities whose union IS
        // covered ⇒ the super-group run certifies nothing and each member
        // re-runs. Verdicts must still be right.
        let truth = truth_1d(&[9880, 40, 40, 40]);
        let cfg = MultipleConfig::default();
        let (report, _) = run(&truth, 4, &cfg, 5);
        let covered: Vec<bool> = report.results.iter().map(|r| r.covered).collect();
        assert_eq!(covered, vec![true, false, false, false]);
        for r in report.uncovered() {
            assert_eq!(r.count, 40);
            assert!(r.count_exact);
        }
    }

    #[test]
    fn sample_alone_can_certify_majorities() {
        // With c·τ = 100 samples over a 99%-majority dataset, the majority
        // group should usually be certified by the sample credit alone
        // (τ' = 0 ⇒ no extra Group-Coverage work for it).
        let truth = truth_1d(&[5000, 8]);
        let cfg = MultipleConfig::default();
        let (report, _) = run(&truth, 2, &cfg, 2);
        let maj = report.result_for(&Pattern::single(1, 0, 0)).unwrap();
        assert!(maj.covered);
    }

    #[test]
    fn small_pool_smaller_than_sample() {
        let truth = truth_1d(&[30, 5]);
        let cfg = MultipleConfig {
            tau: 10,
            ..MultipleConfig::default()
        };
        let (report, _) = run(&truth, 2, &cfg, 9);
        assert!(report.results[0].covered);
        assert!(!report.results[1].covered);
        assert_eq!(report.results[1].count, 5);
    }

    #[test]
    fn report_preserves_group_order() {
        let truth = truth_1d(&[100, 200, 300]);
        let cfg = MultipleConfig {
            tau: 50,
            ..MultipleConfig::default()
        };
        let (report, _) = run(&truth, 3, &cfg, 1);
        let order: Vec<Pattern> = report.results.iter().map(|r| r.group).collect();
        assert_eq!(order, groups_1d(3));
    }

    /// The sharded scan is a pure wall-clock knob: outcomes, super-groups
    /// and the logical ledger are byte-identical for any worker count,
    /// including the degenerate 1-worker path and the plain sequential
    /// driver.
    #[test]
    fn parallel_scan_is_byte_identical_to_serial() {
        let truth = truth_1d(&[900, 60, 30, 25, 10, 40]);
        for resolve in [false, true] {
            let cfg = MultipleConfig {
                resolve_supergroup_members: resolve,
                ..MultipleConfig::default()
            };
            let mut serial_engine = Engine::with_point_batch(PerfectSource::new(&truth), cfg.n);
            let mut rng = SmallRng::seed_from_u64(42);
            let serial = multiple_coverage(
                &mut serial_engine,
                &truth.all_ids(),
                &groups_1d(6),
                &cfg,
                &mut rng,
            )
            .unwrap();
            let serial_json = serde_json::to_string(&serial).unwrap();
            for workers in [1usize, 2, 4, 8] {
                let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), cfg.n);
                let mut rng = SmallRng::seed_from_u64(42);
                let parallel = multiple_coverage_par(
                    &mut engine,
                    &truth.all_ids(),
                    &groups_1d(6),
                    &cfg,
                    &mut rng,
                    IntraJobParallelism(workers),
                )
                .unwrap();
                assert_eq!(
                    serde_json::to_string(&parallel).unwrap(),
                    serial_json,
                    "workers {workers}, resolve {resolve}"
                );
                assert_eq!(
                    engine.ledger(),
                    serial_engine.ledger(),
                    "ledger diverged at workers {workers}, resolve {resolve}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_groups_panics() {
        let truth = truth_1d(&[10, 10]);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = multiple_coverage(
            &mut engine,
            &truth.all_ids(),
            &[],
            &MultipleConfig::default(),
            &mut rng,
        );
    }
}
