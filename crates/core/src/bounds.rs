//! Theoretical task bounds from §3.2 of the paper.
//!
//! * Theorem 3.2: with `N = n` (a single tree) the maximum number of tasks
//!   is `Θ(τ·log n)`, and the bound is tight.
//! * Lemma 3.3: with the pool partitioned into `⌈N/n⌉` trees the maximum is
//!   `Θ(N/n + τ·log n)`.
//! * The scan lower bound: any algorithm needs `N/n` set queries just to
//!   touch every object once, so Group-Coverage is within an additive
//!   `Θ(τ·log n)` of optimal.
//!
//! The paper's Table 1 reports the bound with a base-10 logarithm
//! (`1522/50 + 50·log10(50) ≈ 115`); the asymptotic analysis uses base 2.
//! Both are provided.

use crate::error::require_positive_n;
use serde::{Deserialize, Serialize};

/// Logarithm base used when evaluating the bound formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LogBase {
    /// Base 2 — the asymptotic analysis (binary splitting).
    #[default]
    Two,
    /// Base 10 — the constant the paper reports in Table 1.
    Ten,
    /// Natural log.
    E,
}

impl LogBase {
    fn log(self, x: f64) -> f64 {
        match self {
            Self::Two => x.log2(),
            Self::Ten => x.log10(),
            Self::E => x.ln(),
        }
    }
}

/// Upper bound on Group-Coverage tasks: `N/n + τ·log(n)` (Lemma 3.3).
///
/// # Panics
/// Panics when `n == 0`.
pub fn group_coverage_upper_bound(n_total: usize, n: usize, tau: usize, base: LogBase) -> f64 {
    require_positive_n(n);
    let roots = n_total as f64 / n as f64;
    let split_cost = tau as f64 * base.log((n.max(2)) as f64);
    roots + split_cost
}

/// Lower bound for any algorithm that must certify an uncovered group:
/// `N/n` set queries (every object must appear in at least one query).
pub fn scan_lower_bound(n_total: usize, n: usize) -> f64 {
    require_positive_n(n);
    n_total as f64 / n as f64
}

/// The adversarial-instance cost of the tightness proof of Theorem 3.2:
/// `Θ(τ·log(n/τ))` — τ−1 members uniformly spread over a single tree.
pub fn tightness_adversarial_cost(n: usize, tau: usize, base: LogBase) -> f64 {
    require_positive_n(n);
    assert!(tau > 0, "tau must be positive");
    let ratio = (n as f64 / tau as f64).max(2.0);
    tau as f64 * base.log(ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_bound_is_115() {
        // FERET slice: N = 215 + 1307 = 1522, n = 50, τ = 50.
        let b = group_coverage_upper_bound(1522, 50, 50, LogBase::Ten);
        assert!((b - 115.39).abs() < 0.1, "got {b}");
    }

    #[test]
    fn base2_bound_dominates_base10() {
        let b2 = group_coverage_upper_bound(1000, 50, 50, LogBase::Two);
        let b10 = group_coverage_upper_bound(1000, 50, 50, LogBase::Ten);
        assert!(b2 > b10);
    }

    #[test]
    fn lower_bound_is_scan() {
        assert_eq!(scan_lower_bound(100_000, 50), 2000.0);
        assert_eq!(scan_lower_bound(10, 50), 0.2);
    }

    #[test]
    fn upper_bound_monotone_in_tau_and_n_total() {
        let base = LogBase::Two;
        assert!(
            group_coverage_upper_bound(1000, 50, 60, base)
                > group_coverage_upper_bound(1000, 50, 50, base)
        );
        assert!(
            group_coverage_upper_bound(2000, 50, 50, base)
                > group_coverage_upper_bound(1000, 50, 50, base)
        );
    }

    #[test]
    fn adversarial_cost_shrinks_with_tau_ratio() {
        // For fixed n, the per-member path gets shorter as τ grows.
        let a = tightness_adversarial_cost(4096, 4, LogBase::Two) / 4.0;
        let b = tightness_adversarial_cost(4096, 64, LogBase::Two) / 64.0;
        assert!(a > b);
    }

    #[test]
    fn small_n_does_not_produce_negative_bounds() {
        for base in [LogBase::Two, LogBase::Ten, LogBase::E] {
            assert!(group_coverage_upper_bound(10, 1, 5, base) >= 10.0);
            assert!(tightness_adversarial_cost(1, 1, base) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_panics() {
        group_coverage_upper_bound(10, 0, 5, LogBase::Two);
    }
}
