//! The engine's observability hook: phase events out, nothing back in.
//!
//! An [`EngineProbe`] is a listener the serving layer (or a test harness)
//! attaches to an [`Engine`](crate::engine::Engine) to hear **phase
//! events** — coarse progress marks an algorithm driver emits as it works
//! ("phase-1 sample done", "super-group 3/7 scanned"). The service crate's
//! telemetry plane implements it to build per-job timelines; the core crate
//! only defines the seam.
//!
//! The contract is deliberately one-way and read-only:
//!
//! * a probe **observes** — it receives `&str`s and must not (and cannot,
//!   through this trait) influence an answer, a ledger entry, or a verdict.
//!   With a probe attached or not, every algorithm outcome and every
//!   logical ledger is byte-identical; the service's telemetry proptest
//!   pins exactly that;
//! * emission is **cheap when unobserved** — drivers emit through
//!   [`ProbeHandle::emit`], whose detail argument is a closure that is
//!   never called (no formatting, no allocation) unless a probe is
//!   actually attached;
//! * probes are `Send + Sync` and shared by `Arc`, so one listener can
//!   hear many engines (a parallel scan's workers, a whole worker pool)
//!   without coordination beyond its own interior mutability.
//!
//! ```
//! use coverage_core::probe::{EngineProbe, ProbeHandle};
//! use std::sync::{Arc, Mutex};
//!
//! #[derive(Default)]
//! struct Log(Mutex<Vec<String>>);
//! impl EngineProbe for Log {
//!     fn on_phase(&self, phase: &str, detail: &str) {
//!         self.0.lock().unwrap().push(format!("{phase}: {detail}"));
//!     }
//! }
//!
//! let log = Arc::new(Log::default());
//! let probe = ProbeHandle::new(log.clone());
//! probe.emit("sample", || "labeled 120 objects".to_string());
//! // Unattached handles skip the closure entirely.
//! ProbeHandle::none().emit("sample", || unreachable!("never formatted"));
//! assert_eq!(log.0.lock().unwrap().as_slice(), ["sample: labeled 120 objects"]);
//! ```

use std::fmt;
use std::sync::Arc;

/// A listener for engine phase events. Implementations must be cheap and
/// non-blocking — they run inline on the audit's thread — and must never
/// feed information back into the run (observability is strictly
/// read-only; see the [module docs](self)).
pub trait EngineProbe: Send + Sync {
    /// One phase event: a short machine-friendly `phase` tag (e.g.
    /// `"scan_group"`) plus a human-readable `detail` line.
    fn on_phase(&self, phase: &str, detail: &str);
}

/// A cheaply cloneable, possibly-absent probe attachment.
///
/// This is what an [`Engine`](crate::engine::Engine) actually stores: the
/// default [`ProbeHandle::none`] costs one `Option` check per emission and
/// never evaluates the detail closure, so un-instrumented runs (the whole
/// core test suite, the benches' hot paths) pay nothing.
#[derive(Clone, Default)]
pub struct ProbeHandle(Option<Arc<dyn EngineProbe>>);

impl ProbeHandle {
    /// The absent probe: every [`ProbeHandle::emit`] is a no-op.
    pub fn none() -> Self {
        Self(None)
    }

    /// Wraps a listener.
    pub fn new(probe: Arc<dyn EngineProbe>) -> Self {
        Self(Some(probe))
    }

    /// Is a listener attached?
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one phase event. The `detail` closure is only evaluated when
    /// a listener is attached — emission sites may format freely.
    pub fn emit(&self, phase: &str, detail: impl FnOnce() -> String) {
        if let Some(probe) = &self.0 {
            probe.on_phase(phase, &detail());
        }
    }
}

// `Arc<dyn EngineProbe>` has no `Debug`; the handle prints its presence,
// which is all an engine dump needs.
impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(_) => f.write_str("ProbeHandle(attached)"),
            None => f.write_str("ProbeHandle(none)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder(Mutex<Vec<(String, String)>>);

    impl EngineProbe for Recorder {
        fn on_phase(&self, phase: &str, detail: &str) {
            self.0
                .lock()
                .unwrap()
                .push((phase.to_string(), detail.to_string()));
        }
    }

    #[test]
    fn attached_probe_hears_events_in_order() {
        let recorder = Arc::new(Recorder::default());
        let handle = ProbeHandle::new(recorder.clone());
        assert!(handle.is_attached());
        handle.emit("a", || "first".to_string());
        handle.emit("b", || "second".to_string());
        let events = recorder.0.lock().unwrap();
        assert_eq!(
            events.as_slice(),
            [
                ("a".to_string(), "first".to_string()),
                ("b".to_string(), "second".to_string())
            ]
        );
    }

    #[test]
    fn absent_probe_never_formats() {
        let handle = ProbeHandle::none();
        assert!(!handle.is_attached());
        handle.emit("x", || panic!("detail must not be evaluated"));
        // Default is the absent handle too.
        ProbeHandle::default().emit("y", || unreachable!());
    }

    #[test]
    fn clones_share_the_listener() {
        let recorder = Arc::new(Recorder::default());
        let handle = ProbeHandle::new(recorder.clone());
        let clone = handle.clone();
        clone.emit("c", || "via clone".to_string());
        assert_eq!(recorder.0.lock().unwrap().len(), 1);
        assert_eq!(format!("{handle:?}"), "ProbeHandle(attached)");
        assert_eq!(format!("{:?}", ProbeHandle::none()), "ProbeHandle(none)");
    }
}
