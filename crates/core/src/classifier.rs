//! **Classifier-Coverage** — using a (possibly unreliable) pre-trained
//! predictor to cut the crowd bill (Algorithms 4 & 5, §5).
//!
//! A classifier splits the pool into a *predicted-positive* set `G` and the
//! rest. The crowd's job shrinks to (1) removing false positives from `G`
//! and (2), if fewer than `τ` verified members remain, hunting for false
//! negatives in `D − G` with plain Group-Coverage.
//!
//! False positives are removed by one of two strategies, chosen from an
//! estimated sample precision:
//!
//! * **Partition** — divide-and-conquer with *reverse* set queries ("is
//!   there any individual NOT in g?"); cheap when precision is high because
//!   almost every chunk answers *no* and is verified wholesale;
//! * **Label** — plain point labeling of `G`, better when precision is so
//!   low that the d&c would split down to fragments anyway.
//!
//! The decision threshold: Table 2 of the paper is only consistent with
//! *partition when sample precision ≥ 0.75* (see DESIGN.md §2).

use crate::engine::{AnswerSource, Engine, ObjectId};
use crate::error::{require_positive_n, try_ask, Interrupted};
use crate::group_coverage::{group_coverage, DncConfig, GroupCoverageOutcome};
use crate::ledger::TaskLedger;
use crate::target::Target;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// False-positive elimination strategy (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FpElimination {
    /// Divide-and-conquer with reverse set queries (Algorithm 5, `Partition`).
    Partition,
    /// Point-label the predicted set (Algorithm 5, `Label`).
    Label,
}

/// Parameters for [`classifier_coverage`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Coverage threshold `τ`.
    pub tau: usize,
    /// Subset-size upper bound `n`.
    pub n: usize,
    /// Fraction of the predicted set sampled to estimate precision
    /// (the paper found 10% a good choice).
    pub sample_fraction: f64,
    /// Minimum estimated precision for choosing [`FpElimination::Partition`].
    pub precision_threshold: f64,
    /// Stop the partition pass as soon as `τ` members are verified
    /// (optimization; off by default, matching the paper's pseudo-code,
    /// which cleans the whole predicted set).
    pub partition_early_stop: bool,
    /// Knobs for the final Group-Coverage pass over `D − G`.
    pub dnc: DncConfig,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self {
            tau: 50,
            n: 50,
            sample_fraction: 0.10,
            precision_threshold: 0.75,
            partition_early_stop: false,
            dnc: DncConfig::default(),
        }
    }
}

/// Output of [`classifier_coverage`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassifierOutcome {
    /// Is the target covered in the whole pool?
    pub covered: bool,
    /// The strategy the precision estimate selected.
    pub strategy: FpElimination,
    /// Estimated precision of the classifier on the sampled subset of `G`.
    pub estimated_precision: f64,
    /// Members verified inside the predicted set (`c'` in the paper).
    pub verified_in_predicted: usize,
    /// Known member count overall (exact when `covered == false` and the
    /// label pass was exhaustive — see `count_exact`).
    pub count: usize,
    /// True when `count` is the exact population of the target in the pool.
    pub count_exact: bool,
    /// Crowd work consumed by this call.
    pub tasks: TaskLedger,
}

/// Runs **Classifier-Coverage** (Algorithm 4).
///
/// * `pool` — the whole dataset `D` (presentation order).
/// * `predicted` — the subset of `pool` the classifier labels as `target`
///   (`G` in the paper). Must be a subset of `pool`.
///
/// # Panics
/// Panics when `cfg.n == 0`, when `sample_fraction` is outside `(0, 1]`,
/// or when `predicted` contains ids missing from `pool`.
///
/// # Errors
/// When the ask path fails, the [`Interrupted`] error carries a partial
/// [`ClassifierOutcome`] with the members verified before the cut (`count`
/// a lower bound, `covered == false`) — unless those members already reach
/// `τ`, in which case the answers in hand prove coverage and the run
/// finishes `Ok` with a covered verdict despite the refusal. A failure
/// during the precision sample reports the conservative `Label` strategy
/// with zero estimated precision.
///
/// # Example
///
/// ```
/// use coverage_core::prelude::*;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// // 200 female images at the front of a 1 000-image pool; a classifier
/// // with perfect precision predicted 150 of them (and nothing else).
/// let labels: Vec<Labels> = (0..1000)
///     .map(|i| Labels::single(u8::from(i < 200)))
///     .collect();
/// let truth = VecGroundTruth::new(labels);
/// let predicted: Vec<ObjectId> = (0..150).map(ObjectId).collect();
/// let female = Target::group(Pattern::parse("1").unwrap());
///
/// let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
/// let mut rng = SmallRng::seed_from_u64(4);
/// let out = classifier_coverage(
///     &mut engine, &truth.all_ids(), &predicted, &female,
///     &ClassifierConfig::default(), &mut rng,
/// ).unwrap();
/// assert!(out.covered);
/// assert_eq!(out.strategy, FpElimination::Partition); // precision ≈ 1.0
/// // Verifying via the classifier is far cheaper than a fresh search.
/// assert!(out.tasks.total_tasks() < 10);
/// ```
pub fn classifier_coverage<S: AnswerSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    predicted: &[ObjectId],
    target: &Target,
    cfg: &ClassifierConfig,
    rng: &mut R,
) -> Result<ClassifierOutcome, Interrupted<ClassifierOutcome>> {
    require_positive_n(cfg.n);
    assert!(
        cfg.sample_fraction > 0.0 && cfg.sample_fraction <= 1.0,
        "sample_fraction must be in (0, 1]"
    );
    let before = engine.ledger_snapshot();
    let pool_set: HashSet<ObjectId> = pool.iter().copied().collect();
    assert!(
        predicted.iter().all(|id| pool_set.contains(id)),
        "predicted set must be a subset of the pool"
    );

    /// Partial outcome shared by every interruption site.
    fn partial_outcome(
        strategy: FpElimination,
        estimated_precision: f64,
        verified: usize,
        tasks: TaskLedger,
    ) -> ClassifierOutcome {
        ClassifierOutcome {
            covered: false,
            strategy,
            estimated_precision,
            verified_in_predicted: verified,
            count: verified,
            count_exact: false,
            tasks,
        }
    }

    // Lines 2-3: sample G, label it, estimate precision.
    let mut predicted: Vec<ObjectId> = predicted.to_vec();
    let sample_size = ((predicted.len() as f64 * cfg.sample_fraction).ceil() as usize)
        .min(predicted.len())
        .max(usize::from(!predicted.is_empty()));
    let len = predicted.len();
    for i in 0..sample_size {
        let j = rng.gen_range(0..len - i);
        predicted.swap(j, len - 1 - i);
    }
    let sample: Vec<ObjectId> = predicted.split_off(len - sample_size);
    let sample_labels = try_ask!(
        engine.ask_point_labels_batched(&sample),
        partial_outcome(FpElimination::Label, 0.0, 0, engine.ledger().since(&before))
    );
    let sample_true: Vec<ObjectId> = sample
        .iter()
        .zip(&sample_labels)
        .filter(|(_, l)| target.matches(l))
        .map(|(id, _)| *id)
        .collect();
    let estimated_precision = if sample.is_empty() {
        0.0
    } else {
        sample_true.len() as f64 / sample.len() as f64
    };

    // Line 4: pick the elimination strategy.
    let strategy = if estimated_precision >= cfg.precision_threshold {
        FpElimination::Partition
    } else {
        FpElimination::Label
    };

    // Remove false positives from the (unsampled remainder of the)
    // predicted set. Sampled true members are already verified.
    let mut verified = sample_true.len();
    let early_stop = cfg
        .partition_early_stop
        .then(|| cfg.tau.saturating_sub(verified));
    let mut label_exhaustive = true;
    match strategy {
        FpElimination::Partition => {
            let found = match partition(engine, &predicted, target, cfg.n, early_stop) {
                Ok(found) => found,
                Err(i) => {
                    // Count the members the partition pass had verified. If
                    // they already reach τ the answers in hand *prove*
                    // coverage — finish Ok exactly as the post-elimination
                    // check below would, instead of reporting a cut.
                    let total = verified + i.partial.len();
                    if total >= cfg.tau {
                        return Ok(ClassifierOutcome {
                            covered: true,
                            strategy,
                            estimated_precision,
                            verified_in_predicted: total,
                            count: total,
                            count_exact: false,
                            tasks: engine.ledger().since(&before),
                        });
                    }
                    return Err(Interrupted {
                        partial: partial_outcome(
                            strategy,
                            estimated_precision,
                            total,
                            engine.ledger().since(&before),
                        ),
                        error: i.error,
                    });
                }
            };
            verified += found.len();
        }
        FpElimination::Label => {
            // Label in batches; stop once τ members are verified (Alg. 5
            // line 25). Exhaustive only when the whole set was labeled.
            let mut i = 0usize;
            while i < predicted.len() && verified < cfg.tau {
                let end = (i + engine.point_batch()).min(predicted.len());
                let labels = try_ask!(
                    engine.ask_point_labels_batched(&predicted[i..end]),
                    partial_outcome(
                        strategy,
                        estimated_precision,
                        verified,
                        engine.ledger().since(&before)
                    )
                );
                verified += labels.iter().filter(|l| target.matches(l)).count();
                i = end;
            }
            label_exhaustive = i >= predicted.len();
        }
    }

    // Line 6: enough verified members already?
    if verified >= cfg.tau {
        return Ok(ClassifierOutcome {
            covered: true,
            strategy,
            estimated_precision,
            verified_in_predicted: verified,
            count: verified,
            count_exact: false,
            tasks: engine.ledger().since(&before),
        });
    }

    // Line 7: hunt for false negatives in D − G.
    let predicted_set: HashSet<ObjectId> = predicted.iter().chain(sample.iter()).copied().collect();
    let rest: Vec<ObjectId> = pool
        .iter()
        .filter(|id| !predicted_set.contains(id))
        .copied()
        .collect();
    let out: GroupCoverageOutcome =
        match group_coverage(engine, &rest, target, cfg.tau - verified, cfg.n, &cfg.dnc) {
            Ok(out) => out,
            Err(i) => {
                // Fold the interrupted hunt's lower bound into the partial.
                return Err(Interrupted {
                    partial: ClassifierOutcome {
                        covered: false,
                        strategy,
                        estimated_precision,
                        verified_in_predicted: verified,
                        count: verified + i.partial.count,
                        count_exact: false,
                        tasks: engine.ledger().since(&before),
                    },
                    error: i.error,
                });
            }
        };

    Ok(ClassifierOutcome {
        covered: out.covered,
        strategy,
        estimated_precision,
        verified_in_predicted: verified,
        count: verified + out.count,
        count_exact: !out.covered && label_exhaustive,
        tasks: engine.ledger().since(&before),
    })
}

/// `Partition` (Algorithm 5): divide-and-conquer removal of false positives
/// from `objects` using reverse set queries. Returns the verified members.
///
/// `early_stop`: when `Some(k)`, stop as soon as `k` members are verified.
///
/// # Errors
/// On an ask-path failure the [`Interrupted`] error carries the members
/// verified before the cut.
pub fn partition<S: AnswerSource>(
    engine: &mut Engine<S>,
    objects: &[ObjectId],
    target: &Target,
    n: usize,
    early_stop: Option<usize>,
) -> Result<Vec<ObjectId>, Interrupted<Vec<ObjectId>>> {
    require_positive_n(n);
    let reverse = target.negated();
    let mut verified = Vec::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    let mut start = 0usize;
    while start < objects.len() {
        let end = (start + n).min(objects.len());
        queue.push_back((start, end));
        start = end;
    }
    while let Some((b, e)) = queue.pop_front() {
        if let Some(k) = early_stop {
            if verified.len() >= k {
                break;
            }
        }
        let any_not = try_ask!(engine.ask_set(&objects[b..e], &reverse), verified);
        if !any_not {
            // No outsider in this chunk: every object verified at once.
            verified.extend_from_slice(&objects[b..e]);
        } else if e - b > 1 {
            let mid = b + (e - b).div_ceil(2);
            queue.push_back((b, mid));
            queue.push_back((mid, e));
        }
        // A singleton answering "yes, not in g" is a false positive: drop.
    }
    Ok(verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GroundTruth;
    use crate::engine::{PerfectSource, VecGroundTruth};
    use crate::pattern::Pattern;
    use crate::schema::Labels;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn minority() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    /// Pool with `pos` positives spread through `total`, plus a classifier
    /// prediction with the given true/false positive id lists.
    fn truth_spread(total: usize, positives: &[usize]) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..total)
                .map(|i| Labels::single(u8::from(positives.contains(&i))))
                .collect(),
        )
    }

    fn ids(v: &[usize]) -> Vec<ObjectId> {
        v.iter().map(|i| ObjectId(*i as u32)).collect()
    }

    #[test]
    fn partition_verifies_pure_chunks_cheaply() {
        // 100 predicted, 1 false positive: most chunks answer "no outsider".
        let positives: Vec<usize> = (0..99).collect();
        let truth = truth_spread(100, &positives);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let all = truth.all_ids();
        let verified = partition(&mut engine, &all, &minority(), 50, None).unwrap();
        assert_eq!(verified.len(), 99);
        assert!(!verified.contains(&ObjectId(99)));
        // 2 roots + the d&c path isolating the single FP: ≲ 2 + 2·log2(50).
        let tasks = engine.ledger().set_queries();
        assert!(tasks <= 16, "partition used {tasks} tasks");
    }

    #[test]
    fn partition_with_zero_false_positives_costs_roots_only() {
        let positives: Vec<usize> = (0..100).collect();
        let truth = truth_spread(100, &positives);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let verified = partition(&mut engine, &truth.all_ids(), &minority(), 50, None).unwrap();
        assert_eq!(verified.len(), 100);
        assert_eq!(engine.ledger().set_queries(), 2);
    }

    #[test]
    fn partition_early_stop_halts_at_k() {
        let positives: Vec<usize> = (0..200).collect();
        let truth = truth_spread(200, &positives);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let verified = partition(&mut engine, &truth.all_ids(), &minority(), 50, Some(50)).unwrap();
        assert!(verified.len() >= 50);
        assert_eq!(engine.ledger().set_queries(), 1);
    }

    #[test]
    fn partition_all_false_positives_drops_everything() {
        let truth = truth_spread(60, &[]);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let verified = partition(&mut engine, &truth.all_ids(), &minority(), 50, None).unwrap();
        assert!(verified.is_empty());
    }

    #[test]
    fn high_precision_chooses_partition_and_covers() {
        // 202 predicted: 201 true + 1 FP; 403 females total in 994.
        let females: Vec<usize> = (0..403).collect();
        let truth = truth_spread(994, &females);
        let mut predicted: Vec<usize> = (0..201).collect();
        predicted.push(500); // the false positive (a male)
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let mut rng = SmallRng::seed_from_u64(3);
        let out = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &ids(&predicted),
            &minority(),
            &ClassifierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.strategy, FpElimination::Partition);
        assert!(out.covered);
        assert!(out.estimated_precision >= 0.9);
        assert!(out.verified_in_predicted >= 50);
        // Far cheaper than a standalone Group-Coverage scan (≈ 80 tasks).
        assert!(
            out.tasks.total_tasks() < 40,
            "used {} tasks",
            out.tasks.total_tasks()
        );
    }

    #[test]
    fn low_precision_chooses_label() {
        // Predicted set of 100 with only 8 true members (8% precision).
        let females: Vec<usize> = (0..20).collect();
        let truth = truth_spread(3000, &females);
        let mut predicted: Vec<usize> = (0..8).collect(); // true positives
        predicted.extend(1000..1092); // 92 false positives
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &ids(&predicted),
            &minority(),
            &ClassifierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.strategy, FpElimination::Label);
        assert!(!out.covered, "only 20 females in 3000 with τ=50");
        assert_eq!(out.count, 20, "exact count expected, got {}", out.count);
        assert!(out.count_exact);
    }

    #[test]
    fn perfect_classifier_with_enough_members_is_nearly_free() {
        let females: Vec<usize> = (0..200).collect();
        let truth = truth_spread(1000, &females);
        let predicted: Vec<usize> = (0..200).collect();
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let mut rng = SmallRng::seed_from_u64(9);
        let out = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &ids(&predicted),
            &minority(),
            &ClassifierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.covered);
        assert_eq!(out.strategy, FpElimination::Partition);
        // 1 sample batch + 4 partition roots.
        assert!(out.tasks.total_tasks() <= 6, "{}", out.tasks.total_tasks());
    }

    #[test]
    fn empty_prediction_falls_back_to_group_coverage() {
        let females: Vec<usize> = (0..60).collect();
        let truth = truth_spread(500, &females);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let mut rng = SmallRng::seed_from_u64(2);
        let out = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &[],
            &minority(),
            &ClassifierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(out.covered);
        assert_eq!(out.verified_in_predicted, 0);
    }

    #[test]
    fn uncovered_hunt_in_rest_finds_false_negatives() {
        // Classifier finds 10 of 45 females; τ=50 ⇒ uncovered overall, and
        // the exact count must combine verified + rest-pool members.
        let females: Vec<usize> = (0..45).collect();
        let truth = truth_spread(2000, &females);
        let predicted: Vec<usize> = (0..10).collect();
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let mut rng = SmallRng::seed_from_u64(4);
        let out = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &ids(&predicted),
            &minority(),
            &ClassifierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(!out.covered);
        assert_eq!(out.count, 45);
    }

    #[test]
    #[should_panic(expected = "subset of the pool")]
    fn predicted_outside_pool_panics() {
        let truth = truth_spread(10, &[]);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &[ObjectId(99)],
            &minority(),
            &ClassifierConfig::default(),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "sample_fraction")]
    fn bad_sample_fraction_panics() {
        let truth = truth_spread(10, &[]);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let mut rng = SmallRng::seed_from_u64(0);
        let cfg = ClassifierConfig {
            sample_fraction: 0.0,
            ..ClassifierConfig::default()
        };
        let _ = classifier_coverage(
            &mut engine,
            &truth.all_ids(),
            &[],
            &minority(),
            &cfg,
            &mut rng,
        );
    }
}
