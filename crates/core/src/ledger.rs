//! Task accounting and the fixed-price cost model (§2.3).
//!
//! The paper's objective is to minimize the *number of tasks* under a fixed
//! pricing model. The ledger distinguishes:
//!
//! * **set queries** — one yes/no HIT over a set of objects; always one task.
//! * **point work** — labeling individual objects. Raw labeled-object counts
//!   and charged *point tasks* are tracked separately, because the paper's
//!   HIT layout batches up to `n` images per HIT ("each HIT contained a set
//!   of … 50 images"), while the `Base-Coverage` baseline by definition puts
//!   a single object in each task.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Running totals of crowd work issued through an [`Engine`](crate::engine::Engine).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskLedger {
    set_queries: u64,
    point_tasks: u64,
    point_labels: u64,
}

impl TaskLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one set query (one task).
    pub fn record_set_query(&mut self) {
        self.set_queries += 1;
    }

    /// Records point work: `labels` objects labeled, charged as `tasks` HITs.
    pub fn record_point_work(&mut self, labels: u64, tasks: u64) {
        self.point_labels += labels;
        self.point_tasks += tasks;
    }

    /// Number of set queries issued.
    pub fn set_queries(&self) -> u64 {
        self.set_queries
    }

    /// Number of HITs charged for point work.
    pub fn point_tasks(&self) -> u64 {
        self.point_tasks
    }

    /// Number of individual objects labeled via point work.
    pub fn point_labels(&self) -> u64 {
        self.point_labels
    }

    /// Total tasks (HITs): set queries plus charged point tasks.
    pub fn total_tasks(&self) -> u64 {
        self.set_queries + self.point_tasks
    }

    /// The work recorded since `earlier` (a snapshot of the same ledger).
    ///
    /// # Panics
    /// Panics if `earlier` is not a prefix of `self` (counters decreased).
    pub fn since(&self, earlier: &TaskLedger) -> TaskLedger {
        assert!(
            self.set_queries >= earlier.set_queries
                && self.point_tasks >= earlier.point_tasks
                && self.point_labels >= earlier.point_labels,
            "ledger snapshot is not a prefix of the current ledger"
        );
        TaskLedger {
            set_queries: self.set_queries - earlier.set_queries,
            point_tasks: self.point_tasks - earlier.point_tasks,
            point_labels: self.point_labels - earlier.point_labels,
        }
    }

    /// Adds another ledger's totals into this one.
    pub fn absorb(&mut self, other: &TaskLedger) {
        self.set_queries += other.set_queries;
        self.point_tasks += other.point_tasks;
        self.point_labels += other.point_labels;
    }
}

impl fmt::Display for TaskLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tasks ({} set queries, {} point tasks / {} labels)",
            self.total_tasks(),
            self.set_queries,
            self.point_tasks,
            self.point_labels
        )
    }
}

/// Dollar cost of a run — the paper's fixed-price model plus the platform's
/// service charge (Amazon charged the authors 20%: $44.10 wages, $8.82 fees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// Reward paid per task per assignment, in dollars.
    pub reward_per_task: f64,
    /// Platform fee as a fraction of wages (AMT: 0.20).
    pub fee_rate: f64,
    /// Redundancy: how many workers answer each HIT (majority vote of 3 in
    /// the paper's experiments).
    pub assignments_per_task: u32,
}

impl PricingModel {
    /// The paper's first experiment setting: $0.10/HIT, 3 assignments, 20% fee.
    pub fn amt_ten_cents() -> Self {
        Self {
            reward_per_task: 0.10,
            fee_rate: 0.20,
            assignments_per_task: 3,
        }
    }

    /// The paper's reduced-reward setting: $0.05/HIT ("interestingly, this
    /// did not discourage the workers").
    pub fn amt_five_cents() -> Self {
        Self {
            reward_per_task: 0.05,
            fee_rate: 0.20,
            assignments_per_task: 3,
        }
    }

    /// Wages paid to workers for the ledger's tasks.
    pub fn wages(&self, ledger: &TaskLedger) -> f64 {
        self.wages_for_tasks(ledger.total_tasks())
    }

    /// Platform fees on top of wages.
    pub fn fees(&self, ledger: &TaskLedger) -> f64 {
        self.wages(ledger) * self.fee_rate
    }

    /// Total cost: wages + fees.
    pub fn total_cost(&self, ledger: &TaskLedger) -> f64 {
        self.wages(ledger) + self.fees(ledger)
    }

    /// Wages for a raw task count (HIT-equivalents) — for callers that
    /// price platform-side statistics rather than an engine ledger, e.g.
    /// `crowd-sim`'s `PlatformStats::wage_tasks`.
    pub fn wages_for_tasks(&self, tasks: u64) -> f64 {
        tasks as f64 * self.reward_per_task * f64::from(self.assignments_per_task)
    }

    /// Total cost (wages + fees) for a raw task count.
    pub fn total_cost_for_tasks(&self, tasks: u64) -> f64 {
        self.wages_for_tasks(tasks) * (1.0 + self.fee_rate)
    }
}

/// Charged point tasks when `labels` objects are batched `batch` per HIT.
pub fn batched_tasks(labels: usize, batch: usize) -> u64 {
    assert!(batch > 0, "batch size must be positive");
    (labels.div_ceil(batch)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut l = TaskLedger::new();
        l.record_set_query();
        l.record_set_query();
        l.record_point_work(100, 2);
        assert_eq!(l.set_queries(), 2);
        assert_eq!(l.point_tasks(), 2);
        assert_eq!(l.point_labels(), 100);
        assert_eq!(l.total_tasks(), 4);
    }

    #[test]
    fn since_gives_delta() {
        let mut l = TaskLedger::new();
        l.record_set_query();
        let snap = l;
        l.record_set_query();
        l.record_point_work(10, 1);
        let d = l.since(&snap);
        assert_eq!(d.set_queries(), 1);
        assert_eq!(d.point_labels(), 10);
        assert_eq!(d.total_tasks(), 2);
    }

    #[test]
    #[should_panic(expected = "not a prefix")]
    fn since_rejects_unrelated_snapshot() {
        let mut big = TaskLedger::new();
        big.record_set_query();
        TaskLedger::new().since(&big);
    }

    #[test]
    fn absorb_sums() {
        let mut a = TaskLedger::new();
        a.record_set_query();
        let mut b = TaskLedger::new();
        b.record_point_work(5, 1);
        a.absorb(&b);
        assert_eq!(a.total_tasks(), 2);
        assert_eq!(a.point_labels(), 5);
    }

    #[test]
    fn batching_rounds_up() {
        assert_eq!(batched_tasks(0, 50), 0);
        assert_eq!(batched_tasks(1, 50), 1);
        assert_eq!(batched_tasks(50, 50), 1);
        assert_eq!(batched_tasks(51, 50), 2);
        assert_eq!(batched_tasks(100, 1), 100);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        batched_tasks(10, 0);
    }

    #[test]
    fn pricing_matches_paper_fee_structure() {
        // The authors paid $44.10 wages and $8.82 fees — a 20% fee rate.
        let p = PricingModel::amt_five_cents();
        let mut l = TaskLedger::new();
        for _ in 0..294 {
            l.record_set_query();
        }
        let wages = p.wages(&l);
        assert!((wages - 44.1).abs() < 1e-9);
        assert!((p.fees(&l) - 8.82).abs() < 1e-9);
        assert!((p.total_cost(&l) - 52.92).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes() {
        let mut l = TaskLedger::new();
        l.record_set_query();
        l.record_point_work(3, 1);
        let s = l.to_string();
        assert!(s.contains("2 tasks"));
        assert!(s.contains("1 set queries"));
    }
}
