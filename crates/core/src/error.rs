//! Error types: schema/pattern construction failures and the fallible
//! ask path.
//!
//! Two families live here:
//!
//! * [`CoverageError`] — data-dependent construction failures (bad schemas,
//!   unparsable patterns);
//! * [`AskError`] / [`Interrupted`] — failures of the *ask path*: a crowd
//!   question that could not be answered because a budget ran out, the run
//!   was cancelled, or the answer source itself failed. Algorithms surface
//!   these as `Err(Interrupted { error, partial })`, carrying the partial
//!   result discovered before the cut — coverage auditing is an anytime
//!   process, and partial progress is data, not control flow.

use std::fmt;

/// The budget state at the moment a question was refused.
///
/// Carried by [`AskError::BudgetExhausted`] so callers can report how much
/// was spent and which cap the rejected question would have crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetSnapshot {
    /// Crowd tasks charged before the rejected question.
    pub spent: u64,
    /// The cap the next question would have crossed.
    pub cap: u64,
    /// True when the exhausted cap is shared with other ask paths (e.g. a
    /// service-wide budget) rather than owned by this run alone.
    pub shared: bool,
}

impl fmt::Display for BudgetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} tasks spent ({} cap)",
            self.spent,
            self.cap,
            if self.shared { "shared" } else { "per-run" }
        )
    }
}

/// Why an ask-path question could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AskError {
    /// A budget cap refused the question; the snapshot records the spend at
    /// the moment of refusal. The rejected question is never charged.
    BudgetExhausted(BudgetSnapshot),
    /// The run's [`CancelToken`](crate::engine::CancelToken) was flipped.
    Cancelled,
    /// The answer source itself failed in a way that retrying cannot fix
    /// (an invalid object id reaching a simulator, a malformed question,
    /// ...). Permanent: callers must not retry.
    SourceFailed(String),
    /// The answer source failed *transiently* — a HIT timed out, the
    /// platform hiccuped, a worker abandoned an assignment. Retrying the
    /// same question may succeed; a resilient dispatcher does exactly
    /// that, and surfaces this variant only once its retry budget is
    /// spent. `attempt` records how many delivery attempts were made when
    /// the error was raised (1 = the first try).
    Transient {
        /// Human-readable reason (`"hit timeout"`, `"platform error"`, ...).
        reason: String,
        /// Delivery attempts made so far, starting at 1.
        attempt: u32,
    },
    /// The connection to the platform itself is gone (the dispatcher
    /// thread hung up). Permanent by definition: there is nobody left to
    /// retry against, so callers must fail fast rather than back off.
    ConnectionLost,
}

impl AskError {
    /// True for the one variant a resilient caller may retry:
    /// [`AskError::Transient`]. Everything else — budget refusals,
    /// cancellation, permanent source failures, a lost connection — must
    /// surface immediately.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::Transient { .. })
    }
}

impl fmt::Display for AskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BudgetExhausted(snap) => write!(f, "budget exhausted: {snap}"),
            Self::Cancelled => write!(f, "run cancelled"),
            Self::SourceFailed(msg) => write!(f, "answer source failed: {msg}"),
            Self::Transient { reason, attempt } => {
                write!(f, "transient source failure ({reason}, attempt {attempt})")
            }
            Self::ConnectionLost => write!(f, "platform connection lost (dispatcher gone)"),
        }
    }
}

impl std::error::Error for AskError {}

/// An ask-path failure annotated with the partial result the interrupted
/// algorithm had discovered so far.
///
/// Every algorithm driver returns `Result<Report, Interrupted<Report>>`:
/// on `Err`, `partial` holds the same report type filled with whatever was
/// proven before the cut (witnesses found, groups decided, exact counts),
/// and `error` says why the run stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct Interrupted<P> {
    /// Why the ask path failed.
    pub error: AskError,
    /// Progress proven before the failure.
    pub partial: P,
}

impl<P> Interrupted<P> {
    /// Maps the partial payload, keeping the error.
    pub fn map_partial<Q>(self, f: impl FnOnce(P) -> Q) -> Interrupted<Q> {
        Interrupted {
            error: self.error,
            partial: f(self.partial),
        }
    }
}

impl<P: fmt::Debug> fmt::Display for Interrupted<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interrupted: {}", self.error)
    }
}

impl<P: fmt::Debug> std::error::Error for Interrupted<P> {}

/// Unwraps an ask-path `Result`, or returns `Err(Interrupted)` built from
/// the given partial-result expression (evaluated only on the error path,
/// so it may move locals).
macro_rules! try_ask {
    ($expr:expr, $partial:expr) => {
        match $expr {
            Ok(v) => v,
            Err(error) => {
                return Err($crate::error::Interrupted {
                    error,
                    partial: $partial,
                })
            }
        }
    };
}

pub(crate) use try_ask;

/// The one typed panic shared by every algorithmic entry point that takes a
/// subset-size upper bound `n`: passing `n == 0` is a programmer error, not
/// a data-dependent failure (serving layers validate tenant-supplied specs
/// *before* they can reach this assert — see `coverage-service`'s
/// `JobSpec::validate`).
///
/// # Panics
/// Panics when `n == 0`.
#[track_caller]
pub fn require_positive_n(n: usize) {
    assert!(n > 0, "subset size n must be positive");
}

/// Errors raised while building schemas, labels, or patterns.
///
/// Algorithmic entry points use typed panics (`assert!`) for programmer
/// errors such as `n = 0`; `CoverageError` is reserved for data-dependent
/// construction failures that a caller can reasonably handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageError {
    /// An attribute was declared with fewer than two values.
    AttributeTooNarrow {
        /// Name of the offending attribute.
        name: String,
    },
    /// An attribute was declared with more values than a `u8` index can hold.
    AttributeTooWide {
        /// Name of the offending attribute.
        name: String,
        /// Declared cardinality.
        cardinality: usize,
    },
    /// Two values of one attribute share the same name.
    DuplicateValue {
        /// Attribute name.
        attribute: String,
        /// The repeated value.
        value: String,
    },
    /// Two attributes in one schema share the same name.
    DuplicateAttribute {
        /// The repeated name.
        name: String,
    },
    /// A schema was declared with more attributes than [`crate::schema::MAX_ATTRS`].
    TooManyAttributes {
        /// Number of attributes requested.
        requested: usize,
    },
    /// A schema was declared with zero attributes.
    EmptySchema,
    /// Lookup of an attribute name failed.
    UnknownAttribute {
        /// The name that was not found.
        name: String,
    },
    /// Lookup of a value name failed.
    UnknownValue {
        /// Attribute searched.
        attribute: String,
        /// The value that was not found.
        value: String,
    },
    /// A pattern string could not be parsed.
    PatternParse {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A label vector or pattern has the wrong number of attributes for the schema.
    ArityMismatch {
        /// What the schema expects.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// A value index is out of range for its attribute.
    ValueOutOfRange {
        /// Attribute position.
        attribute: usize,
        /// Supplied value index.
        value: u8,
        /// Attribute cardinality.
        cardinality: usize,
    },
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AttributeTooNarrow { name } => {
                write!(f, "attribute `{name}` needs at least two values")
            }
            Self::AttributeTooWide { name, cardinality } => write!(
                f,
                "attribute `{name}` has cardinality {cardinality}, max supported is 254"
            ),
            Self::DuplicateValue { attribute, value } => {
                write!(f, "attribute `{attribute}` declares value `{value}` twice")
            }
            Self::DuplicateAttribute { name } => {
                write!(f, "schema declares attribute `{name}` twice")
            }
            Self::TooManyAttributes { requested } => write!(
                f,
                "schema declares {requested} attributes, max supported is {}",
                crate::schema::MAX_ATTRS
            ),
            Self::EmptySchema => write!(f, "schema must declare at least one attribute"),
            Self::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            Self::UnknownValue { attribute, value } => {
                write!(f, "attribute `{attribute}` has no value `{value}`")
            }
            Self::PatternParse { input, reason } => {
                write!(f, "cannot parse pattern `{input}`: {reason}")
            }
            Self::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            Self::ValueOutOfRange {
                attribute,
                value,
                cardinality,
            } => write!(
                f,
                "value index {value} out of range for attribute #{attribute} (cardinality {cardinality})"
            ),
        }
    }
}

impl std::error::Error for CoverageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoverageError::UnknownValue {
            attribute: "race".into(),
            value: "martian".into(),
        };
        assert_eq!(e.to_string(), "attribute `race` has no value `martian`");
        let e = CoverageError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoverageError::EmptySchema);
        takes_err(&AskError::Cancelled);
        takes_err(&Interrupted {
            error: AskError::Cancelled,
            partial: 3usize,
        });
    }

    #[test]
    fn ask_error_display() {
        let e = AskError::BudgetExhausted(BudgetSnapshot {
            spent: 7,
            cap: 8,
            shared: false,
        });
        assert_eq!(
            e.to_string(),
            "budget exhausted: 7 of 8 tasks spent (per-run cap)"
        );
        assert_eq!(AskError::Cancelled.to_string(), "run cancelled");
        assert!(AskError::SourceFailed("boom".into())
            .to_string()
            .contains("boom"));
        let t = AskError::Transient {
            reason: "hit timeout".into(),
            attempt: 3,
        };
        assert_eq!(
            t.to_string(),
            "transient source failure (hit timeout, attempt 3)"
        );
        assert!(AskError::ConnectionLost.to_string().contains("dispatcher"));
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(AskError::Transient {
            reason: "platform error".into(),
            attempt: 1,
        }
        .is_transient());
        for permanent in [
            AskError::Cancelled,
            AskError::ConnectionLost,
            AskError::SourceFailed("bad id".into()),
            AskError::BudgetExhausted(BudgetSnapshot {
                spent: 1,
                cap: 1,
                shared: false,
            }),
        ] {
            assert!(!permanent.is_transient(), "{permanent} must not retry");
        }
    }

    #[test]
    fn interrupted_map_partial_keeps_error() {
        let i = Interrupted {
            error: AskError::Cancelled,
            partial: vec![1, 2],
        };
        let mapped = i.map_partial(|v| v.len());
        assert_eq!(mapped.error, AskError::Cancelled);
        assert_eq!(mapped.partial, 2);
    }
}
