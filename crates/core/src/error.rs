//! Error type for schema and pattern construction.

use std::fmt;

/// Errors raised while building schemas, labels, or patterns.
///
/// Algorithmic entry points use typed panics (`assert!`) for programmer
/// errors such as `n = 0`; `CoverageError` is reserved for data-dependent
/// construction failures that a caller can reasonably handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoverageError {
    /// An attribute was declared with fewer than two values.
    AttributeTooNarrow {
        /// Name of the offending attribute.
        name: String,
    },
    /// An attribute was declared with more values than a `u8` index can hold.
    AttributeTooWide {
        /// Name of the offending attribute.
        name: String,
        /// Declared cardinality.
        cardinality: usize,
    },
    /// Two values of one attribute share the same name.
    DuplicateValue {
        /// Attribute name.
        attribute: String,
        /// The repeated value.
        value: String,
    },
    /// Two attributes in one schema share the same name.
    DuplicateAttribute {
        /// The repeated name.
        name: String,
    },
    /// A schema was declared with more attributes than [`crate::schema::MAX_ATTRS`].
    TooManyAttributes {
        /// Number of attributes requested.
        requested: usize,
    },
    /// A schema was declared with zero attributes.
    EmptySchema,
    /// Lookup of an attribute name failed.
    UnknownAttribute {
        /// The name that was not found.
        name: String,
    },
    /// Lookup of a value name failed.
    UnknownValue {
        /// Attribute searched.
        attribute: String,
        /// The value that was not found.
        value: String,
    },
    /// A pattern string could not be parsed.
    PatternParse {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A label vector or pattern has the wrong number of attributes for the schema.
    ArityMismatch {
        /// What the schema expects.
        expected: usize,
        /// What was supplied.
        got: usize,
    },
    /// A value index is out of range for its attribute.
    ValueOutOfRange {
        /// Attribute position.
        attribute: usize,
        /// Supplied value index.
        value: u8,
        /// Attribute cardinality.
        cardinality: usize,
    },
}

impl fmt::Display for CoverageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AttributeTooNarrow { name } => {
                write!(f, "attribute `{name}` needs at least two values")
            }
            Self::AttributeTooWide { name, cardinality } => write!(
                f,
                "attribute `{name}` has cardinality {cardinality}, max supported is 254"
            ),
            Self::DuplicateValue { attribute, value } => {
                write!(f, "attribute `{attribute}` declares value `{value}` twice")
            }
            Self::DuplicateAttribute { name } => {
                write!(f, "schema declares attribute `{name}` twice")
            }
            Self::TooManyAttributes { requested } => write!(
                f,
                "schema declares {requested} attributes, max supported is {}",
                crate::schema::MAX_ATTRS
            ),
            Self::EmptySchema => write!(f, "schema must declare at least one attribute"),
            Self::UnknownAttribute { name } => write!(f, "unknown attribute `{name}`"),
            Self::UnknownValue { attribute, value } => {
                write!(f, "attribute `{attribute}` has no value `{value}`")
            }
            Self::PatternParse { input, reason } => {
                write!(f, "cannot parse pattern `{input}`: {reason}")
            }
            Self::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} attribute values, got {got}")
            }
            Self::ValueOutOfRange {
                attribute,
                value,
                cardinality,
            } => write!(
                f,
                "value index {value} out of range for attribute #{attribute} (cardinality {cardinality})"
            ),
        }
    }
}

impl std::error::Error for CoverageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoverageError::UnknownValue {
            attribute: "race".into(),
            value: "martian".into(),
        };
        assert_eq!(e.to_string(), "attribute `race` has no value `martian`");
        let e = CoverageError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("expected 2"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoverageError::EmptySchema);
    }
}
