//! Patterns: subgroup descriptions over the attributes of interest (§2.2).
//!
//! A pattern `P` is a string of `d` cells where `P[i]` is either a value of
//! attribute `xi` or *unspecified* (`X`). `P = X01` describes every object
//! with `x2 = 0 AND x3 = 1`. Patterns form a lattice: `P` is a **parent** of
//! `P'` when they differ on exactly one attribute which `P` leaves
//! unspecified — the parent is strictly more general.

use crate::error::CoverageError;
use crate::schema::{AttributeSchema, Labels, MAX_ATTRS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel cell value meaning "unspecified" (`X`).
const UNSPEC: u8 = u8::MAX;

/// A pattern over `d` attributes. `Copy`, allocation-free.
///
/// ```
/// use coverage_core::pattern::Pattern;
/// use coverage_core::schema::Labels;
///
/// let p = Pattern::parse("X01").unwrap();
/// assert_eq!(p.level(), 2);
/// assert!(p.matches(&Labels::new(&[7, 0, 1])));
/// assert!(!p.matches(&Labels::new(&[7, 1, 1])));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pattern {
    len: u8,
    cells: [u8; MAX_ATTRS],
}

impl Pattern {
    /// The root pattern with every attribute unspecified (`XX…X`).
    pub fn all_unspecified(d: usize) -> Self {
        assert!(
            (1..=MAX_ATTRS).contains(&d),
            "pattern arity must be in 1..={MAX_ATTRS}, got {d}"
        );
        Self {
            len: d as u8,
            cells: [UNSPEC; MAX_ATTRS],
        }
    }

    /// A fully-specified pattern from explicit value indices.
    pub fn from_values(values: &[u8]) -> Self {
        assert!(
            !values.is_empty() && values.len() <= MAX_ATTRS,
            "pattern arity must be in 1..={MAX_ATTRS}, got {}",
            values.len()
        );
        assert!(
            values.iter().all(|v| *v != UNSPEC),
            "value {UNSPEC} is reserved for the unspecified cell"
        );
        let mut cells = [UNSPEC; MAX_ATTRS];
        cells[..values.len()].copy_from_slice(values);
        Self {
            len: values.len() as u8,
            cells,
        }
    }

    /// A pattern from optional cells (`None` = unspecified).
    pub fn from_cells(cells: &[Option<u8>]) -> Self {
        let mut p = Self::all_unspecified(cells.len());
        for (i, c) in cells.iter().enumerate() {
            p = p.with(i, *c);
        }
        p
    }

    /// The fully-specified pattern matching exactly the given labels.
    pub fn fully_specified(labels: &Labels) -> Self {
        Self::from_values(labels.as_slice())
    }

    /// A single-attribute group: attribute `attr` has value `value`,
    /// everything else unspecified.
    pub fn single(d: usize, attr: usize, value: u8) -> Self {
        assert!(attr < d, "attribute {attr} out of range for arity {d}");
        Self::all_unspecified(d).with(attr, Some(value))
    }

    /// Parses the compact string form used throughout the paper: one
    /// character per attribute, `X` (or `x`) for unspecified, a digit for a
    /// value index below ten.
    pub fn parse(s: &str) -> Result<Self, CoverageError> {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() || chars.len() > MAX_ATTRS {
            return Err(CoverageError::PatternParse {
                input: s.to_owned(),
                reason: format!("arity must be in 1..={MAX_ATTRS}"),
            });
        }
        let mut p = Self::all_unspecified(chars.len());
        for (i, c) in chars.iter().enumerate() {
            match c {
                'X' | 'x' => {}
                d if d.is_ascii_digit() => {
                    p = p.with(i, Some(*d as u8 - b'0'));
                }
                other => {
                    return Err(CoverageError::PatternParse {
                        input: s.to_owned(),
                        reason: format!("unexpected character `{other}`"),
                    })
                }
            }
        }
        Ok(p)
    }

    /// Number of attributes `d`.
    pub fn d(&self) -> usize {
        usize::from(self.len)
    }

    /// Cell `i`: `None` when unspecified.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> Option<u8> {
        assert!(i < self.d(), "attribute index {i} out of range");
        match self.cells[i] {
            UNSPEC => None,
            v => Some(v),
        }
    }

    /// Returns a copy with cell `i` replaced.
    #[must_use]
    pub fn with(&self, i: usize, cell: Option<u8>) -> Self {
        assert!(i < self.d(), "attribute index {i} out of range");
        let v = cell.unwrap_or(UNSPEC);
        assert!(
            cell.is_none() || v != UNSPEC,
            "value {UNSPEC} is reserved for the unspecified cell"
        );
        let mut out = *self;
        out.cells[i] = v;
        out
    }

    /// The pattern's level: number of specified cells. Level 0 is the root
    /// `XX…X`; level `d` patterns are fully specified.
    pub fn level(&self) -> usize {
        self.cells[..self.d()]
            .iter()
            .filter(|c| **c != UNSPEC)
            .count()
    }

    /// True when every cell is specified.
    pub fn is_fully_specified(&self) -> bool {
        self.level() == self.d()
    }

    /// Does an object with these labels belong to the subgroup?
    pub fn matches(&self, labels: &Labels) -> bool {
        debug_assert_eq!(labels.len(), self.d(), "label arity mismatch");
        self.cells[..self.d()]
            .iter()
            .zip(labels.as_slice())
            .all(|(c, v)| *c == UNSPEC || c == v)
    }

    /// `self` *generalizes* `other`: every object matching `other` also
    /// matches `self` (cell-wise: `self[i]` is `X` or equals `other[i]`).
    pub fn generalizes(&self, other: &Self) -> bool {
        if self.d() != other.d() {
            return false;
        }
        (0..self.d()).all(|i| match self.get(i) {
            None => true,
            Some(v) => other.get(i) == Some(v),
        })
    }

    /// Is `self` a parent of `other` in the pattern graph (differs on exactly
    /// one attribute, which `self` leaves unspecified)?
    pub fn is_parent_of(&self, other: &Self) -> bool {
        if self.d() != other.d() {
            return false;
        }
        let mut diffs = 0usize;
        for i in 0..self.d() {
            match (self.get(i), other.get(i)) {
                (a, b) if a == b => {}
                (None, Some(_)) => diffs += 1,
                _ => return false,
            }
        }
        diffs == 1
    }

    /// All parents of this pattern (one per specified cell).
    pub fn parents(&self) -> Vec<Pattern> {
        let mut out = Vec::with_capacity(self.level());
        for i in 0..self.d() {
            if self.get(i).is_some() {
                out.push(self.with(i, None));
            }
        }
        out
    }

    /// All children of this pattern under `schema` (one per unspecified cell
    /// × value of that attribute).
    pub fn children(&self, schema: &AttributeSchema) -> Vec<Pattern> {
        assert_eq!(
            schema.d(),
            self.d(),
            "schema arity {} does not match pattern arity {}",
            schema.d(),
            self.d()
        );
        let mut out = Vec::new();
        for i in 0..self.d() {
            if self.get(i).is_none() {
                for v in 0..schema.attr(i).cardinality() {
                    out.push(self.with(i, Some(v as u8)));
                }
            }
        }
        out
    }

    /// Do two fully-specified patterns share a parent? Equivalent to:
    /// they differ on exactly one attribute. Returns that common parent.
    ///
    /// Used by the `multi = true` mode of the aggregation heuristic (§4),
    /// which only merges sibling subgroups.
    pub fn common_parent(&self, other: &Self) -> Option<Pattern> {
        if self.d() != other.d() {
            return None;
        }
        let mut diff = None;
        for i in 0..self.d() {
            if self.get(i) != other.get(i) {
                if diff.is_some() {
                    return None;
                }
                diff = Some(i);
            }
        }
        diff.map(|i| self.with(i, None))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.d() {
            match self.get(i) {
                None => write!(f, "X")?,
                Some(v) if v < 10 => write!(f, "{v}")?,
                Some(v) => write!(f, "<{v}>")?,
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use proptest::prelude::*;

    fn schema_223() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("a", "a0", "a1").unwrap(),
            Attribute::binary("b", "b0", "b1").unwrap(),
            Attribute::new("c", ["c0", "c1", "c2"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["X01", "XXX", "012", "1X0"] {
            assert_eq!(Pattern::parse(s).unwrap().to_string(), s);
        }
        assert!(Pattern::parse("").is_err());
        assert!(Pattern::parse("0a1").is_err());
        assert!(Pattern::parse("012345678").is_err()); // arity 9 > MAX_ATTRS
    }

    #[test]
    fn level_and_full_specification() {
        assert_eq!(Pattern::parse("XXX").unwrap().level(), 0);
        assert_eq!(Pattern::parse("X0X").unwrap().level(), 1);
        assert_eq!(Pattern::parse("101").unwrap().level(), 3);
        assert!(Pattern::parse("101").unwrap().is_fully_specified());
        assert!(!Pattern::parse("10X").unwrap().is_fully_specified());
    }

    #[test]
    fn matches_paper_example() {
        // Paper §2.2: P = X01 specifies all tuples with x2=0 and x3=1.
        let p = Pattern::parse("X01").unwrap();
        assert!(p.matches(&Labels::new(&[0, 0, 1])));
        assert!(p.matches(&Labels::new(&[1, 0, 1])));
        assert!(!p.matches(&Labels::new(&[0, 1, 1])));
        assert!(!p.matches(&Labels::new(&[0, 0, 0])));
    }

    #[test]
    fn parenthood() {
        let child = Pattern::parse("X01").unwrap();
        let p1 = Pattern::parse("XX1").unwrap();
        let p2 = Pattern::parse("X0X").unwrap();
        let not_parent = Pattern::parse("XXX").unwrap(); // grandparent
        assert!(p1.is_parent_of(&child));
        assert!(p2.is_parent_of(&child));
        assert!(!not_parent.is_parent_of(&child));
        assert!(!child.is_parent_of(&p1));
        let parents = child.parents();
        assert_eq!(parents.len(), 2);
        assert!(parents.contains(&p1) && parents.contains(&p2));
        // Root has no parents.
        assert!(Pattern::parse("XXX").unwrap().parents().is_empty());
    }

    #[test]
    fn children_enumeration() {
        let s = schema_223();
        let root = Pattern::all_unspecified(3);
        let kids = root.children(&s);
        // 2 + 2 + 3 children.
        assert_eq!(kids.len(), 7);
        for k in &kids {
            assert_eq!(k.level(), 1);
            assert!(root.is_parent_of(k));
        }
        // Fully-specified patterns have no children.
        assert!(Pattern::parse("012").unwrap().children(&s).is_empty());
    }

    #[test]
    fn generalizes_is_reflexive_and_respects_lattice() {
        let a = Pattern::parse("X0X").unwrap();
        let b = Pattern::parse("100").unwrap();
        assert!(a.generalizes(&a));
        assert!(a.generalizes(&b));
        assert!(!b.generalizes(&a));
        assert!(Pattern::parse("XXX").unwrap().generalizes(&b));
    }

    #[test]
    fn common_parent_of_siblings() {
        let a = Pattern::parse("00").unwrap();
        let b = Pattern::parse("01").unwrap();
        let c = Pattern::parse("11").unwrap();
        assert_eq!(a.common_parent(&b), Some(Pattern::parse("0X").unwrap()));
        assert_eq!(a.common_parent(&c), None); // differ on two attributes
        assert_eq!(a.common_parent(&a), None); // no differing attribute
    }

    #[test]
    fn single_constructor() {
        let p = Pattern::single(3, 1, 2);
        assert_eq!(p.to_string(), "X2X");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn single_out_of_range_panics() {
        Pattern::single(2, 2, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Pattern::parse("X01").unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Pattern = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    proptest! {
        /// Every child generated by `children` is matched-implied by its parent:
        /// objects matching the child match the parent.
        #[test]
        fn prop_children_specialize(vals in proptest::collection::vec(0u8..2, 3)) {
            let s = schema_223();
            let labels = Labels::new(&vals);
            let root = Pattern::all_unspecified(3);
            for child in root.children(&s) {
                if child.matches(&labels) {
                    prop_assert!(root.matches(&labels));
                }
                prop_assert!(root.generalizes(&child));
            }
        }

        /// parents() and is_parent_of agree.
        #[test]
        fn prop_parents_consistent(cells in proptest::collection::vec(proptest::option::of(0u8..3), 1..4)) {
            let p = Pattern::from_cells(&cells);
            for parent in p.parents() {
                prop_assert!(parent.is_parent_of(&p));
                prop_assert!(parent.generalizes(&p));
                prop_assert_eq!(parent.level() + 1, p.level());
            }
        }

        /// A fully-specified pattern matches exactly its own label vector.
        #[test]
        fn prop_fully_specified_matches_self(vals in proptest::collection::vec(0u8..4, 1..5),
                                             other in proptest::collection::vec(0u8..4, 1..5)) {
            let p = Pattern::from_values(&vals);
            prop_assert!(p.matches(&Labels::new(&vals)));
            if other.len() == vals.len() && other != vals {
                prop_assert!(!p.matches(&Labels::new(&other)));
            }
        }
    }
}
