//! **Group-Coverage** — the paper's core divide-and-conquer algorithm
//! (Algorithm 1, §3.1).
//!
//! Given an unlabeled pool and a target group `g`, decide whether the pool
//! contains at least `τ` members of `g`, using *set queries* ("does this set
//! contain at least one member of g?"). The algorithm belongs to the group
//! testing family:
//!
//! * a **no** answer prunes the whole set — for uncovered groups, large
//!   chunks of the dataset disappear after one task;
//! * a **yes** answer forces a split, but because explored sets are
//!   disjoint, the number of *yes* leaves lower-bounds `|g ∩ pool|`; the run
//!   stops as soon as that lower bound reaches `τ`.
//!
//! Cost: `Θ(N/n + τ·log n)` tasks in the worst case, which is only an
//! additive `Θ(τ·log n)` above the trivial `N/n` lower bound (§3.2).

use crate::engine::{AnswerSource, Engine, ObjectId};
use crate::error::{require_positive_n, try_ask, Interrupted};
use crate::target::Target;
use crate::tree::{Arena, Frontier, Node, NO_NODE};
use serde::{Deserialize, Serialize};

/// Frontier discipline for the execution tree.
///
/// The paper processes nodes breadth-first. The depth-first variant is kept
/// for the ablation study (`cvg-bench`): it reaches singletons sooner, which
/// changes *which* witnesses are found first but not correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Traversal {
    /// Breadth-first (the paper's FIFO queue).
    #[default]
    Bfs,
    /// Depth-first (LIFO stack) — ablation only.
    Dfs,
}

/// Tuning knobs for [`group_coverage`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DncConfig {
    /// Frontier discipline; the paper uses BFS.
    pub traversal: Traversal,
    /// When true, record every *yes* singleton in
    /// [`GroupCoverageOutcome::witnesses`]. For a run that ends *uncovered*
    /// the witnesses are exactly the members of `g` in the pool — the
    /// intersectional algorithm uses this to resolve super-group counts.
    pub collect_witnesses: bool,
}

impl DncConfig {
    /// Config that records witnesses.
    pub fn with_witnesses() -> Self {
        Self {
            collect_witnesses: true,
            ..Self::default()
        }
    }
}

/// Result of one [`group_coverage`] run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupCoverageOutcome {
    /// True when the pool contains at least `τ` members of the target.
    pub covered: bool,
    /// The lower bound `cnt` maintained by the algorithm. When
    /// `covered == false` this is the **exact** member count (Lemma 3.1 /
    /// §3.3.2); when covered it equals `τ` (the stop threshold).
    pub count: usize,
    /// Set queries issued by this run.
    pub set_queries: u64,
    /// *Yes* singletons observed (only filled when
    /// [`DncConfig::collect_witnesses`] is set). For uncovered runs these
    /// are all members of the target in the pool.
    pub witnesses: Vec<ObjectId>,
}

/// Runs **Group-Coverage** (Algorithm 1) over `pool` for `target`.
///
/// * `tau` — coverage threshold; `tau == 0` trivially returns covered.
/// * `n` — subset-size upper bound for set queries (the paper's default: 50).
///
/// # Panics
/// Panics when `n == 0`.
///
/// # Errors
/// When the ask path fails mid-run, the [`Interrupted`] error carries the
/// partial outcome: the lower bound `cnt` proven so far, the set queries
/// already spent and the witnesses already isolated.
///
/// # Example
///
/// The paper's running example (Figure 4): sixteen images, five of which are
/// triangles (positions 4, 7, 12, 13, 15), `τ = 3`, a single tree `n = 16`.
/// The algorithm stops after exactly seven queries.
///
/// ```
/// use coverage_core::prelude::*;
///
/// let tri = [4u32, 7, 12, 13, 15];
/// let labels: Vec<Labels> = (0..16)
///     .map(|i| Labels::single(u8::from(tri.contains(&i))))
///     .collect();
/// let truth = VecGroundTruth::new(labels);
/// let mut engine = Engine::new(PerfectSource::new(&truth));
/// let out = group_coverage(
///     &mut engine,
///     &truth.all_ids(),
///     &Target::group(Pattern::parse("1").unwrap()),
///     3,
///     16,
///     &DncConfig::default(),
/// ).unwrap();
/// assert!(out.covered);
/// assert_eq!(out.set_queries, 7);
/// ```
pub fn group_coverage<S: AnswerSource>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    target: &Target,
    tau: usize,
    n: usize,
    config: &DncConfig,
) -> Result<GroupCoverageOutcome, Interrupted<GroupCoverageOutcome>> {
    require_positive_n(n);
    let before = engine.ledger_snapshot();
    let mut witnesses = Vec::new();

    if tau == 0 {
        return Ok(GroupCoverageOutcome {
            covered: true,
            count: 0,
            set_queries: 0,
            witnesses,
        });
    }
    if pool.is_empty() {
        return Ok(GroupCoverageOutcome {
            covered: false,
            count: 0,
            set_queries: 0,
            witnesses,
        });
    }

    let mut arena = Arena::with_capacity(2 * pool.len().div_ceil(n));
    let mut frontier = match config.traversal {
        Traversal::Bfs => Frontier::fifo(),
        Traversal::Dfs => Frontier::lifo(),
    };

    // Line 2-3: partition the pool into ⌈N/n⌉ root sets.
    let mut start = 0usize;
    while start < pool.len() {
        let end = (start + n).min(pool.len());
        let id = arena.push(Node::root(start as u32, end as u32));
        frontier.push(id);
        start = end;
    }

    let mut cnt = 0usize;

    // Line 4: main loop.
    while let Some(first) = frontier.pop(&arena.removed) {
        let mut id = first;
        // `known_yes` models the sibling substitution of line 12: after a
        // *no* at one child, the other child of a *yes* parent must contain
        // a member, so it is processed without issuing a task.
        let mut known_yes = false;
        loop {
            let node = arena.nodes[id as usize];
            let ans = if known_yes {
                true
            } else {
                try_ask!(
                    engine.ask_set(&pool[node.b as usize..node.e as usize], target),
                    GroupCoverageOutcome {
                        covered: false,
                        count: cnt,
                        set_queries: engine.ledger().since(&before).set_queries(),
                        witnesses,
                    }
                )
            };
            arena.nodes[id as usize].done = true;

            if node.is_root() {
                if !ans {
                    break; // line 9: prune the whole root set
                }
                cnt += 1;
            } else if !ans {
                // Lines 11-13.
                let sib = node.sibling;
                debug_assert_ne!(sib, NO_NODE);
                if arena.nodes[sib as usize].done {
                    // The sibling already answered yes earlier; nothing new.
                    break;
                }
                // Substitute the sibling, consuming it from the frontier
                // without issuing a task (its answer is implied).
                arena.removed[sib as usize] = true;
                id = sib;
                known_yes = true;
                continue;
            } else {
                // Lines 14-15: both-children-yes raises the lower bound.
                let parent = node.parent as usize;
                if arena.nodes[parent].checked {
                    cnt += 1;
                } else {
                    arena.nodes[parent].checked = true;
                }
            }

            // Re-read: `node` may be the substituted sibling now.
            let node = arena.nodes[id as usize];
            if config.collect_witnesses && node.len() == 1 {
                witnesses.push(pool[node.b as usize]);
            }

            // Line 16: stop as soon as the lower bound proves coverage.
            if cnt >= tau {
                let used = engine.ledger().since(&before).set_queries();
                return Ok(GroupCoverageOutcome {
                    covered: true,
                    count: cnt,
                    set_queries: used,
                    witnesses,
                });
            }

            // Lines 17-20: split yes-sets larger than one.
            if node.len() > 1 {
                let (left, right) = arena.split(id);
                frontier.push(left);
                frontier.push(right);
            }
            break;
        }
    }

    // Line 21: frontier exhausted below threshold — uncovered, `cnt` exact.
    let used = engine.ledger().since(&before).set_queries();
    Ok(GroupCoverageOutcome {
        covered: false,
        count: cnt,
        set_queries: used,
        witnesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GroundTruth;
    use crate::engine::{PerfectSource, VecGroundTruth};
    use crate::pattern::Pattern;
    use crate::schema::Labels;
    use proptest::prelude::*;

    fn truth_from_positions(n: usize, positives: &[usize]) -> VecGroundTruth {
        let labels = (0..n)
            .map(|i| Labels::single(u8::from(positives.contains(&i))))
            .collect();
        VecGroundTruth::new(labels)
    }

    fn minority() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    fn run(
        truth: &VecGroundTruth,
        tau: usize,
        n: usize,
        config: &DncConfig,
    ) -> GroupCoverageOutcome {
        let mut engine = Engine::new(PerfectSource::new(truth));
        group_coverage(&mut engine, &truth.all_ids(), &minority(), tau, n, config).unwrap()
    }

    /// The paper's running example, Figure 4: 7 queries, covered at τ = 3.
    #[test]
    fn paper_running_example() {
        let truth = truth_from_positions(16, &[4, 7, 12, 13, 15]);
        let out = run(&truth, 3, 16, &DncConfig::default());
        assert!(out.covered);
        assert_eq!(out.count, 3);
        assert_eq!(out.set_queries, 7);
    }

    /// §3.2 Case I: every set query answers yes ⇒ exactly 2τ − 1 tasks.
    #[test]
    fn case_one_all_yes_costs_two_tau_minus_one() {
        for tau in [1usize, 2, 3, 5, 8] {
            let truth = truth_from_positions(64, &(0..64).collect::<Vec<_>>());
            let out = run(&truth, tau, 64, &DncConfig::default());
            assert!(out.covered);
            assert_eq!(
                out.set_queries,
                (2 * tau - 1) as u64,
                "tau={tau}: dense positives should cost 2τ−1 tasks"
            );
        }
    }

    /// §3.2 Case II: exactly one member ⇒ Θ(log n) tasks
    /// (2·log2(n) + 1 with the sibling substitution saving none on this
    /// adversarial placement at index 0).
    #[test]
    fn case_two_single_member_costs_logarithmic() {
        let n = 1024usize;
        let truth = truth_from_positions(n, &[0]);
        let out = run(&truth, 2, n, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.count, 1);
        let log = (n as f64).log2();
        assert!(
            (out.set_queries as f64) <= 2.0 * log + 1.0,
            "{} tasks exceeds 2·log2({n})+1",
            out.set_queries
        );
        assert!((out.set_queries as f64) >= log);
    }

    #[test]
    fn covered_stops_early() {
        // 500 positives at the front; τ = 5 must not scan the whole pool.
        let truth = truth_from_positions(10_000, &(0..500).collect::<Vec<_>>());
        let out = run(&truth, 5, 50, &DncConfig::default());
        assert!(out.covered);
        assert_eq!(out.count, 5);
        assert!(out.set_queries < 50);
    }

    #[test]
    fn uncovered_returns_exact_count() {
        let positives = [3usize, 77, 131, 255, 256, 400, 999];
        let truth = truth_from_positions(1000, &positives);
        let out = run(&truth, 50, 50, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.count, positives.len());
    }

    #[test]
    fn exact_threshold_boundary() {
        // Exactly τ members ⇒ covered; τ−1 members ⇒ uncovered.
        let positives: Vec<usize> = (0..50).map(|i| i * 17).collect();
        let truth = truth_from_positions(1000, &positives);
        let covered = run(&truth, 50, 50, &DncConfig::default());
        assert!(covered.covered);
        let uncovered = run(&truth, 51, 50, &DncConfig::default());
        assert!(!uncovered.covered);
        assert_eq!(uncovered.count, 50);
    }

    #[test]
    fn empty_pool_uncovered_unless_tau_zero() {
        let truth = truth_from_positions(0, &[]);
        let out = run(&truth, 1, 50, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.set_queries, 0);
        let out = run(&truth, 0, 50, &DncConfig::default());
        assert!(out.covered);
    }

    #[test]
    fn tau_zero_is_free() {
        let truth = truth_from_positions(100, &[1]);
        let out = run(&truth, 0, 50, &DncConfig::default());
        assert!(out.covered);
        assert_eq!(out.set_queries, 0);
    }

    #[test]
    fn n_one_degenerates_to_point_scan() {
        let truth = truth_from_positions(20, &[4, 9]);
        let out = run(&truth, 5, 1, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.count, 2);
        assert_eq!(out.set_queries, 20); // every root is a singleton
    }

    #[test]
    fn n_larger_than_pool_is_one_tree() {
        let truth = truth_from_positions(10, &[0, 5]);
        let out = run(&truth, 3, 1_000, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.count, 2);
    }

    #[test]
    fn no_members_costs_only_roots() {
        let truth = truth_from_positions(500, &[]);
        let out = run(&truth, 50, 50, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.count, 0);
        assert_eq!(out.set_queries, 10); // 500/50 root queries, all pruned
    }

    #[test]
    fn witnesses_are_exact_members_when_uncovered() {
        let positives = [3usize, 77, 131, 255];
        let truth = truth_from_positions(400, &positives);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let out = group_coverage(
            &mut engine,
            &truth.all_ids(),
            &minority(),
            50,
            50,
            &DncConfig::with_witnesses(),
        )
        .unwrap();
        assert!(!out.covered);
        let mut got: Vec<usize> = out.witnesses.iter().map(|o| o.index()).collect();
        got.sort_unstable();
        assert_eq!(got, positives);
    }

    #[test]
    fn dfs_traversal_is_correct_too() {
        let positives: Vec<usize> = (0..30).map(|i| i * 31).collect();
        let truth = truth_from_positions(1000, &positives);
        let cfg = DncConfig {
            traversal: Traversal::Dfs,
            collect_witnesses: false,
        };
        let covered = run(&truth, 30, 50, &cfg);
        assert!(covered.covered);
        let uncovered = run(&truth, 31, 50, &cfg);
        assert!(!uncovered.covered);
        assert_eq!(uncovered.count, 30);
    }

    #[test]
    fn works_on_sub_pool() {
        // The algorithm must respect an arbitrary pool, not the whole truth.
        let truth = truth_from_positions(100, &(0..50).collect::<Vec<_>>());
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let pool: Vec<_> = (50u32..100).map(crate::engine::ObjectId).collect();
        let out = group_coverage(
            &mut engine,
            &pool,
            &minority(),
            1,
            10,
            &DncConfig::default(),
        )
        .unwrap();
        assert!(!out.covered); // no positives in the second half
        assert_eq!(out.count, 0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_n_panics() {
        let truth = truth_from_positions(4, &[]);
        run(&truth, 1, 0, &DncConfig::default());
    }

    /// The paper's tightness argument (§3.2): with τ−1 members uniformly
    /// spread, cost approaches the Θ(τ·log(n/τ)) adversarial bound but
    /// never exceeds the N/n + 2·τ·log2(n) envelope.
    #[test]
    fn adversarial_spread_stays_within_bound() {
        let n_total = 4096usize;
        let tau = 32usize;
        let positives: Vec<usize> = (0..tau - 1).map(|i| i * (n_total / tau)).collect();
        let truth = truth_from_positions(n_total, &positives);
        let out = run(&truth, tau, n_total, &DncConfig::default());
        assert!(!out.covered);
        assert_eq!(out.count, tau - 1);
        let bound = 1.0 + 2.0 * (tau as f64) * (n_total as f64).log2();
        assert!(
            (out.set_queries as f64) <= bound,
            "{} > {bound}",
            out.set_queries
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Correctness (Lemma 3.1) on arbitrary compositions, both orders.
        #[test]
        fn prop_correct_decision(
            n_total in 1usize..600,
            density in 0.0f64..0.3,
            tau in 1usize..60,
            n in 1usize..100,
            seed in 0u64..1000,
            dfs in proptest::bool::ANY,
        ) {
            // Deterministic pseudo-random positive placement.
            let mut positives = Vec::new();
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
            for i in 0..n_total {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if ((state >> 33) as f64 / (1u64 << 31) as f64) < density {
                    positives.push(i);
                }
            }
            let truth = truth_from_positions(n_total, &positives);
            let cfg = DncConfig {
                traversal: if dfs { Traversal::Dfs } else { Traversal::Bfs },
                collect_witnesses: true,
            };
            let out = run(&truth, tau, n, &cfg);
            prop_assert_eq!(out.covered, positives.len() >= tau);
            if !out.covered {
                prop_assert_eq!(out.count, positives.len());
                let mut got: Vec<usize> = out.witnesses.iter().map(|o| o.index()).collect();
                got.sort_unstable();
                prop_assert_eq!(got, positives);
            } else {
                prop_assert!(out.count >= tau);
            }
        }

        /// Task count never exceeds the explicit worst-case envelope
        /// ⌈N/n⌉ + 2·τ·(log2(n)+1).
        #[test]
        fn prop_cost_within_envelope(
            n_total in 1usize..2000,
            positives_every in 1usize..50,
            tau in 1usize..40,
            n in 2usize..128,
        ) {
            let positives: Vec<usize> = (0..n_total).step_by(positives_every).collect();
            let truth = truth_from_positions(n_total, &positives);
            let out = run(&truth, tau, n, &DncConfig::default());
            let roots = n_total.div_ceil(n) as f64;
            let yes_leaves = (positives.len().min(tau)) as f64;
            let envelope = roots + 2.0 * yes_leaves * ((n as f64).log2() + 1.0);
            prop_assert!(
                (out.set_queries as f64) <= envelope,
                "tasks {} exceed envelope {envelope} (N={n_total}, n={n}, tau={tau})",
                out.set_queries
            );
        }
    }
}
