//! Coverage *resolution*: turning an audit into an acquisition plan.
//!
//! Detecting MUPs says where the dataset is thin; the companion problem
//! (studied for tabular data in the paper's reference \[4\]) is deciding
//! **what to acquire** so the uncovered patterns become covered. Because a
//! dataset can only contain fully-specified objects, a plan assigns
//! additional object counts to fully-specified subgroups; an object
//! acquired for cell `c` counts toward *every* pattern that generalizes
//! `c`, so a well-placed cell can repair several MUPs at once.
//!
//! [`acquisition_plan`] runs a greedy set-cover-flavoured heuristic: while
//! any target pattern is still short, add the needed objects to the
//! *thinnest* descendant cell of the pattern with the largest deficit,
//! preferring cells that appear under many deficient targets. Greedy is
//! not optimal in general (min-cost resolution is NP-hard for arbitrary
//! targets, per \[4\]), but it is exact for a single target and sound for
//! all: the returned plan always repairs every target.

use crate::mup::{pattern_count, FullGroupCounts};
use crate::pattern::Pattern;
use crate::pattern_graph::PatternGraph;
use crate::schema::AttributeSchema;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How many objects of each fully-specified subgroup to acquire.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcquisitionPlan {
    /// Additional objects per fully-specified subgroup.
    pub additions: HashMap<Pattern, usize>,
}

impl AcquisitionPlan {
    /// Total objects to acquire.
    pub fn total(&self) -> usize {
        self.additions.values().sum()
    }

    /// Post-acquisition count of an arbitrary pattern (one pass over the
    /// graph's precomputed descendant slice).
    pub fn resolved_count(
        &self,
        graph: &PatternGraph,
        counts: &FullGroupCounts,
        p: &Pattern,
    ) -> usize {
        let base = pattern_count(graph, counts, p);
        let added: usize = graph
            .full_descendants(p)
            .iter()
            .map(|fg| self.additions.get(fg).copied().unwrap_or(0))
            .sum();
        base + added
    }

    /// Renders the plan with value names, largest additions first.
    pub fn describe(&self, schema: &AttributeSchema) -> String {
        let mut rows: Vec<(String, usize)> = self
            .additions
            .iter()
            .filter(|(_, k)| **k > 0)
            .map(|(p, k)| (schema.pattern_display(p), *k))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.iter()
            .map(|(name, k)| format!("+{k} {name}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Computes an acquisition plan that covers every pattern in `targets`
/// at threshold `tau`, given current fully-specified counts.
///
/// Typical usage: pass the MUPs from an
/// [`IntersectionalReport`](crate::intersectional::IntersectionalReport) —
/// covering each MUP also covers all of its (less deficient) ancestors.
///
/// # Panics
/// Panics when a target's arity does not match the schema.
///
/// # Example
///
/// ```
/// use coverage_core::prelude::*;
/// use coverage_core::mup::FullGroupCounts;
///
/// let schema = AttributeSchema::new(vec![
///     Attribute::binary("gender", "male", "female").unwrap(),
///     Attribute::binary("skin", "light", "dark").unwrap(),
/// ]).unwrap();
/// let mut counts = FullGroupCounts::new();
/// counts.insert(Pattern::parse("00").unwrap(), 500); // male-light
/// counts.insert(Pattern::parse("10").unwrap(), 400); // female-light
/// counts.insert(Pattern::parse("01").unwrap(), 30);  // male-dark
/// counts.insert(Pattern::parse("11").unwrap(), 12);  // female-dark
///
/// // X-dark has 42 members; 8 more make it covered at τ = 50.
/// let x_dark = schema.pattern(&[("skin", "dark")]).unwrap();
/// let plan = acquisition_plan(&schema, &counts, 50, &[x_dark]);
/// assert_eq!(plan.total(), 8);
/// ```
pub fn acquisition_plan(
    schema: &AttributeSchema,
    counts: &FullGroupCounts,
    tau: usize,
    targets: &[Pattern],
) -> AcquisitionPlan {
    for t in targets {
        assert_eq!(t.d(), schema.d(), "target arity must match the schema");
    }
    let graph = PatternGraph::new(schema);
    // Dense working state: everything below is keyed by the graph's leaf
    // index (position in `full_groups()`) — no pattern is hashed inside
    // the greedy loop.
    let base = graph.dense_leaf_counts(counts);
    let mut added = vec![0usize; base.len()];
    let target_ids: Vec<u32> = targets
        .iter()
        .map(|t| {
            graph
                .pattern_id(t)
                .expect("every pattern has at least one full descendant")
        })
        .collect();
    let resolved = |added: &[usize], id: u32| -> usize {
        graph
            .full_descendant_leaves(id)
            .iter()
            .map(|l| base[*l as usize] + added[*l as usize])
            .sum()
    };

    loop {
        // Deficits under the current plan.
        let mut deficits: Vec<(Pattern, u32, usize)> = targets
            .iter()
            .zip(&target_ids)
            .filter_map(|(t, id)| {
                let have = resolved(&added, *id);
                (have < tau).then(|| (*t, *id, tau - have))
            })
            .collect();
        if deficits.is_empty() {
            let additions = graph
                .full_groups()
                .iter()
                .zip(&added)
                .filter(|(_, k)| **k > 0)
                .map(|(p, k)| (*p, *k))
                .collect();
            return AcquisitionPlan { additions };
        }
        // Repair the largest deficit first.
        deficits.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.to_string().cmp(&b.0.to_string())));
        let (_, target_id, deficit) = deficits[0];

        // Pick the descendant cell that appears under the most deficient
        // targets (ties: thinnest cell, then lexicographic for
        // determinism).
        let deficient: Vec<Pattern> = deficits.iter().map(|(p, _, _)| *p).collect();
        let full_groups = graph.full_groups();
        let cell_leaf = graph
            .full_descendant_leaves(target_id)
            .iter()
            .copied()
            .max_by(|a, b| {
                let synergy = |l: u32| {
                    let c = &full_groups[l as usize];
                    deficient.iter().filter(|t| t.generalizes(c)).count()
                };
                let thin = |l: u32| std::cmp::Reverse(base[l as usize] + added[l as usize]);
                synergy(*a)
                    .cmp(&synergy(*b))
                    .then(thin(*a).cmp(&thin(*b)))
                    .then(
                        full_groups[*b as usize]
                            .to_string()
                            .cmp(&full_groups[*a as usize].to_string()),
                    )
            })
            .expect("every pattern has at least one full descendant");
        added[cell_leaf as usize] += deficit;
    }
}

/// Computes a plan after which **no pattern at all** is uncovered — i.e.
/// re-deriving MUPs on the repaired counts returns nothing.
///
/// Repairing only the MUPs is not enough for that: once a MUP is covered,
/// its previously-shadowed uncovered children surface as new MUPs. This
/// helper simply targets every uncovered pattern in the lattice, bottom
/// level included, so the greedy routing can still share acquisitions
/// between a parent and its children.
pub fn full_repair_plan(
    schema: &AttributeSchema,
    counts: &FullGroupCounts,
    tau: usize,
) -> AcquisitionPlan {
    let graph = PatternGraph::new(schema);
    // One bottom-up pass prices every pattern at once (O(edges)).
    let pattern_counts = graph.pattern_counts(counts);
    let uncovered: Vec<Pattern> = graph
        .iter()
        .zip(&pattern_counts)
        .filter(|(_, count)| **count < tau)
        .map(|(p, _)| *p)
        .collect();
    acquisition_plan(schema, counts, tau, &uncovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mup::{count_full_groups, mups_from_counts};
    use crate::schema::{Attribute, Labels};

    fn schema_2x2() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::binary("skin", "light", "dark").unwrap(),
        ])
        .unwrap()
    }

    fn counts_from(cells: &[([u8; 2], usize)]) -> FullGroupCounts {
        let mut labels = Vec::new();
        for (vals, k) in cells {
            labels.extend(std::iter::repeat_n(Labels::new(vals), *k));
        }
        count_full_groups(&labels, &schema_2x2())
    }

    #[test]
    fn single_uncovered_cell_gets_exact_deficit() {
        let schema = schema_2x2();
        let counts = counts_from(&[([0, 0], 100), ([0, 1], 100), ([1, 0], 100), ([1, 1], 12)]);
        let target = Pattern::parse("11").unwrap();
        let plan = acquisition_plan(&schema, &counts, 50, &[target]);
        assert_eq!(plan.total(), 38);
        assert_eq!(plan.additions[&target], 38);
    }

    #[test]
    fn plan_repairs_every_mup() {
        let schema = schema_2x2();
        let counts = counts_from(&[([0, 0], 500), ([1, 0], 400), ([0, 1], 20), ([1, 1], 5)]);
        let tau = 50;
        let mups = mups_from_counts(&schema, &counts, tau);
        assert!(!mups.is_empty());
        let plan = acquisition_plan(&schema, &counts, tau, &mups);
        let graph = PatternGraph::new(&schema);
        for m in &mups {
            assert!(
                plan.resolved_count(&graph, &counts, m) >= tau,
                "{m} still uncovered after plan {plan:?}"
            );
        }
        // After applying the plan, re-deriving MUPs finds nothing new under
        // the old uncovered region.
        let mut resolved = counts.clone();
        for (cell, k) in &plan.additions {
            *resolved.entry(*cell).or_insert(0) += k;
        }
        let still = mups_from_counts(&schema, &resolved, tau);
        for m in &mups {
            assert!(!still.contains(m), "{m} still a MUP");
        }
    }

    #[test]
    fn shared_cell_repairs_two_parents_at_once() {
        // X-dark and female-X both uncovered; female-dark lies under both,
        // so greedy should route additions through it rather than paying
        // twice.
        let schema = schema_2x2();
        let counts = counts_from(&[([0, 0], 500), ([1, 0], 30), ([0, 1], 30), ([1, 1], 0)]);
        let tau = 50;
        let x_dark = Pattern::parse("X1").unwrap(); // count 30
        let female_x = Pattern::parse("1X").unwrap(); // count 30
        let plan = acquisition_plan(&schema, &counts, tau, &[x_dark, female_x]);
        // 20 female-dark objects repair both; disjoint repairs would cost 40.
        assert_eq!(plan.total(), 20, "plan: {}", plan.describe(&schema));
        assert_eq!(plan.additions[&Pattern::parse("11").unwrap()], 20);
    }

    #[test]
    fn already_covered_targets_cost_nothing() {
        let schema = schema_2x2();
        let counts = counts_from(&[([0, 0], 100), ([1, 1], 100)]);
        let plan = acquisition_plan(&schema, &counts, 50, &[Pattern::parse("XX").unwrap()]);
        assert_eq!(plan.total(), 0);
        assert!(plan.describe(&schema).is_empty());
    }

    #[test]
    fn empty_dataset_root_target() {
        let schema = schema_2x2();
        let counts = FullGroupCounts::new();
        let plan = acquisition_plan(&schema, &counts, 10, &[Pattern::parse("XX").unwrap()]);
        assert_eq!(plan.total(), 10);
    }

    #[test]
    fn describe_sorts_by_size() {
        let schema = schema_2x2();
        let mut plan = AcquisitionPlan::default();
        plan.additions.insert(Pattern::parse("11").unwrap(), 3);
        plan.additions.insert(Pattern::parse("01").unwrap(), 9);
        let s = plan.describe(&schema);
        assert_eq!(s, "+9 male-dark, +3 female-dark");
    }

    #[test]
    fn full_repair_leaves_no_mups() {
        let schema = schema_2x2();
        let counts = counts_from(&[([0, 0], 500), ([1, 0], 400), ([0, 1], 30), ([1, 1], 18)]);
        let tau = 50;
        let plan = full_repair_plan(&schema, &counts, tau);
        let mut resolved = counts.clone();
        for (cell, k) in &plan.additions {
            *resolved.entry(*cell).or_insert(0) += k;
        }
        assert!(
            mups_from_counts(&schema, &resolved, tau).is_empty(),
            "plan {plan:?} leaves MUPs"
        );
        // Every cell is brought to exactly τ, no more: 20 + 32 here.
        assert_eq!(plan.total(), 52);
    }

    #[test]
    fn mup_only_repair_exposes_children() {
        // The documented contrast: covering just the MUP X-dark surfaces
        // its uncovered children as new MUPs.
        let schema = schema_2x2();
        let counts = counts_from(&[([0, 0], 500), ([1, 0], 400), ([0, 1], 30), ([1, 1], 18)]);
        let tau = 50;
        let mups = mups_from_counts(&schema, &counts, tau);
        assert_eq!(mups, vec![Pattern::parse("X1").unwrap()]);
        let plan = acquisition_plan(&schema, &counts, tau, &mups);
        let mut resolved = counts.clone();
        for (cell, k) in &plan.additions {
            *resolved.entry(*cell).or_insert(0) += k;
        }
        let exposed = mups_from_counts(&schema, &resolved, tau);
        assert!(!exposed.is_empty(), "children should surface as MUPs");
        assert!(exposed.iter().all(|m| m.is_fully_specified()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_target_panics() {
        let schema = schema_2x2();
        acquisition_plan(
            &schema,
            &FullGroupCounts::new(),
            5,
            &[Pattern::parse("1").unwrap()],
        );
    }
}
