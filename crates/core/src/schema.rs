//! Attributes of interest and per-object label vectors.
//!
//! The paper's data model (§2.1): a dataset is a collection of `N` objects
//! (images) with **no explicit attribute values**. Objects are associated
//! with `d` latent categorical *attributes of interest* `x = {x1..xd}` such
//! as `gender` or `race`; each value of an attribute identifies a
//! non-overlapping demographic group.

use crate::error::CoverageError;
use crate::pattern::Pattern;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of attributes of interest supported by the inline
/// [`Labels`] / [`crate::pattern::Pattern`] representations.
///
/// Sensitive attributes are few (the paper uses at most three), so a small
/// fixed capacity lets labels be `Copy` and allocation-free.
pub const MAX_ATTRS: usize = 8;

/// A single categorical attribute of interest (e.g. `gender`) together with
/// its named values (e.g. `male`, `female`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    values: Vec<String>,
}

impl Attribute {
    /// Creates an attribute from a name and at least two distinct values.
    pub fn new<S, I, V>(name: S, values: I) -> Result<Self, CoverageError>
    where
        S: Into<String>,
        I: IntoIterator<Item = V>,
        V: Into<String>,
    {
        let name = name.into();
        let values: Vec<String> = values.into_iter().map(Into::into).collect();
        if values.len() < 2 {
            return Err(CoverageError::AttributeTooNarrow { name });
        }
        // The pattern representation reserves u8::MAX for "unspecified".
        if values.len() > 254 {
            return Err(CoverageError::AttributeTooWide {
                cardinality: values.len(),
                name,
            });
        }
        for (i, v) in values.iter().enumerate() {
            if values[..i].contains(v) {
                return Err(CoverageError::DuplicateValue {
                    attribute: name,
                    value: v.clone(),
                });
            }
        }
        Ok(Self { name, values })
    }

    /// Convenience constructor for a binary attribute.
    pub fn binary<S: Into<String>>(
        name: S,
        first: &str,
        second: &str,
    ) -> Result<Self, CoverageError> {
        Self::new(name, [first, second])
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values (demographic groups) of this attribute.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// The named values, in index order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Name of the value with index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn value_name(&self, i: u8) -> &str {
        &self.values[usize::from(i)]
    }

    /// Index of the value named `value`, if any.
    pub fn value_index(&self, value: &str) -> Option<u8> {
        self.values.iter().position(|v| v == value).map(|i| i as u8)
    }
}

/// A per-object vector of attribute-value indices — the latent ground truth
/// (or a crowd-provided estimate) for one object.
///
/// `Labels` is `Copy` and stores its values inline (at most [`MAX_ATTRS`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Labels {
    len: u8,
    vals: [u8; MAX_ATTRS],
}

impl Labels {
    /// Creates a label vector from value indices, one per attribute.
    ///
    /// # Panics
    /// Panics if more than [`MAX_ATTRS`] values are supplied.
    pub fn new(values: &[u8]) -> Self {
        assert!(
            values.len() <= MAX_ATTRS,
            "at most {MAX_ATTRS} attributes supported, got {}",
            values.len()
        );
        let mut vals = [0u8; MAX_ATTRS];
        vals[..values.len()].copy_from_slice(values);
        Self {
            len: values.len() as u8,
            vals,
        }
    }

    /// A single-attribute label.
    pub fn single(value: u8) -> Self {
        Self::new(&[value])
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when the label vector has no attributes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value index of attribute `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> u8 {
        assert!(i < self.len(), "attribute index {i} out of range");
        self.vals[i]
    }

    /// The values as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.vals[..self.len()]
    }
}

impl fmt::Debug for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Labels{:?}", self.as_slice())
    }
}

impl fmt::Display for Labels {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in self.as_slice() {
            if *v < 10 {
                write!(f, "{v}")?;
            } else {
                write!(f, "<{v}>")?;
            }
        }
        Ok(())
    }
}

/// The full set of attributes of interest for a study.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeSchema {
    attrs: Vec<Attribute>,
}

impl AttributeSchema {
    /// Creates a schema from a non-empty list of attributes with distinct names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self, CoverageError> {
        if attrs.is_empty() {
            return Err(CoverageError::EmptySchema);
        }
        if attrs.len() > MAX_ATTRS {
            return Err(CoverageError::TooManyAttributes {
                requested: attrs.len(),
            });
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name() == a.name()) {
                return Err(CoverageError::DuplicateAttribute {
                    name: a.name().to_owned(),
                });
            }
        }
        Ok(Self { attrs })
    }

    /// Shorthand for the common one-binary-attribute case.
    pub fn single_binary(name: &str, first: &str, second: &str) -> Self {
        Self::new(vec![Attribute::binary(name, first, second).expect("binary")])
            .expect("single attribute")
    }

    /// Number of attributes `d`.
    pub fn d(&self) -> usize {
        self.attrs.len()
    }

    /// The attribute at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn attr(&self, i: usize) -> &Attribute {
        &self.attrs[i]
    }

    /// All attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Cardinality of each attribute, in order.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.attrs.iter().map(Attribute::cardinality).collect()
    }

    /// Position of the attribute named `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name() == name)
    }

    /// The number of fully-specified subgroups `m = c1 × … × cd`.
    pub fn num_full_groups(&self) -> usize {
        self.attrs.iter().map(Attribute::cardinality).product()
    }

    /// All fully-specified subgroups (level-`d` patterns), in lexicographic
    /// order of value indices. These are the leaves of the pattern graph
    /// (e.g. `female-asian` in the paper's Figure 5).
    pub fn full_groups(&self) -> Vec<Pattern> {
        let d = self.d();
        let cards = self.cardinalities();
        let mut out = Vec::with_capacity(self.num_full_groups());
        let mut current = vec![0u8; d];
        loop {
            out.push(Pattern::from_values(&current));
            // Odometer increment.
            let mut i = d;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                current[i] += 1;
                if usize::from(current[i]) < cards[i] {
                    break;
                }
                current[i] = 0;
            }
        }
    }

    /// Validates a label vector against the schema.
    pub fn validate_labels(&self, labels: &Labels) -> Result<(), CoverageError> {
        if labels.len() != self.d() {
            return Err(CoverageError::ArityMismatch {
                expected: self.d(),
                got: labels.len(),
            });
        }
        for (i, v) in labels.as_slice().iter().enumerate() {
            if usize::from(*v) >= self.attrs[i].cardinality() {
                return Err(CoverageError::ValueOutOfRange {
                    attribute: i,
                    value: *v,
                    cardinality: self.attrs[i].cardinality(),
                });
            }
        }
        Ok(())
    }

    /// Builds a label vector from `(attribute, value)` name pairs.
    /// Every attribute of the schema must appear exactly once.
    pub fn labels(&self, pairs: &[(&str, &str)]) -> Result<Labels, CoverageError> {
        if pairs.len() != self.d() {
            return Err(CoverageError::ArityMismatch {
                expected: self.d(),
                got: pairs.len(),
            });
        }
        let mut vals = vec![u8::MAX; self.d()];
        for (attr, value) in pairs {
            let i = self
                .attr_index(attr)
                .ok_or_else(|| CoverageError::UnknownAttribute {
                    name: (*attr).to_owned(),
                })?;
            let v =
                self.attrs[i]
                    .value_index(value)
                    .ok_or_else(|| CoverageError::UnknownValue {
                        attribute: (*attr).to_owned(),
                        value: (*value).to_owned(),
                    })?;
            vals[i] = v;
        }
        if vals.contains(&u8::MAX) {
            return Err(CoverageError::ArityMismatch {
                expected: self.d(),
                got: pairs.len(),
            });
        }
        Ok(Labels::new(&vals))
    }

    /// Builds a [`Pattern`] from `(attribute, value)` name pairs; attributes
    /// not mentioned stay *unspecified* (`X`).
    pub fn pattern(&self, pairs: &[(&str, &str)]) -> Result<Pattern, CoverageError> {
        let mut p = Pattern::all_unspecified(self.d());
        for (attr, value) in pairs {
            let i = self
                .attr_index(attr)
                .ok_or_else(|| CoverageError::UnknownAttribute {
                    name: (*attr).to_owned(),
                })?;
            let v =
                self.attrs[i]
                    .value_index(value)
                    .ok_or_else(|| CoverageError::UnknownValue {
                        attribute: (*attr).to_owned(),
                        value: (*value).to_owned(),
                    })?;
            p = p.with(i, Some(v));
        }
        Ok(p)
    }

    /// Renders a pattern using the schema's value names, e.g. `female-X`
    /// (the notation of the paper's Figure 5).
    pub fn pattern_display(&self, p: &Pattern) -> String {
        let mut parts = Vec::with_capacity(self.d());
        for i in 0..p.d() {
            match p.get(i) {
                None => parts.push("X".to_owned()),
                Some(v) => parts.push(self.attrs[i].value_name(v).to_owned()),
            }
        }
        parts.join("-")
    }

    /// Renders a label vector using the schema's value names.
    pub fn labels_display(&self, l: &Labels) -> String {
        let mut parts = Vec::with_capacity(self.d());
        for (i, v) in l.as_slice().iter().enumerate() {
            parts.push(self.attrs[i].value_name(*v).to_owned());
        }
        parts.join("-")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gender_race() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::new("race", ["white", "black", "hispanic", "asian"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn attribute_rejects_single_value() {
        assert!(matches!(
            Attribute::new("g", ["only"]),
            Err(CoverageError::AttributeTooNarrow { .. })
        ));
    }

    #[test]
    fn attribute_rejects_duplicates() {
        assert!(matches!(
            Attribute::new("g", ["a", "b", "a"]),
            Err(CoverageError::DuplicateValue { .. })
        ));
    }

    #[test]
    fn attribute_rejects_oversized_domain() {
        let values: Vec<String> = (0..300).map(|i| format!("v{i}")).collect();
        assert!(matches!(
            Attribute::new("g", values),
            Err(CoverageError::AttributeTooWide { .. })
        ));
    }

    #[test]
    fn attribute_value_lookup() {
        let a = Attribute::new("race", ["white", "black"]).unwrap();
        assert_eq!(a.value_index("black"), Some(1));
        assert_eq!(a.value_index("martian"), None);
        assert_eq!(a.value_name(0), "white");
        assert_eq!(a.cardinality(), 2);
    }

    #[test]
    fn schema_rejects_empty_and_duplicate() {
        assert!(matches!(
            AttributeSchema::new(vec![]),
            Err(CoverageError::EmptySchema)
        ));
        let a = Attribute::binary("g", "a", "b").unwrap();
        assert!(matches!(
            AttributeSchema::new(vec![a.clone(), a]),
            Err(CoverageError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn schema_rejects_too_many_attributes() {
        let attrs: Vec<Attribute> = (0..MAX_ATTRS + 1)
            .map(|i| Attribute::binary(format!("a{i}"), "x", "y").unwrap())
            .collect();
        assert!(matches!(
            AttributeSchema::new(attrs),
            Err(CoverageError::TooManyAttributes { .. })
        ));
    }

    #[test]
    fn full_groups_enumerates_cartesian_product() {
        let s = gender_race();
        let groups = s.full_groups();
        assert_eq!(groups.len(), 8);
        assert_eq!(s.num_full_groups(), 8);
        // First and last in lexicographic order.
        assert_eq!(s.pattern_display(&groups[0]), "male-white");
        assert_eq!(s.pattern_display(&groups[7]), "female-asian");
        // All distinct and fully specified.
        for g in &groups {
            assert!(g.is_fully_specified());
        }
        let mut uniq = groups.clone();
        uniq.sort_by_key(|p| format!("{p}"));
        uniq.dedup();
        assert_eq!(uniq.len(), 8);
    }

    #[test]
    fn labels_roundtrip_and_validation() {
        let s = gender_race();
        let l = s
            .labels(&[("race", "asian"), ("gender", "female")])
            .unwrap();
        assert_eq!(l.as_slice(), &[1, 3]);
        assert_eq!(s.labels_display(&l), "female-asian");
        s.validate_labels(&l).unwrap();
        assert!(matches!(
            s.validate_labels(&Labels::new(&[1])),
            Err(CoverageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate_labels(&Labels::new(&[1, 9])),
            Err(CoverageError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn labels_errors_on_unknown_names() {
        let s = gender_race();
        assert!(matches!(
            s.labels(&[("sex", "female"), ("race", "asian")]),
            Err(CoverageError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.labels(&[("gender", "nope"), ("race", "asian")]),
            Err(CoverageError::UnknownValue { .. })
        ));
        // Repeated attribute leaves another unset.
        assert!(s
            .labels(&[("gender", "male"), ("gender", "female")])
            .is_err());
    }

    #[test]
    fn pattern_builder_leaves_unspecified() {
        let s = gender_race();
        let p = s.pattern(&[("race", "black")]).unwrap();
        assert_eq!(s.pattern_display(&p), "X-black");
        assert_eq!(p.level(), 1);
    }

    #[test]
    fn labels_inline_storage() {
        let l = Labels::new(&[1, 2, 3]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.get(2), 3);
        assert_eq!(format!("{l}"), "123");
        assert_eq!(format!("{l:?}"), "Labels[1, 2, 3]");
        let wide = Labels::new(&[12]);
        assert_eq!(format!("{wide}"), "<12>");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn labels_get_out_of_range_panics() {
        Labels::new(&[0]).get(1);
    }

    #[test]
    fn serde_roundtrip() {
        let s = gender_race();
        let json = serde_json::to_string(&s).unwrap();
        let back: AttributeSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let l = Labels::new(&[1, 3]);
        let json = serde_json::to_string(&l).unwrap();
        let back: Labels = serde_json::from_str(&json).unwrap();
        assert_eq!(l, back);
    }
}
