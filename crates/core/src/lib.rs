//! # coverage-core
//!
//! Crowdsourced **data-coverage identification** for datasets without explicit
//! attribute values — a reproduction of *"Data Coverage for Detecting
//! Representation Bias in Image Datasets: A Crowdsourcing Approach"*
//! (EDBT 2024).
//!
//! A dataset *covers* a demographic group `g` if it contains at least `τ`
//! objects belonging to `g`. When objects carry no explicit attribute values
//! (e.g. a pile of unlabeled face images), group membership can only be
//! obtained by asking an external *answer source* — typically a crowd of
//! human workers. Every question costs money, so the goal is to decide
//! coverage with as few tasks as possible.
//!
//! ## What lives here
//!
//! * [`schema`] — attributes of interest, their values, and object labels.
//! * [`pattern`] — patterns over the attributes (`X01`-style subgroup
//!   descriptions) and the pattern lattice.
//! * [`target`] — the query target: a group, a super-group (OR of groups),
//!   or a negated group (used by the classifier-assisted algorithm).
//! * [`engine`] — the [`engine::AnswerSource`] abstraction and
//!   the [`engine::Engine`] wrapper that meters every question
//!   through a [`ledger::TaskLedger`].
//! * algorithms —
//!   [`group_coverage::group_coverage`] (the divide-and-conquer
//!   core, Alg. 1 of the paper), [`base_coverage::base_coverage`]
//!   (the point-query baseline, Alg. 7),
//!   [`multiple::multiple_coverage`] (super-group
//!   aggregation, Alg. 2),
//!   [`intersectional::intersectional_coverage`]
//!   (MUP discovery over the pattern lattice, Alg. 3) and
//!   [`classifier::classifier_coverage`]
//!   (classifier-assisted verification, Alg. 4/5).
//! * [`mup`] — maximal-uncovered-pattern discovery for *labeled* data
//!   (the Pattern-Combiner dependency of the paper) and for coverage results.
//! * [`bounds`] — the paper's theoretical task bounds.
//!
//! ## Quick example
//!
//! ```
//! use coverage_core::prelude::*;
//!
//! // A dataset of 1 000 objects: the minority group occupies indices 0..30.
//! let schema = AttributeSchema::new(vec![
//!     Attribute::binary("gender", "male", "female").unwrap(),
//! ]).unwrap();
//! let labels: Vec<Labels> = (0..1000)
//!     .map(|i| Labels::new(&[u8::from(i < 30)]))
//!     .collect();
//! let truth = VecGroundTruth::new(labels);
//!
//! // Ask a perfect oracle (unit tests / synthetic experiments).
//! let mut engine = Engine::new(PerfectSource::new(&truth));
//! let female = schema.pattern(&[("gender", "female")]).unwrap();
//! let pool: Vec<ObjectId> = truth.all_ids();
//! let out = group_coverage(&mut engine, &pool, &Target::group(female), 50, 50,
//!                          &DncConfig::default()).unwrap();
//! assert!(!out.covered);       // only 30 females < τ = 50
//! assert_eq!(out.count, 30);   // exact count when uncovered
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acquisition;
pub mod aggregate;
pub mod base_coverage;
pub mod bounds;
pub mod classifier;
pub mod engine;
pub mod error;
pub mod group_coverage;
pub mod intersectional;
pub mod ledger;
pub mod memo;
pub mod multiple;
pub mod mup;
pub mod pattern;
pub mod pattern_graph;
pub mod probe;
pub mod report;
pub mod sampling;
pub mod schema;
pub mod target;
mod tree;
pub mod variable_pricing;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::acquisition::{acquisition_plan, AcquisitionPlan};
    pub use crate::aggregate::{aggregate, SuperGroup};
    pub use crate::base_coverage::base_coverage;
    pub use crate::bounds::{group_coverage_upper_bound, scan_lower_bound, LogBase};
    pub use crate::classifier::{
        classifier_coverage, ClassifierConfig, ClassifierOutcome, FpElimination,
    };
    pub use crate::engine::{
        AnswerSource, BatchAnswerSource, CancelToken, Engine, ForkableSource, GroundTruth,
        InfallibleSource, ObjectId, ObjectIds, PerfectSource, SharedTruthSource, VecGroundTruth,
    };
    pub use crate::error::{AskError, BudgetSnapshot, CoverageError, Interrupted};
    pub use crate::group_coverage::{group_coverage, DncConfig, GroupCoverageOutcome, Traversal};
    pub use crate::intersectional::{
        intersectional_coverage, intersectional_coverage_par, IntersectionalReport,
    };
    pub use crate::ledger::{PricingModel, TaskLedger};
    pub use crate::memo::{
        FactSink, FactSpill, KnowledgeSource, KnowledgeStore, MemoizedSource, ReuseStats,
        SetResolution, SharedKnowledgeSource,
    };
    pub use crate::multiple::{
        multiple_coverage, multiple_coverage_par, GroupResult, IntraJobParallelism, MultipleConfig,
        MultipleReport,
    };
    pub use crate::mup::{mups_from_counts, mups_from_counts_baseline, mups_from_labels};
    pub use crate::pattern::Pattern;
    pub use crate::pattern_graph::{PatternGraph, PatternId};
    pub use crate::probe::{EngineProbe, ProbeHandle};
    pub use crate::report::CoverageReport;
    pub use crate::sampling::{label_samples, LabeledStore};
    pub use crate::schema::{Attribute, AttributeSchema, Labels, MAX_ATTRS};
    pub use crate::target::Target;
    pub use crate::variable_pricing::{optimal_subset_size, CostScheme};
}

pub use prelude::*;
