//! The sampling phase of §4 (`LabelSamples`, Algorithm 6) and the labeled
//! store `L`.
//!
//! Before running per-group searches, the multi-group algorithms label a
//! small random subset (`c·τ` objects, `c = 2` by default) with point
//! queries. The sample serves two purposes: it usually certifies the
//! majority group(s) almost for free, and its group frequencies drive the
//! super-group aggregation heuristic.

use crate::engine::{AnswerSource, Engine, ObjectId};
use crate::error::AskError;
use crate::schema::Labels;
use crate::target::Target;
use rand::Rng;
use std::collections::HashMap;

/// The labeled set `L`: objects whose attribute values the crowd has
/// provided, moved out of the unlabeled pool so they are never asked about
/// twice.
#[derive(Debug, Clone, Default)]
pub struct LabeledStore {
    map: HashMap<ObjectId, Labels>,
}

impl LabeledStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the labels of one object. Returns the previous labels when
    /// the object was already present.
    pub fn add(&mut self, id: ObjectId, labels: Labels) -> Option<Labels> {
        self.map.insert(id, labels)
    }

    /// Number of labeled objects `|L|`.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been labeled.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The labels of `id`, if known.
    pub fn labels_of(&self, id: ObjectId) -> Option<&Labels> {
        self.map.get(&id)
    }

    /// Is the object already labeled?
    pub fn contains(&self, id: ObjectId) -> bool {
        self.map.contains_key(&id)
    }

    /// `L.count(g)`: labeled objects matching a target.
    pub fn count(&self, target: &Target) -> usize {
        self.map.values().filter(|l| target.matches(l)).count()
    }

    /// Iterates over `(id, labels)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &Labels)> {
        self.map.iter()
    }

    /// Ids of labeled objects matching a target.
    pub fn members(&self, target: &Target) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = self
            .map
            .iter()
            .filter(|(_, l)| target.matches(l))
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }
}

/// `LabelSamples` (Algorithm 6, lines 1-5): draws `k` objects uniformly at
/// random from `pool`, labels them with (batched) point queries, removes
/// them from `pool`, and returns them in a fresh [`LabeledStore`].
///
/// Pool order of the remaining objects is preserved (the d&c algorithm's
/// set queries are formed from contiguous runs of the pool, and reshuffling
/// between phases would change nothing statistically but would make runs
/// harder to reproduce).
///
/// # Errors
/// When the ask path refuses the labeling batch the picked objects are put
/// back into `pool` (at the tail, in picked order) and no store is built —
/// nothing was labeled, so there is no partial progress to report.
pub fn label_samples<S: AnswerSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &mut Vec<ObjectId>,
    k: usize,
    rng: &mut R,
) -> Result<LabeledStore, AskError> {
    let mut store = LabeledStore::new();
    let k = k.min(pool.len());
    if k == 0 {
        return Ok(store);
    }
    // Partial Fisher–Yates: move k random picks to the tail, then split.
    let len = pool.len();
    for i in 0..k {
        let j = rng.gen_range(0..len - i);
        pool.swap(j, len - 1 - i);
    }
    let picked: Vec<ObjectId> = pool.split_off(len - k);
    let labels = match engine.ask_point_labels_batched(&picked) {
        Ok(labels) => labels,
        Err(error) => {
            pool.extend(picked);
            return Err(error);
        }
    };
    for (id, l) in picked.into_iter().zip(labels) {
        store.add(id, l);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GroundTruth;
    use crate::engine::{PerfectSource, VecGroundTruth};
    use crate::pattern::Pattern;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn truth_with_minority(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    #[test]
    fn samples_move_from_pool_to_store() {
        let truth = truth_with_minority(100, 20);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        let mut pool = truth.all_ids();
        let mut rng = SmallRng::seed_from_u64(7);
        let store = label_samples(&mut engine, &mut pool, 30, &mut rng).unwrap();
        assert_eq!(store.len(), 30);
        assert_eq!(pool.len(), 70);
        for (id, _) in store.iter() {
            assert!(!pool.contains(id), "{id} still in pool");
        }
        // 30 labels at batch 50 ⇒ one charged task.
        assert_eq!(engine.ledger().point_tasks(), 1);
        assert_eq!(engine.ledger().point_labels(), 30);
    }

    #[test]
    fn sample_counts_reflect_composition() {
        let truth = truth_with_minority(1000, 300);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let mut pool = truth.all_ids();
        let mut rng = SmallRng::seed_from_u64(42);
        let store = label_samples(&mut engine, &mut pool, 200, &mut rng).unwrap();
        let minority = Target::group(Pattern::parse("1").unwrap());
        let frac = store.count(&minority) as f64 / store.len() as f64;
        assert!(
            (frac - 0.3).abs() < 0.12,
            "sample fraction {frac} far from 0.3"
        );
    }

    #[test]
    fn oversized_request_clamps_to_pool() {
        let truth = truth_with_minority(10, 2);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let mut pool = truth.all_ids();
        let mut rng = SmallRng::seed_from_u64(1);
        let store = label_samples(&mut engine, &mut pool, 50, &mut rng).unwrap();
        assert_eq!(store.len(), 10);
        assert!(pool.is_empty());
    }

    #[test]
    fn zero_request_is_free() {
        let truth = truth_with_minority(10, 2);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let mut pool = truth.all_ids();
        let mut rng = SmallRng::seed_from_u64(1);
        let store = label_samples(&mut engine, &mut pool, 0, &mut rng).unwrap();
        assert!(store.is_empty());
        assert_eq!(pool.len(), 10);
        assert_eq!(engine.ledger().total_tasks(), 0);
    }

    #[test]
    fn store_membership_queries() {
        let mut store = LabeledStore::new();
        store.add(ObjectId(3), Labels::single(1));
        store.add(ObjectId(5), Labels::single(0));
        store.add(ObjectId(9), Labels::single(1));
        let minority = Target::group(Pattern::parse("1").unwrap());
        assert_eq!(store.count(&minority), 2);
        assert_eq!(store.members(&minority), vec![ObjectId(3), ObjectId(9)]);
        assert!(store.contains(ObjectId(5)));
        assert_eq!(store.labels_of(ObjectId(5)), Some(&Labels::single(0)));
        assert_eq!(store.labels_of(ObjectId(4)), None);
        // Re-adding returns the old labels.
        assert_eq!(
            store.add(ObjectId(3), Labels::single(0)),
            Some(Labels::single(1))
        );
    }

    #[test]
    fn sampling_is_uniform_ish() {
        // Each object should be picked roughly k/N of the time.
        let truth = truth_with_minority(50, 0);
        let mut hits = [0u32; 50];
        for seed in 0..400 {
            let mut engine = Engine::new(PerfectSource::new(&truth));
            let mut pool = truth.all_ids();
            let mut rng = SmallRng::seed_from_u64(seed);
            let store = label_samples(&mut engine, &mut pool, 10, &mut rng).unwrap();
            for (id, _) in store.iter() {
                hits[id.index()] += 1;
            }
        }
        // Expected 80 hits each; allow generous slack.
        for (i, h) in hits.iter().enumerate() {
            assert!((30..=150).contains(h), "object {i} picked {h} times");
        }
    }
}
