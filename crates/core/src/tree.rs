//! Arena-backed binary tree and frontier for the divide-and-conquer
//! algorithms (Alg. 1 and Alg. 5 of the paper).
//!
//! Nodes are ranges `[b, e)` into a presentation-order pool of objects.
//! The frontier abstracts the queue discipline: the paper processes nodes
//! breadth-first (a FIFO queue whose left children are added first); a LIFO
//! variant is provided for the ablation benchmarks.

use std::collections::VecDeque;

pub(crate) const NO_NODE: u32 = u32::MAX;

/// One node of the execution tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// Start of the range (inclusive), index into the pool.
    pub b: u32,
    /// End of the range (exclusive).
    pub e: u32,
    /// Parent node id, `NO_NODE` for roots.
    pub parent: u32,
    /// Sibling node id, `NO_NODE` for roots.
    pub sibling: u32,
    /// Paper's `checked` flag: true once one child answered *yes*.
    pub checked: bool,
    /// True once the node has been resolved (asked or substituted).
    pub done: bool,
}

impl Node {
    pub fn root(b: u32, e: u32) -> Self {
        Self {
            b,
            e,
            parent: NO_NODE,
            sibling: NO_NODE,
            checked: false,
            done: false,
        }
    }

    pub fn len(&self) -> u32 {
        self.e - self.b
    }

    pub fn is_root(&self) -> bool {
        self.parent == NO_NODE
    }
}

/// The set of pending nodes, in either queue (BFS, the paper's order) or
/// stack (DFS) discipline. Nodes removed out-of-band (the sibling
/// substitution of Alg. 1 line 12) are tombstoned and skipped on pop.
#[derive(Debug)]
pub(crate) enum Frontier {
    Fifo(VecDeque<u32>),
    Lifo(Vec<u32>),
}

impl Frontier {
    pub fn fifo() -> Self {
        Self::Fifo(VecDeque::new())
    }

    pub fn lifo() -> Self {
        Self::Lifo(Vec::new())
    }

    pub fn push(&mut self, id: u32) {
        match self {
            Self::Fifo(q) => q.push_back(id),
            Self::Lifo(s) => s.push(id),
        }
    }

    /// Pops the next non-tombstoned node id.
    pub fn pop(&mut self, removed: &[bool]) -> Option<u32> {
        loop {
            let id = match self {
                Self::Fifo(q) => q.pop_front()?,
                Self::Lifo(s) => s.pop()?,
            };
            if !removed[id as usize] {
                return Some(id);
            }
        }
    }
}

/// Arena of tree nodes plus the tombstone set used by the frontier.
#[derive(Debug, Default)]
pub(crate) struct Arena {
    pub nodes: Vec<Node>,
    pub removed: Vec<bool>,
}

impl Arena {
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(cap),
            removed: Vec::with_capacity(cap),
        }
    }

    pub fn push(&mut self, node: Node) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        self.removed.push(false);
        id
    }

    /// Splits `[b, e)` as the paper does with inclusive indices and
    /// `mid = ⌊(i+j)/2⌋`: the left child receives `ceil(len/2)` objects.
    /// Returns `(left, right)` node ids; the children are linked to the
    /// parent and to each other.
    pub fn split(&mut self, parent_id: u32) -> (u32, u32) {
        let parent = self.nodes[parent_id as usize];
        debug_assert!(parent.len() > 1, "cannot split a singleton set");
        let mid = parent.b + parent.len().div_ceil(2);
        let left = self.push(Node {
            b: parent.b,
            e: mid,
            parent: parent_id,
            sibling: NO_NODE,
            checked: false,
            done: false,
        });
        let right = self.push(Node {
            b: mid,
            e: parent.e,
            parent: parent_id,
            sibling: left,
            checked: false,
            done: false,
        });
        self.nodes[left as usize].sibling = right;
        (left, right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_gives_left_ceil_half() {
        let mut a = Arena::default();
        let root = a.push(Node::root(0, 5));
        let (l, r) = a.split(root);
        assert_eq!((a.nodes[l as usize].b, a.nodes[l as usize].e), (0, 3));
        assert_eq!((a.nodes[r as usize].b, a.nodes[r as usize].e), (3, 5));
        assert_eq!(a.nodes[l as usize].sibling, r);
        assert_eq!(a.nodes[r as usize].sibling, l);
        assert_eq!(a.nodes[l as usize].parent, root);
    }

    #[test]
    fn split_pair() {
        let mut a = Arena::default();
        let root = a.push(Node::root(10, 12));
        let (l, r) = a.split(root);
        assert_eq!(a.nodes[l as usize].len(), 1);
        assert_eq!(a.nodes[r as usize].len(), 1);
    }

    #[test]
    fn fifo_order_and_tombstones() {
        let mut f = Frontier::fifo();
        let removed = vec![false, true, false];
        f.push(0);
        f.push(1);
        f.push(2);
        assert_eq!(f.pop(&removed), Some(0));
        assert_eq!(f.pop(&removed), Some(2)); // 1 skipped
        assert_eq!(f.pop(&removed), None);
    }

    #[test]
    fn lifo_order() {
        let mut f = Frontier::lifo();
        let removed = vec![false; 3];
        f.push(0);
        f.push(1);
        f.push(2);
        assert_eq!(f.pop(&removed), Some(2));
        assert_eq!(f.pop(&removed), Some(1));
        assert_eq!(f.pop(&removed), Some(0));
    }
}
