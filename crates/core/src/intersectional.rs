//! **Intersectional-Coverage** — MUP discovery over multiple attributes
//! (Algorithm 3, §4).
//!
//! The problem reduces to the fully-specified subgroups at the bottom of the
//! pattern graph (Figure 5): run [`multiple_coverage`] over them (with the
//! sibling-only aggregation mode), then propagate coverage *up* the lattice
//! — a parent's population is the sum of its children's, so exact counts
//! for uncovered subgroups plus "covered" flags for the rest decide every
//! ancestor without further crowd work. The uncovered region is reported as
//! maximal uncovered patterns (MUPs).

use crate::engine::{AnswerSource, Engine, ForkableSource, ObjectId};
use crate::error::Interrupted;
use crate::ledger::TaskLedger;
use crate::multiple::{
    multiple_coverage, multiple_coverage_par, GroupResult, IntraJobParallelism, MultipleConfig,
};
use crate::pattern::Pattern;
use crate::pattern_graph::PatternGraph;
use crate::schema::AttributeSchema;
use rand::Rng;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::HashMap;

/// Coverage verdict for one pattern of the lattice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternCoverage {
    /// The pattern.
    pub pattern: Pattern,
    /// Is the pattern covered?
    pub covered: bool,
    /// Known population: exact when `exact`, otherwise a lower bound.
    pub count: usize,
    /// True when `count` is exact.
    pub exact: bool,
}

/// Output of [`intersectional_coverage`].
#[derive(Debug, Clone)]
pub struct IntersectionalReport {
    /// Verdicts for the fully-specified subgroups (the crowd-searched level).
    pub full_groups: Vec<GroupResult>,
    /// Verdicts for every pattern of the lattice, root first.
    pub patterns: Vec<PatternCoverage>,
    /// The maximal uncovered patterns.
    pub mups: Vec<Pattern>,
    /// Crowd work consumed.
    pub tasks: TaskLedger,
    /// Pattern → slot in `patterns`, built once at assembly so repeated
    /// [`IntersectionalReport::coverage_of`] lookups are O(1) instead of a
    /// linear lattice scan. Rebuilt on deserialization; not serialized.
    slots: HashMap<Pattern, u32>,
}

impl IntersectionalReport {
    /// Assembles a report, indexing the verdicts for O(1) lookup. The slot
    /// index mirrors `patterns`; callers mutating `patterns` afterwards
    /// should rebuild via `IntersectionalReport::new`.
    pub fn new(
        full_groups: Vec<GroupResult>,
        patterns: Vec<PatternCoverage>,
        mups: Vec<Pattern>,
        tasks: TaskLedger,
    ) -> Self {
        let slots = patterns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.pattern, i as u32))
            .collect();
        Self {
            full_groups,
            patterns,
            mups,
            tasks,
            slots,
        }
    }

    /// The verdict for one pattern, if present — one indexed lookup, O(1)
    /// however often it is called (partial reports omit undecided patterns,
    /// which return `None`).
    pub fn coverage_of(&self, p: &Pattern) -> Option<&PatternCoverage> {
        self.slots.get(p).map(|slot| &self.patterns[*slot as usize])
    }
}

// The slot index is derived data: serialize only the four payload fields
// (the vendored serde derive cannot skip a field) and rebuild the index on
// the way back in.
impl Serialize for IntersectionalReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("full_groups".to_string(), self.full_groups.to_value()),
            ("patterns".to_string(), self.patterns.to_value()),
            ("mups".to_string(), self.mups.to_value()),
            ("tasks".to_string(), self.tasks.to_value()),
        ])
    }
}

impl Deserialize for IntersectionalReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Self::new(
            Vec::from_value(value.get_field("full_groups")?)?,
            Vec::from_value(value.get_field("patterns")?)?,
            Vec::from_value(value.get_field("mups")?)?,
            TaskLedger::from_value(value.get_field("tasks")?)?,
        ))
    }
}

/// Runs **Intersectional-Coverage** (Algorithm 3) over `pool` for every
/// individual and intersectional subgroup of `schema`.
///
/// `cfg.multi` is forced on (the aggregation must only merge sibling
/// subgroups). For sound upward propagation the default also forces
/// `resolve_supergroup_members` on: without it, members of an uncovered
/// super-group only carry lower-bound counts and an ancestor built from
/// them could be misjudged; the paper's Algorithm 3 glosses over this —
/// see DESIGN.md §5.
///
/// # Panics
/// Panics when `cfg.n == 0`.
///
/// # Errors
/// When the ask path fails, the [`Interrupted`] error carries a partial
/// [`IntersectionalReport`] built from the fully-specified subgroups that
/// *were* decided: the lattice is propagated over partial knowledge — a
/// pattern is reported covered as soon as any decided descendant is
/// covered, uncovered only when **all** its descendants are decided — and
/// MUPs are emitted only where the pattern and all its parents are
/// decidable. Every MUP in the partial report is therefore a true MUP of
/// the complete run (anytime semantics).
///
/// # Example
///
/// ```
/// use coverage_core::prelude::*;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let schema = AttributeSchema::new(vec![
///     Attribute::binary("gender", "male", "female").unwrap(),
///     Attribute::binary("skin", "light", "dark").unwrap(),
/// ]).unwrap();
/// // Plenty of light-skinned faces of both genders; 40 dark-skinned males,
/// // 5 dark-skinned females.
/// let mut labels = Vec::new();
/// for i in 0..1600u32 {
///     labels.push(Labels::new(&[(i % 2) as u8, 0]));
/// }
/// labels.extend(std::iter::repeat(Labels::new(&[0, 1])).take(40));
/// labels.extend(std::iter::repeat(Labels::new(&[1, 1])).take(5));
/// let truth = VecGroundTruth::new(labels);
///
/// let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
/// let mut rng = SmallRng::seed_from_u64(9);
/// let report = intersectional_coverage(
///     &mut engine, &truth.all_ids(), &schema,
///     &MultipleConfig { tau: 50, ..MultipleConfig::default() }, &mut rng,
/// ).unwrap();
/// // 40 + 5 = 45 < 50: the whole dark-skinned group is the MUP.
/// let x_dark = schema.pattern(&[("skin", "dark")]).unwrap();
/// assert_eq!(report.mups, vec![x_dark]);
/// ```
// The Err variant deliberately carries the full partial report — the size
// is the feature, not an accident.
#[allow(clippy::result_large_err)]
pub fn intersectional_coverage<S: AnswerSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    schema: &AttributeSchema,
    cfg: &MultipleConfig,
    rng: &mut R,
) -> Result<IntersectionalReport, Interrupted<IntersectionalReport>> {
    let mut cfg = cfg.clone();
    cfg.multi = true;
    cfg.resolve_supergroup_members = true;

    let graph = PatternGraph::new(schema);
    let full_groups: Vec<Pattern> = graph.full_groups().to_vec();
    match multiple_coverage(engine, pool, &full_groups, &cfg, rng) {
        Ok(report) => Ok(propagate(&graph, report, cfg.tau)),
        Err(interrupted) => {
            Err(interrupted.map_partial(|partial| propagate(&graph, partial, cfg.tau)))
        }
    }
}

/// [`intersectional_coverage`] with the fully-specified-subgroup scan
/// sharded across `parallelism` threads inside this one audit (via
/// [`multiple_coverage_par`]); verdicts, counts, MUPs and the logical
/// ledger are byte-identical to the sequential run for any worker count.
///
/// # Panics
/// Panics when `cfg.n == 0`.
///
/// # Errors
/// As [`intersectional_coverage`].
#[allow(clippy::result_large_err)]
pub fn intersectional_coverage_par<S: ForkableSource, R: Rng + ?Sized>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    schema: &AttributeSchema,
    cfg: &MultipleConfig,
    rng: &mut R,
    parallelism: IntraJobParallelism,
) -> Result<IntersectionalReport, Interrupted<IntersectionalReport>> {
    let mut cfg = cfg.clone();
    cfg.multi = true;
    cfg.resolve_supergroup_members = true;

    let graph = PatternGraph::new(schema);
    let full_groups: Vec<Pattern> = graph.full_groups().to_vec();
    match multiple_coverage_par(engine, pool, &full_groups, &cfg, rng, parallelism) {
        Ok(report) => Ok(propagate(&graph, report, cfg.tau)),
        Err(interrupted) => {
            Err(interrupted.map_partial(|partial| propagate(&graph, partial, cfg.tau)))
        }
    }
}

/// Per-pattern aggregate over fully-specified descendants, composed
/// bottom-up: AND/OR/sum are associative and commutative with the right
/// neutral elements, so combining prime children reproduces the flat
/// descendant fold exactly — in O(edges) instead of O(patterns × cells).
#[derive(Clone, Copy)]
struct Fold {
    any_covered: bool,
    all_exact: bool,
    all_decided: bool,
    sum: usize,
}

impl Fold {
    /// The neutral element — also exactly what an *undecided* cell
    /// contributes (it only clears `all_decided`).
    const UNDECIDED: Fold = Fold {
        any_covered: false,
        all_exact: true,
        all_decided: false,
        sum: 0,
    };

    fn of_leaf(r: &GroupResult) -> Fold {
        Fold {
            any_covered: r.covered,
            all_exact: r.count_exact,
            all_decided: true,
            sum: r.count,
        }
    }

    fn absorb(&mut self, other: &Fold) {
        self.any_covered |= other.any_covered;
        self.all_exact &= other.all_exact;
        self.all_decided &= other.all_decided;
        self.sum += other.sum;
    }
}

/// Upward propagation over (possibly partial) full-group verdicts: a
/// pattern's population is the disjoint sum of its fully-specified
/// descendants'. With every group decided this is the paper's Algorithm 3
/// propagation; with a partial verdict set it reports only what is sound —
/// covered as soon as one decided descendant is covered, uncovered only
/// when all descendants are decided, undecided patterns omitted.
///
/// Everything runs on dense [`PatternGraph`] ids: leaves initialize from
/// the group verdicts, one reverse pass over prime-child edges folds the
/// aggregates for every pattern, and the MUP check reads parents through
/// the id-indexed CSR — no `HashMap<Pattern, _>` anywhere.
fn propagate(
    graph: &PatternGraph,
    report: crate::multiple::MultipleReport,
    tau: usize,
) -> IntersectionalReport {
    let n = graph.len();
    let full_start = n - graph.full_groups().len();
    let mut folds = vec![Fold::UNDECIDED; n];
    for r in &report.results {
        if let Some(id) = graph.pattern_id(&r.group) {
            folds[id as usize] = Fold::of_leaf(r);
        }
    }
    // `all_decided` starts true for interior patterns (it is an AND).
    for fold in folds.iter_mut().take(full_start) {
        fold.all_decided = true;
    }
    for id in (0..full_start).rev() {
        let mut fold = folds[id];
        for child in graph.prime_children_ids(id as u32) {
            fold.absorb(&folds[*child as usize]);
        }
        folds[id] = fold;
    }

    let mut patterns = Vec::with_capacity(n);
    let mut pattern_ids = Vec::with_capacity(n);
    // Dense verdict map: `None` = undecided/omitted (keeps children out of
    // the MUP set on partial knowledge).
    let mut covered_by_id: Vec<Option<bool>> = vec![None; n];
    for (id, p) in graph.iter().enumerate() {
        let fold = &folds[id];
        if !fold.all_decided && !fold.any_covered && fold.sum < tau {
            // Cannot be proven covered or uncovered from what was decided.
            continue;
        }
        let covered = fold.any_covered || fold.sum >= tau;
        covered_by_id[id] = Some(covered);
        pattern_ids.push(id as u32);
        patterns.push(PatternCoverage {
            pattern: *p,
            covered,
            count: fold.sum,
            // A covered descendant's count is a stopped lower bound; an
            // undecided descendant leaves the sum a lower bound too.
            exact: fold.all_exact && !fold.any_covered && fold.all_decided,
        });
    }

    // MUPs: uncovered with every parent covered (the root qualifies when
    // the dataset itself is below τ).
    let mups: Vec<Pattern> = patterns
        .iter()
        .zip(&pattern_ids)
        .filter(|(c, id)| {
            !c.covered
                && graph
                    .parents_of(**id)
                    .iter()
                    .all(|p| covered_by_id[*p as usize].unwrap_or(false))
        })
        .map(|(c, _)| c.pattern)
        .collect();

    IntersectionalReport::new(report.results, patterns, mups, report.tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GroundTruth;
    use crate::engine::{PerfectSource, VecGroundTruth};
    use crate::mup::mups_from_labels;
    use crate::schema::{Attribute, Labels};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn schema_2x2() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::binary("skin", "light", "dark").unwrap(),
        ])
        .unwrap()
    }

    /// Interleaved dataset over 2 attributes from (labels, count) specs.
    fn truth_2d(spec: &[([u8; 2], usize)]) -> VecGroundTruth {
        let mut remaining: Vec<([u8; 2], usize)> =
            spec.iter().copied().filter(|(_, c)| *c > 0).collect();
        let mut labels = Vec::new();
        while !remaining.is_empty() {
            for (vals, c) in &mut remaining {
                labels.push(Labels::new(vals));
                *c -= 1;
            }
            remaining.retain(|(_, c)| *c > 0);
        }
        VecGroundTruth::new(labels)
    }

    fn run(
        truth: &VecGroundTruth,
        schema: &AttributeSchema,
        tau: usize,
        seed: u64,
    ) -> IntersectionalReport {
        let mut engine = Engine::with_point_batch(PerfectSource::new(truth), 50);
        let mut rng = SmallRng::seed_from_u64(seed);
        let cfg = MultipleConfig {
            tau,
            ..MultipleConfig::default()
        };
        intersectional_coverage(&mut engine, &truth.all_ids(), schema, &cfg, &mut rng).unwrap()
    }

    #[test]
    fn mups_match_offline_ground_truth() {
        // dark females nearly absent; dark males small; light plentiful.
        let schema = schema_2x2();
        let truth = truth_2d(&[([0, 0], 800), ([1, 0], 700), ([0, 1], 30), ([1, 1], 5)]);
        for seed in 0..5 {
            let report = run(&truth, &schema, 50, seed);
            let mut got = report.mups.clone();
            let mut want = mups_from_labels(truth.labels(), &schema, 50);
            got.sort_by_key(|p| p.to_string());
            want.sort_by_key(|p| p.to_string());
            assert_eq!(got, want, "seed {seed}");
            // X-dark has 35 < 50 members and covered parents ⇒ the MUP.
            let x_dark = schema.pattern(&[("skin", "dark")]).unwrap();
            assert!(report.mups.contains(&x_dark));
        }
    }

    #[test]
    fn paper_asian_style_propagation() {
        // Two uncovered children summing past τ ⇒ parent covered without
        // extra crowd work (the paper's 28+32 Asian example, on skin=dark).
        let schema = schema_2x2();
        let truth = truth_2d(&[([0, 0], 800), ([1, 0], 700), ([0, 1], 32), ([1, 1], 28)]);
        let report = run(&truth, &schema, 50, 3);
        let x_dark = schema.pattern(&[("skin", "dark")]).unwrap();
        let cov = report.coverage_of(&x_dark).unwrap();
        assert!(cov.covered, "28+32 = 60 ≥ 50 must cover X-dark");
        assert_eq!(cov.count, 60);
        assert!(cov.exact);
        // The children themselves are the MUPs.
        let male_dark = schema
            .pattern(&[("gender", "male"), ("skin", "dark")])
            .unwrap();
        assert!(report.mups.contains(&male_dark));
    }

    #[test]
    fn fully_covered_dataset_yields_no_mups() {
        let schema = schema_2x2();
        let truth = truth_2d(&[([0, 0], 100), ([1, 0], 100), ([0, 1], 100), ([1, 1], 100)]);
        let report = run(&truth, &schema, 50, 1);
        assert!(report.mups.is_empty());
        for p in &report.patterns {
            assert!(p.covered, "{} should be covered", p.pattern);
        }
    }

    #[test]
    fn root_is_mup_for_tiny_dataset() {
        let schema = schema_2x2();
        let truth = truth_2d(&[([0, 0], 3), ([1, 1], 4)]);
        let report = run(&truth, &schema, 50, 1);
        assert_eq!(report.mups, vec![Pattern::all_unspecified(2)]);
    }

    #[test]
    fn three_binary_attributes_match_offline() {
        let schema = AttributeSchema::new(vec![
            Attribute::binary("a", "0", "1").unwrap(),
            Attribute::binary("b", "0", "1").unwrap(),
            Attribute::binary("c", "0", "1").unwrap(),
        ])
        .unwrap();
        // Mixed composition: some cells huge, some tiny, some empty.
        let spec: Vec<([u8; 3], usize)> = vec![
            ([0, 0, 0], 300),
            ([0, 0, 1], 280),
            ([0, 1, 0], 260),
            ([0, 1, 1], 10),
            ([1, 0, 0], 240),
            ([1, 0, 1], 8),
            ([1, 1, 0], 0),
            ([1, 1, 1], 30),
        ];
        let mut remaining: Vec<([u8; 3], usize)> =
            spec.iter().copied().filter(|(_, c)| *c > 0).collect();
        let mut labels = Vec::new();
        while !remaining.is_empty() {
            for (vals, c) in &mut remaining {
                labels.push(Labels::new(vals));
                *c -= 1;
            }
            remaining.retain(|(_, c)| *c > 0);
        }
        let truth = VecGroundTruth::new(labels);
        for seed in 0..3 {
            let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
            let mut rng = SmallRng::seed_from_u64(seed);
            let cfg = MultipleConfig {
                tau: 50,
                ..MultipleConfig::default()
            };
            let report =
                intersectional_coverage(&mut engine, &truth.all_ids(), &schema, &cfg, &mut rng)
                    .unwrap();
            let mut got = report.mups.clone();
            let mut want = mups_from_labels(truth.labels(), &schema, 50);
            got.sort_by_key(|p| p.to_string());
            want.sort_by_key(|p| p.to_string());
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn counts_for_uncovered_patterns_are_exact() {
        let schema = schema_2x2();
        let truth = truth_2d(&[([0, 0], 900), ([1, 0], 900), ([0, 1], 12), ([1, 1], 7)]);
        let report = run(&truth, &schema, 50, 7);
        let x_dark = schema.pattern(&[("skin", "dark")]).unwrap();
        let cov = report.coverage_of(&x_dark).unwrap();
        assert!(!cov.covered);
        assert!(cov.exact);
        assert_eq!(cov.count, 19);
    }
}
