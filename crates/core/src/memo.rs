//! Answer memoization: never pay for the same question twice.
//!
//! §4 of the paper motivates its heuristics by noting that independent
//! Group-Coverage runs "miss the opportunity to reuse the information
//! collected during each run". The aggregation heuristic reuses *labels*;
//! [`MemoizedSource`] generalizes the idea to *whole answers*: it wraps any
//! [`crate::engine::AnswerSource`] and caches set-query and
//! point-query results keyed by (objects, target), answering repeats from
//! the cache. Combined with an [`crate::engine::Engine`] the repeat
//! is still *metered* — the cache models a requester who stores previous
//! crowd answers, so wrap the source and compare ledgers to quantify the
//! savings (see the `memoization_savings` test).
//!
//! Point labels are additionally reusable *across* targets: once an object
//! is labeled, every future set query that contains it could in principle
//! be narrowed. That deeper reuse is the paper's open direction; here the
//! cache is exact-match only, which is already enough to de-duplicate the
//! brute-force multi-group baseline's repeated root queries.

use crate::engine::{AnswerSource, BatchAnswerSource, ObjectId};
use crate::error::AskError;
use crate::schema::Labels;
use crate::target::Target;
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// A caching wrapper around an answer source.
#[derive(Debug, Clone)]
pub struct MemoizedSource<S> {
    inner: S,
    set_cache: HashMap<(Vec<ObjectId>, Target), bool>,
    label_cache: HashMap<ObjectId, Labels>,
    hits: u64,
    misses: u64,
}

impl<S> MemoizedSource<S> {
    /// Wraps a source with empty caches.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            set_cache: HashMap::new(),
            label_cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Questions answered from cache.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Questions forwarded to the inner source.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: AnswerSource> AnswerSource for MemoizedSource<S> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        let key = (objects.to_vec(), target.clone());
        if let Some(ans) = self.set_cache.get(&key) {
            self.hits += 1;
            return Ok(*ans);
        }
        self.misses += 1;
        // Only delivered answers are cached: a refused question stays
        // askable (e.g. once a budget is raised).
        let ans = self.inner.try_answer_set(objects, target)?;
        self.set_cache.insert(key, ans);
        Ok(ans)
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        if let Some(l) = self.label_cache.get(&object) {
            self.hits += 1;
            return Ok(*l);
        }
        self.misses += 1;
        let l = self.inner.try_answer_point_labels(object)?;
        self.label_cache.insert(object, l);
        Ok(l)
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        // Route through the label cache: a cached label answers any
        // membership question about the object for free.
        let labels = self.try_answer_point_labels(object)?;
        Ok(target.matches(&labels))
    }
}

impl<S: AnswerSource> BatchAnswerSource for MemoizedSource<S> {}

#[derive(Debug, Default)]
struct SharedMemoState {
    set_cache: HashMap<(Vec<ObjectId>, Target), bool>,
    label_cache: HashMap<ObjectId, Labels>,
    set_in_flight: HashSet<(Vec<ObjectId>, Target)>,
    label_in_flight: HashSet<ObjectId>,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Default)]
struct SharedMemo {
    state: Mutex<SharedMemoState>,
    ready: Condvar,
}

impl SharedMemo {
    fn lock(&self) -> MutexGuard<'_, SharedMemoState> {
        // A genuinely panicking job (a bug) must not poison the
        // platform-wide cache for every other job; expected failures
        // (budget, cancellation) travel as `Err` and never unwind here.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Removes claimed in-flight keys and wakes waiters if the claiming handle
/// exits without committing an answer — an `Err` from the inner source or
/// a genuine panic; a waiter then re-claims the question instead of
/// blocking forever.
struct FlightGuard<'a> {
    memo: &'a SharedMemo,
    set_key: Option<(Vec<ObjectId>, Target)>,
    label_keys: Vec<ObjectId>,
}

impl FlightGuard<'_> {
    fn disarm(&mut self) {
        self.set_key = None;
        self.label_keys.clear();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.set_key.is_none() && self.label_keys.is_empty() {
            return;
        }
        let mut state = self.memo.lock();
        if let Some(key) = self.set_key.take() {
            state.set_in_flight.remove(&key);
        }
        for key in self.label_keys.drain(..) {
            state.label_in_flight.remove(&key);
        }
        drop(state);
        self.memo.ready.notify_all();
    }
}

/// The thread-safe generalization of [`MemoizedSource`]: a platform-wide
/// answer cache shared by every clone of the source.
///
/// Each clone carries its **own** inner source (so per-handle state such as
/// a dispatcher connection stays private) but all clones consult and fill
/// one cache behind a mutex. This is the memo layer the `coverage-service`
/// crate threads through concurrent audit jobs: once any job has paid for a
/// question, every other job answers it for free.
///
/// Concurrent misses on the same key are **coalesced**: the first asker
/// claims the question and forwards it to its inner source (the lock is not
/// held across that call); every other asker waits on a condvar and reads
/// the committed answer as a cache hit. If the claiming handle *fails* —
/// its budget refuses the question, its job is cancelled, its connection
/// drops — the failure stays its own: waiters are woken, re-claim the
/// question and pay for it with their own budget instead of inheriting the
/// error or blocking forever.
#[derive(Debug)]
pub struct SharedMemoizedSource<S> {
    inner: S,
    shared: Arc<SharedMemo>,
}

impl<S: Clone> Clone for SharedMemoizedSource<S> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S> SharedMemoizedSource<S> {
    /// Wraps a source with a fresh shared cache.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            shared: Arc::new(SharedMemo::default()),
        }
    }

    /// A handle over the **same** shared cache but a different inner source
    /// — how a serving layer gives each tenant its own connection while all
    /// tenants share one cache.
    pub fn with_inner<T>(&self, inner: T) -> SharedMemoizedSource<T> {
        SharedMemoizedSource {
            inner,
            shared: Arc::clone(&self.shared),
        }
    }

    /// Questions answered from the shared cache (including coalesced waits
    /// on another handle's in-flight question), across all clones.
    pub fn cache_hits(&self) -> u64 {
        self.shared.lock().hits
    }

    /// Questions forwarded to an inner source, across all clones.
    pub fn cache_misses(&self) -> u64 {
        self.shared.lock().misses
    }

    /// This handle's inner source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps this handle into its inner source (the cache lives on in
    /// other clones).
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: AnswerSource> AnswerSource for SharedMemoizedSource<S> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        let key = (objects.to_vec(), target.clone());
        let mut state = self.shared.lock();
        loop {
            {
                let s = &mut *state;
                if let Some(ans) = s.set_cache.get(&key) {
                    s.hits += 1;
                    return Ok(*ans);
                }
                if !s.set_in_flight.contains(&key) {
                    s.set_in_flight.insert(key.clone());
                    s.misses += 1;
                    break;
                }
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        let mut guard = FlightGuard {
            memo: &self.shared,
            set_key: Some(key.clone()),
            label_keys: Vec::new(),
        };
        let result = self.inner.try_answer_set(objects, target);
        let mut state = self.shared.lock();
        state.set_in_flight.remove(&key);
        if let Ok(ans) = &result {
            // Failed questions are not cached: a coalesced waiter wakes,
            // re-claims the question and pays for it itself — one handle's
            // budget abort must not poison another handle's identical ask.
            state.set_cache.insert(key, *ans);
        }
        drop(state);
        guard.disarm();
        self.shared.ready.notify_all();
        result
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        let mut state = self.shared.lock();
        loop {
            {
                let s = &mut *state;
                if let Some(l) = s.label_cache.get(&object) {
                    s.hits += 1;
                    return Ok(*l);
                }
                if !s.label_in_flight.contains(&object) {
                    s.label_in_flight.insert(object);
                    s.misses += 1;
                    break;
                }
            }
            state = self
                .shared
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        let mut guard = FlightGuard {
            memo: &self.shared,
            set_key: None,
            label_keys: vec![object],
        };
        let result = self.inner.try_answer_point_labels(object);
        let mut state = self.shared.lock();
        state.label_in_flight.remove(&object);
        if let Ok(l) = &result {
            state.label_cache.insert(object, *l);
        }
        drop(state);
        guard.disarm();
        self.shared.ready.notify_all();
        result
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        // Route through the label cache, as in [`MemoizedSource`].
        let labels = self.try_answer_point_labels(object)?;
        Ok(target.matches(&labels))
    }
}

impl<S: BatchAnswerSource> BatchAnswerSource for SharedMemoizedSource<S> {
    /// Serves cached labels locally, forwards the unclaimed unknowns to the
    /// inner batch path in one coalesced request, and waits out objects
    /// another handle already has in flight. On `Err` every claimed object
    /// is released (and waiters woken) without caching anything.
    fn try_answer_point_labels_batch(
        &mut self,
        objects: &[ObjectId],
    ) -> Result<Vec<Labels>, AskError> {
        let mut answers: Vec<Option<Labels>> = vec![None; objects.len()];
        let mut claimed: Vec<(usize, ObjectId)> = Vec::new();
        let mut deferred: Vec<(usize, ObjectId)> = Vec::new();
        {
            let mut state = self.shared.lock();
            let state = &mut *state;
            for (i, o) in objects.iter().enumerate() {
                if let Some(l) = state.label_cache.get(o) {
                    state.hits += 1;
                    answers[i] = Some(*l);
                } else if state.label_in_flight.contains(o) || claimed.iter().any(|(_, c)| c == o) {
                    deferred.push((i, *o));
                } else {
                    state.label_in_flight.insert(*o);
                    state.misses += 1;
                    claimed.push((i, *o));
                }
            }
        }
        if !claimed.is_empty() {
            let mut guard = FlightGuard {
                memo: &self.shared,
                set_key: None,
                label_keys: claimed.iter().map(|(_, o)| *o).collect(),
            };
            let fresh_ids: Vec<ObjectId> = claimed.iter().map(|(_, o)| *o).collect();
            // On Err the guard's Drop releases every claimed key and wakes
            // the waiters, who then re-claim those objects themselves.
            let fresh = self.inner.try_answer_point_labels_batch(&fresh_ids)?;
            let mut state = self.shared.lock();
            for ((i, o), l) in claimed.into_iter().zip(fresh) {
                state.label_in_flight.remove(&o);
                state.label_cache.insert(o, l);
                answers[i] = Some(l);
            }
            drop(state);
            guard.disarm();
            self.shared.ready.notify_all();
        }
        // Objects someone else had in flight: the single path waits for the
        // committed answer (or re-claims it if that flight failed).
        for (i, o) in deferred {
            answers[i] = Some(self.try_answer_point_labels(o)?);
        }
        Ok(answers.into_iter().map(|l| l.expect("filled")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GroundTruth, PerfectSource, VecGroundTruth};
    use crate::group_coverage::{group_coverage, DncConfig};
    use crate::pattern::Pattern;

    fn truth(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    #[test]
    fn repeated_set_queries_hit_cache() {
        let t = truth(100, 10);
        let mut src = MemoizedSource::new(PerfectSource::new(&t));
        let ids = t.all_ids();
        let target = Target::group(Pattern::parse("1").unwrap());
        let a = src.try_answer_set(&ids[..50], &target).unwrap();
        let b = src.try_answer_set(&ids[..50], &target).unwrap();
        assert_eq!(a, b);
        assert_eq!(src.cache_hits(), 1);
        assert_eq!(src.cache_misses(), 1);
        // Different range or different target: miss.
        src.try_answer_set(&ids[50..], &target).unwrap();
        src.try_answer_set(&ids[..50], &target.negated()).unwrap();
        assert_eq!(src.cache_misses(), 3);
    }

    #[test]
    fn labels_cached_across_membership_questions() {
        let t = truth(10, 5);
        let mut src = MemoizedSource::new(PerfectSource::new(&t));
        let female = Target::group(Pattern::parse("1").unwrap());
        let male = female.negated();
        assert!(src.try_answer_membership(ObjectId(0), &female).unwrap());
        // The second question about the same object is free.
        assert!(!src.try_answer_membership(ObjectId(0), &male).unwrap());
        assert_eq!(src.cache_hits(), 1);
        assert_eq!(src.cache_misses(), 1);
    }

    /// Running the identical Group-Coverage twice: the second run is fully
    /// answered from cache — quantifying what a requester saves by storing
    /// crowd answers.
    #[test]
    fn memoization_savings() {
        let t = truth(2000, 30);
        let target = Target::group(Pattern::parse("1").unwrap());
        let mut engine = Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&t)), 50);
        let pool = t.all_ids();
        let first =
            group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        let after_first = engine.source().cache_misses();
        let second =
            group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        assert_eq!(first.covered, second.covered);
        assert_eq!(first.count, second.count);
        assert_eq!(
            engine.source().cache_misses(),
            after_first,
            "the repeat run must not reach the crowd at all"
        );
        assert!(engine.source().cache_hits() >= after_first);
    }

    #[test]
    fn shared_cache_spans_clones() {
        let t = truth(100, 10);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedMemoizedSource::new(PerfectSource::new(&t));
        let mut a = root.clone();
        let mut b = root.clone();
        let first = a.try_answer_set(&ids[..50], &target).unwrap();
        let second = b.try_answer_set(&ids[..50], &target).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            root.cache_misses(),
            1,
            "clone b must reuse clone a's answer"
        );
        assert_eq!(root.cache_hits(), 1);
        a.try_answer_membership(ObjectId(3), &target).unwrap();
        b.try_answer_membership(ObjectId(3), &target.negated())
            .unwrap();
        assert_eq!(root.cache_misses(), 2);
        assert_eq!(root.cache_hits(), 2);
    }

    #[test]
    fn shared_batch_path_serves_known_labels_locally() {
        let t = truth(60, 20);
        let ids = t.all_ids();
        let mut src = SharedMemoizedSource::new(PerfectSource::new(&t));
        src.try_answer_point_labels(ObjectId(0)).unwrap();
        src.try_answer_point_labels(ObjectId(1)).unwrap();
        let batched = src.try_answer_point_labels_batch(&ids[..10]).unwrap();
        for (i, l) in batched.iter().enumerate() {
            assert_eq!(*l, t.labels_of(ids[i]));
        }
        // 2 singles + 8 fresh batch members missed; 2 batch members hit.
        assert_eq!(src.cache_misses(), 10);
        assert_eq!(src.cache_hits(), 2);
        // The whole batch is now cached.
        src.try_answer_point_labels_batch(&ids[..10]).unwrap();
        assert_eq!(src.cache_misses(), 10);
        assert_eq!(src.cache_hits(), 12);
    }

    #[test]
    fn shared_cache_is_thread_safe() {
        let t = truth(500, 50);
        let target = Target::group(Pattern::parse("1").unwrap());
        let pool = t.all_ids();
        let root = SharedMemoizedSource::new(PerfectSource::new(&t));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut handle = root.clone();
                let pool = &pool;
                let target = &target;
                scope.spawn(move || {
                    for chunk in pool.chunks(50) {
                        handle.try_answer_set(chunk, target).unwrap();
                    }
                    for id in &pool[..40] {
                        handle.try_answer_membership(*id, target).unwrap();
                    }
                });
            }
        });
        // 10 distinct set queries + 40 distinct labels: in-flight coalescing
        // guarantees each unique question reaches the source exactly once.
        assert_eq!(root.cache_misses(), 50);
        assert_eq!(root.cache_hits(), 4 * (10 + 40) - 50);
    }

    /// A source that (optionally after a delay) refuses every question.
    struct DownSource {
        delay_ms: u64,
    }

    impl AnswerSource for DownSource {
        fn try_answer_set(&mut self, _: &[ObjectId], _: &Target) -> Result<bool, AskError> {
            if self.delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
            }
            Err(AskError::SourceFailed("down".into()))
        }

        fn try_answer_point_labels(&mut self, _: ObjectId) -> Result<Labels, AskError> {
            if self.delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
            }
            Err(AskError::SourceFailed("down".into()))
        }
    }

    impl BatchAnswerSource for DownSource {}

    /// One handle's failure releases the in-flight claim: the next asker
    /// re-claims the question and gets a real answer — failures are never
    /// cached and never poison the shared state.
    #[test]
    fn failed_claim_releases_question_for_others() {
        let t = truth(20, 5);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedMemoizedSource::new(PerfectSource::new(&t));
        let mut broken = root.with_inner(DownSource { delay_ms: 0 });
        let mut healthy = root.clone();

        assert!(matches!(
            broken.try_answer_set(&ids, &target),
            Err(AskError::SourceFailed(_))
        ));
        // The failure was not cached; the healthy handle pays and succeeds.
        assert_eq!(healthy.try_answer_set(&ids, &target), Ok(true));
        assert_eq!(root.cache_misses(), 2, "failed ask re-claimed, not cached");

        // Same for the batch path: a failed batch releases every claim.
        assert!(broken.try_answer_point_labels_batch(&ids[..6]).is_err());
        let labels = healthy.try_answer_point_labels_batch(&ids[..6]).unwrap();
        assert_eq!(labels.len(), 6);
    }

    /// A waiter coalesced behind a failing claim is woken, re-claims, and
    /// answers with its own (working) inner source instead of hanging or
    /// inheriting the error.
    #[test]
    fn waiter_survives_claimants_failure() {
        let t = truth(50, 10);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedMemoizedSource::new(PerfectSource::new(&t));
        let mut broken = root.with_inner(DownSource { delay_ms: 40 });
        let mut healthy = root.clone();

        std::thread::scope(|scope| {
            let claim_ids = ids.clone();
            let claim_target = target.clone();
            let claimer = scope.spawn(move || broken.try_answer_set(&claim_ids, &claim_target));
            // Give the broken handle time to claim, then pile up behind it.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let waited = healthy.try_answer_set(&ids, &target);
            assert_eq!(waited, Ok(true), "waiter must re-claim and succeed");
            assert!(claimer.join().unwrap().is_err());
        });
    }

    /// Memoized and raw sources agree on every answer.
    #[test]
    fn transparent_semantics() {
        let t = truth(500, 77);
        let target = Target::group(Pattern::parse("1").unwrap());
        let pool = t.all_ids();
        let mut raw = Engine::with_point_batch(PerfectSource::new(&t), 50);
        let mut memo = Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&t)), 50);
        let a = group_coverage(&mut raw, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        let b = group_coverage(&mut memo, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.count, b.count);
        assert_eq!(a.set_queries, b.set_queries);
    }
}
