//! Answer reuse: never pay for knowledge the platform already holds.
//!
//! §4 of the paper motivates its heuristics by noting that independent
//! Group-Coverage runs "miss the opportunity to reuse the information
//! collected during each run", and §7 names deeper reuse as an open
//! direction. This module implements that direction as an **object-level
//! fact base** shared across algorithms and across concurrent jobs:
//!
//! * [`KnowledgeStore`] — the fact base itself: per-object labels, per-target
//!   membership verdicts (learned from *no* set answers and *yes*
//!   singletons), and whole set-query verdicts. Facts only accumulate; the
//!   store never forgets.
//! * [`KnowledgeSource`] / [`SharedKnowledgeSource`] — [`AnswerSource`]
//!   wrappers that consult the store before every question. A set query is
//!   **decomposed**: any known member answers it `true` outright; if every
//!   object is a known non-member it is `false`; otherwise the query is
//!   **narrowed** to the residual unknown objects and only that residual is
//!   forwarded to the wrapped source. One job's point labels thereby shrink
//!   every other job's set queries — the platform-wide generalization of the
//!   paper's within-run label reuse.
//! * [`MemoizedSource`] — the historical exact-match cache, kept as the
//!   baseline the knowledge layer is tested against: reuse must never change
//!   a verdict, only reduce crowd spend (see the `reuse_equivalence`
//!   integration tests).
//!
//! ## Soundness
//!
//! Decomposition is exactly answer-preserving for **consistent** sources:
//! sources whose every answer derives from one fixed labeling of the
//! objects. [`PerfectSource`](crate::engine::PerfectSource) is consistent by
//! construction, and `crowd-sim`'s `MTurkSim` in its `PerQuestion` seed mode
//! answers from one latent (noisy but fixed) crowd labeling for the same
//! reason. For such sources a narrowed query returns exactly what the full
//! query would have — the pruned objects are non-members under the source's
//! own labeling — so audit verdicts are byte-identical to an exact-match
//! cache run while strictly fewer questions reach the crowd.
//!
//! ## Metering
//!
//! Reuse sits *below* the [`Engine`](crate::engine::Engine): the engine's
//! [`TaskLedger`](crate::ledger::TaskLedger) still meters every *logical*
//! question an algorithm asked (so reports and outcomes are unchanged by
//! reuse), while budget governors wrapped *inside* the knowledge layer are
//! charged only for the residual questions that actually reach the crowd.
//! [`ReuseStats`] counts how questions were disposed of — answered from
//! facts, narrowed, or forwarded untouched.

use crate::engine::{AnswerSource, BatchAnswerSource, ForkableSource, ObjectId};
use crate::error::AskError;
use crate::schema::Labels;
use crate::target::Target;
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// How a reuse layer disposed of the questions it saw.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseStats {
    /// Questions answered entirely from the store — an exact verdict, a
    /// known member/non-member fact, or a cached label. Free.
    pub hits: u64,
    /// Set queries forwarded with a *smaller* object set than asked.
    pub narrowed: u64,
    /// Questions that reached the wrapped source (narrowed ones included).
    pub forwarded: u64,
    /// Objects pruned from narrowed set queries, summed over all of them.
    pub objects_pruned: u64,
}

impl ReuseStats {
    /// Total questions the layer has seen.
    pub fn questions(&self) -> u64 {
        self.hits + self.forwarded
    }

    /// Adds another tally into this one (e.g. folding a forked handle's
    /// local stats back into its parent when an intra-audit parallel scan
    /// joins).
    pub fn absorb(&mut self, other: &ReuseStats) {
        self.hits += other.hits;
        self.narrowed += other.narrowed;
        self.forwarded += other.forwarded;
        self.objects_pruned += other.objects_pruned;
    }
}

/// What the store can say about a set query before any crowd contact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetResolution {
    /// The verdict is already implied by known facts.
    Known(bool),
    /// The query must be asked, but only for the residual unknown objects.
    Ask {
        /// The objects whose membership is still unknown (in query order).
        residual: Vec<ObjectId>,
        /// How many objects were pruned as known non-members.
        pruned: usize,
    },
}

/// An object-level fact base of crowd answers.
///
/// Three kinds of facts accumulate:
///
/// * **labels** — full attribute vectors from point queries; a label decides
///   membership in *every* target, so it narrows any future set query;
/// * **membership verdicts** per target — `false` set answers mark every
///   asked object a known non-member; `true` answers on singletons mark a
///   known member;
/// * **set verdicts** — whole `(objects, target) → bool` answers, kept so a
///   repeated query is free even when its objects are individually unknown.
///
/// The store is plain data (no interior mutability); see [`KnowledgeSource`]
/// for the single-owner wrapper and [`SharedKnowledgeSource`] for the
/// platform-wide, thread-safe one.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct KnowledgeStore {
    labels: HashMap<ObjectId, Labels>,
    members: HashMap<Target, HashSet<ObjectId>>,
    non_members: HashMap<Target, HashSet<ObjectId>>,
    // Nested per-target so the hot exact-verdict lookup borrows the query
    // slice instead of allocating a (Vec, Target) key — resolve_set runs
    // under the platform-wide lock in the shared source.
    set_verdicts: HashMap<Target, HashMap<Vec<ObjectId>, bool>>,
    stats: ReuseStats,
}

impl KnowledgeStore {
    /// An empty fact base.
    pub fn new() -> Self {
        Self::default()
    }

    /// The label of `object`, if a point query has answered it.
    pub fn label_of(&self, object: ObjectId) -> Option<Labels> {
        self.labels.get(&object).copied()
    }

    /// Is `object` known to belong to `target`?
    pub fn is_known_member(&self, object: ObjectId, target: &Target) -> bool {
        if let Some(labels) = self.labels.get(&object) {
            if target.matches(labels) {
                return true;
            }
        }
        self.members
            .get(target)
            .is_some_and(|s| s.contains(&object))
    }

    /// Is `object` known to *not* belong to `target`?
    pub fn is_known_non_member(&self, object: ObjectId, target: &Target) -> bool {
        if let Some(labels) = self.labels.get(&object) {
            if !target.matches(labels) {
                return true;
            }
        }
        self.non_members
            .get(target)
            .is_some_and(|s| s.contains(&object))
    }

    /// Resolves a set query against the facts: a known verdict, or the
    /// residual that still has to be asked. Does not update statistics —
    /// the wrapping source meters what it actually does with the result.
    pub fn resolve_set(&self, objects: &[ObjectId], target: &Target) -> SetResolution {
        // An exact repeat is free regardless of per-object knowledge
        // (allocation-free: the verdict map is keyed per target, then by
        // the borrowed object slice).
        if let Some(ans) = self.set_verdicts.get(target).and_then(|m| m.get(objects)) {
            return SetResolution::Known(*ans);
        }
        if objects.iter().any(|o| self.is_known_member(*o, target)) {
            return SetResolution::Known(true);
        }
        let residual: Vec<ObjectId> = objects
            .iter()
            .copied()
            .filter(|o| !self.is_known_non_member(*o, target))
            .collect();
        if residual.is_empty() {
            return SetResolution::Known(false);
        }
        let pruned = objects.len() - residual.len();
        SetResolution::Ask { residual, pruned }
    }

    /// Records a delivered set answer: the verdict is cached under the
    /// *original* query key, and the per-object consequences are absorbed —
    /// a `false` marks every asked residual object a non-member, a `true`
    /// on a singleton marks it a member.
    pub fn record_set_answer(
        &mut self,
        objects: &[ObjectId],
        residual: &[ObjectId],
        target: &Target,
        answer: bool,
    ) {
        self.set_verdicts
            .entry(target.clone())
            .or_default()
            .insert(objects.to_vec(), answer);
        if answer {
            if let [only] = residual {
                self.members
                    .entry(target.clone())
                    .or_default()
                    .insert(*only);
            }
        } else {
            self.non_members
                .entry(target.clone())
                .or_default()
                .extend(residual.iter().copied());
        }
    }

    /// Records a delivered point-query answer.
    pub fn record_labels(&mut self, object: ObjectId, labels: Labels) {
        self.labels.insert(object, labels);
    }

    /// Objects with a known full label vector.
    pub fn labels_known(&self) -> usize {
        self.labels.len()
    }

    /// Per-target membership facts held (members + non-members), counting
    /// only facts not already implied by a stored label.
    pub fn membership_facts(&self) -> usize {
        self.members.values().map(HashSet::len).sum::<usize>()
            + self.non_members.values().map(HashSet::len).sum::<usize>()
    }

    /// Whole set-query verdicts held.
    pub fn set_verdicts_known(&self) -> usize {
        self.set_verdicts.values().map(HashMap::len).sum()
    }

    /// The running reuse tally (updated by the wrapping sources).
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// True when the store holds no facts of any kind.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
            && self.members.is_empty()
            && self.non_members.is_empty()
            && self.set_verdicts.is_empty()
    }

    /// Total facts of all three kinds (labels + memberships + set
    /// verdicts) — the size a `/fleet/delta` receipt reports.
    pub fn fact_count(&self) -> usize {
        self.labels_known() + self.membership_facts() + self.set_verdicts_known()
    }

    /// Unions `other`'s facts into `self` — the fleet's anti-entropy
    /// merge. An already-held fact is never rewritten, so for stores
    /// drawn from the same ground truth the merge is **commutative**,
    /// **associative** and **idempotent** (the convergence invariant
    /// pinned by `tests/store_merge.rs`). [`ReuseStats`] are untouched:
    /// merging knowledge never rewrites who paid for it.
    pub fn merge(&mut self, other: &KnowledgeStore) {
        for (object, labels) in &other.labels {
            self.labels.entry(*object).or_insert(*labels);
        }
        for (target, objects) in &other.members {
            self.members
                .entry(target.clone())
                .or_default()
                .extend(objects.iter().copied());
        }
        for (target, objects) in &other.non_members {
            self.non_members
                .entry(target.clone())
                .or_default()
                .extend(objects.iter().copied());
        }
        for (target, verdicts) in &other.set_verdicts {
            let held = self.set_verdicts.entry(target.clone()).or_default();
            for (objects, answer) in verdicts {
                held.entry(objects.clone()).or_insert(*answer);
            }
        }
    }

    /// The facts `self` holds that `baseline` does not — what one
    /// anti-entropy round actually ships, so a steady-state fleet
    /// exchanges deltas, not whole stores. `merge(baseline, delta)`
    /// equals `merge(baseline, self)` by construction. The result
    /// carries default [`ReuseStats`] (a delta is knowledge in transit,
    /// not an accounting record).
    pub fn delta_since(&self, baseline: &KnowledgeStore) -> KnowledgeStore {
        let mut delta = KnowledgeStore::new();
        for (object, labels) in &self.labels {
            if !baseline.labels.contains_key(object) {
                delta.labels.insert(*object, *labels);
            }
        }
        for (target, objects) in &self.members {
            let held = baseline.members.get(target);
            let fresh: HashSet<ObjectId> = objects
                .iter()
                .copied()
                .filter(|o| !held.is_some_and(|h| h.contains(o)))
                .collect();
            if !fresh.is_empty() {
                delta.members.insert(target.clone(), fresh);
            }
        }
        for (target, objects) in &self.non_members {
            let held = baseline.non_members.get(target);
            let fresh: HashSet<ObjectId> = objects
                .iter()
                .copied()
                .filter(|o| !held.is_some_and(|h| h.contains(o)))
                .collect();
            if !fresh.is_empty() {
                delta.non_members.insert(target.clone(), fresh);
            }
        }
        for (target, verdicts) in &self.set_verdicts {
            let held = baseline.set_verdicts.get(target);
            let fresh: HashMap<Vec<ObjectId>, bool> = verdicts
                .iter()
                .filter(|(objects, _)| !held.is_some_and(|h| h.contains_key(*objects)))
                .map(|(objects, answer)| (objects.clone(), *answer))
                .collect();
            if !fresh.is_empty() {
                delta.set_verdicts.insert(target.clone(), fresh);
            }
        }
        delta
    }
}

/// A `Target → object set` map as a pair array with the set flattened to a
/// **sorted** id vector, so serialized stores are stable for a fixed fact
/// base regardless of hash-set iteration order.
fn object_sets_to_value(map: &HashMap<Target, HashSet<ObjectId>>) -> Value {
    Value::Array(
        map.iter()
            .map(|(target, objects)| {
                let mut sorted: Vec<ObjectId> = objects.iter().copied().collect();
                sorted.sort_unstable();
                Value::Array(vec![target.to_value(), sorted.to_value()])
            })
            .collect(),
    )
}

fn object_sets_from_value(
    value: &Value,
) -> Result<HashMap<Target, HashSet<ObjectId>>, serde::Error> {
    let pairs = Vec::<(Target, Vec<ObjectId>)>::from_value(value)?;
    Ok(pairs
        .into_iter()
        .map(|(target, objects)| (target, objects.into_iter().collect()))
        .collect())
}

/// The serialization surface of the persistence layer: snapshots, the
/// `/store/export` response body and the `/store/import` request body all
/// carry one `KnowledgeStore` in this shape. Hand-written because the
/// membership sets serialize through sorted vectors (the vendored serde has
/// no `HashSet` impl, and sorting keeps the output stable).
impl Serialize for KnowledgeStore {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("labels".into(), self.labels.to_value()),
            ("members".into(), object_sets_to_value(&self.members)),
            (
                "non_members".into(),
                object_sets_to_value(&self.non_members),
            ),
            ("set_verdicts".into(), self.set_verdicts.to_value()),
            ("stats".into(), self.stats.to_value()),
        ])
    }
}

impl Deserialize for KnowledgeStore {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(Self {
            labels: HashMap::from_value(value.get_field("labels")?)?,
            members: object_sets_from_value(value.get_field("members")?)?,
            non_members: object_sets_from_value(value.get_field("non_members")?)?,
            set_verdicts: HashMap::from_value(value.get_field("set_verdicts")?)?,
            stats: ReuseStats::from_value(value.get_field("stats")?)?,
        })
    }
}

/// An observer of **committed** facts, attached to a
/// [`SharedKnowledgeSource`] via [`SharedKnowledgeSource::set_fact_sink`].
///
/// The shared store invokes the sink once per freshly delivered crowd
/// answer — after the fact is visible in the store and after every stripe
/// lock is released, so a sink may block (e.g. on a WAL write) without
/// stalling readers. Facts arriving through
/// [`SharedKnowledgeSource::seed_store`] (recovery, import) are **not**
/// replayed into the sink: they are already durable wherever they came
/// from.
pub trait FactSink: Send + Sync + std::fmt::Debug {
    /// A point-query label was delivered and committed.
    fn on_labels(&self, object: ObjectId, labels: Labels);

    /// A set-query verdict was delivered and committed, together with the
    /// residual actually asked (whose per-object consequences were
    /// absorbed).
    fn on_set_verdict(
        &self,
        objects: &[ObjectId],
        residual: &[ObjectId],
        target: &Target,
        answer: bool,
    );
}

/// A disk home for **cold label facts**, attached via
/// [`SharedKnowledgeSource::set_fact_spill`].
///
/// When a fact shard outgrows its share of the configured high watermark,
/// its least-recently-touched labels are handed to [`FactSpill::spill`];
/// lookups that miss the in-memory shard consult [`FactSpill::recall`],
/// which removes the entry so the caller can re-promote it. Spill calls run
/// under the owning shard's lock, so a label is always in exactly one of
/// the two places — a spilled fact can never be missed and re-bought.
pub trait FactSpill: Send + Sync + std::fmt::Debug {
    /// Takes ownership of evicted cold labels.
    fn spill(&self, victims: Vec<(ObjectId, Labels)>);

    /// Looks up (and removes) a previously spilled label, if present.
    fn recall(&self, object: ObjectId) -> Option<Labels>;

    /// Every label currently spilled, for snapshots and exports.
    fn contents(&self) -> Vec<(ObjectId, Labels)>;
}

/// A spill implementation plus the per-shard eviction threshold derived
/// from the configured store-wide high watermark.
#[derive(Debug)]
struct SpillHook {
    spill: Arc<dyn FactSpill>,
    per_shard_high: usize,
}

/// A single-owner reuse wrapper: one engine, one store, no locking.
///
/// Consults a private [`KnowledgeStore`] before every question and absorbs
/// every delivered answer. For a consistent source (see the module docs)
/// the wrapped and unwrapped runs return identical answers; the wrapper only
/// reduces how many questions reach the source.
#[derive(Debug, Clone)]
pub struct KnowledgeSource<S> {
    inner: S,
    store: KnowledgeStore,
}

impl<S> KnowledgeSource<S> {
    /// Wraps a source with an empty fact base.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            store: KnowledgeStore::new(),
        }
    }

    /// Wraps a source with an existing fact base (e.g. carried over from a
    /// previous audit of the same dataset).
    pub fn with_store(inner: S, store: KnowledgeStore) -> Self {
        Self { inner, store }
    }

    /// Read access to the fact base.
    pub fn store(&self) -> &KnowledgeStore {
        &self.store
    }

    /// How questions were disposed of so far.
    pub fn reuse_stats(&self) -> ReuseStats {
        self.store.stats
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner source, discarding the facts.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: AnswerSource> AnswerSource for KnowledgeSource<S> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        match self.store.resolve_set(objects, target) {
            SetResolution::Known(ans) => {
                self.store.stats.hits += 1;
                Ok(ans)
            }
            SetResolution::Ask { residual, pruned } => {
                // Only delivered answers are recorded: a refused question
                // stays askable (e.g. once a budget is raised).
                let ans = self.inner.try_answer_set(&residual, target)?;
                self.store.stats.forwarded += 1;
                if pruned > 0 {
                    self.store.stats.narrowed += 1;
                    self.store.stats.objects_pruned += pruned as u64;
                }
                self.store
                    .record_set_answer(objects, &residual, target, ans);
                Ok(ans)
            }
        }
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        if let Some(labels) = self.store.label_of(object) {
            self.store.stats.hits += 1;
            return Ok(labels);
        }
        let labels = self.inner.try_answer_point_labels(object)?;
        self.store.stats.forwarded += 1;
        self.store.record_labels(object, labels);
        Ok(labels)
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        // Route through the label facts: a known label answers any
        // membership question about the object for free, and a fresh label
        // bought here narrows every future set query.
        let labels = self.try_answer_point_labels(object)?;
        Ok(target.matches(&labels))
    }
}

impl<S: BatchAnswerSource> BatchAnswerSource for KnowledgeSource<S> {
    fn try_answer_point_labels_batch(
        &mut self,
        objects: &[ObjectId],
    ) -> Result<Vec<Labels>, AskError> {
        let mut answers: Vec<Option<Labels>> = vec![None; objects.len()];
        let mut unknown: Vec<(usize, ObjectId)> = Vec::new();
        for (i, o) in objects.iter().enumerate() {
            if let Some(l) = self.store.label_of(*o) {
                self.store.stats.hits += 1;
                answers[i] = Some(l);
            } else if unknown.iter().any(|(_, u)| u == o) {
                // A duplicate inside one batch: filled from the first copy.
            } else {
                unknown.push((i, *o));
            }
        }
        if !unknown.is_empty() {
            let ids: Vec<ObjectId> = unknown.iter().map(|(_, o)| *o).collect();
            let fresh = self.inner.try_answer_point_labels_batch(&ids)?;
            self.store.stats.forwarded += ids.len() as u64;
            for ((i, o), l) in unknown.into_iter().zip(fresh) {
                self.store.record_labels(o, l);
                answers[i] = Some(l);
            }
        }
        Ok(answers
            .into_iter()
            .zip(objects)
            .map(|(l, o)| l.unwrap_or_else(|| self.store.label_of(*o).expect("duplicate filled")))
            .collect())
    }
}

/// A caching wrapper around an answer source — the **exact-match baseline**.
///
/// Caches set-query and point-query results keyed by the literal question
/// `(objects, target)` and answers repeats from the cache; it never
/// decomposes or narrows a query. [`KnowledgeSource`] strictly subsumes it;
/// this type is kept as the reference the knowledge layer is verified
/// against (reuse must change crowd spend, never verdicts) and as the
/// simplest possible answer cache for single-audit runs.
#[derive(Debug, Clone)]
pub struct MemoizedSource<S> {
    inner: S,
    set_cache: HashMap<(Vec<ObjectId>, Target), bool>,
    label_cache: HashMap<ObjectId, Labels>,
    hits: u64,
    misses: u64,
}

impl<S> MemoizedSource<S> {
    /// Wraps a source with empty caches.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            set_cache: HashMap::new(),
            label_cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Questions answered from cache.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Questions forwarded to the inner source.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: AnswerSource> AnswerSource for MemoizedSource<S> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        let key = (objects.to_vec(), target.clone());
        if let Some(ans) = self.set_cache.get(&key) {
            self.hits += 1;
            return Ok(*ans);
        }
        self.misses += 1;
        // Only delivered answers are cached: a refused question stays
        // askable (e.g. once a budget is raised).
        let ans = self.inner.try_answer_set(objects, target)?;
        self.set_cache.insert(key, ans);
        Ok(ans)
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        if let Some(l) = self.label_cache.get(&object) {
            self.hits += 1;
            return Ok(*l);
        }
        self.misses += 1;
        let l = self.inner.try_answer_point_labels(object)?;
        self.label_cache.insert(object, l);
        Ok(l)
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        // Route through the label cache: a cached label answers any
        // membership question about the object for free.
        let labels = self.try_answer_point_labels(object)?;
        Ok(target.matches(&labels))
    }
}

impl<S: AnswerSource> BatchAnswerSource for MemoizedSource<S> {}

/// How many lock stripes a [`SharedKnowledgeSource`] uses by default for
/// its object-keyed facts and its set-verdict/coalescing maps.
pub const DEFAULT_STORE_SHARDS: usize = 8;

/// A mutex + condvar pair guarding one stripe of shared state.
#[derive(Debug, Default)]
struct Stripe<T> {
    state: Mutex<T>,
    ready: Condvar,
}

impl<T> Stripe<T> {
    fn lock(&self) -> MutexGuard<'_, T> {
        // A genuinely panicking job (a bug) must not poison the
        // platform-wide store for every other job; expected failures
        // (budget, cancellation) travel as `Err` and never unwind here.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One shard of the object-keyed facts: labels and per-target membership
/// verdicts for the objects hashing here, plus the in-flight set for label
/// claims on those objects. The embedded [`KnowledgeStore`] uses only its
/// object-level maps (set verdicts live in the set stripes).
#[derive(Debug, Default)]
struct FactShardState {
    facts: KnowledgeStore,
    label_in_flight: HashSet<ObjectId>,
    /// Monotone per-shard clock driving the LRU spill policy: bumped on
    /// every label commit, re-promotion and point lookup.
    label_clock: u64,
    /// Last touch time per in-memory label (spilled labels have no entry).
    label_touch: HashMap<ObjectId, u64>,
}

impl FactShardState {
    /// Marks `object`'s label as freshly used for the LRU spill policy.
    fn touch(&mut self, object: ObjectId) {
        self.label_clock += 1;
        let now = self.label_clock;
        self.label_touch.insert(object, now);
    }
}

/// One stripe of the whole-query state: exact `(objects, target)` verdicts
/// and the in-flight set coalescing concurrent identical set queries.
#[derive(Debug, Default)]
struct SetStripeState {
    verdicts: HashMap<Target, HashMap<Vec<ObjectId>, bool>>,
    in_flight: HashSet<(Vec<ObjectId>, Target)>,
}

impl SetStripeState {
    fn verdict(&self, objects: &[ObjectId], target: &Target) -> Option<bool> {
        self.verdicts
            .get(target)
            .and_then(|m| m.get(objects))
            .copied()
    }
}

/// The platform-wide reuse tally, updated lock-free so no stripe becomes a
/// metering bottleneck. Counters are monotone; `snapshot` is exact once the
/// handles reading it have quiesced (which is when reports read it).
#[derive(Debug, Default)]
struct SharedStats {
    hits: AtomicU64,
    narrowed: AtomicU64,
    forwarded: AtomicU64,
    objects_pruned: AtomicU64,
}

impl SharedStats {
    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn record_forwarded(&self, count: u64, pruned: u64) {
        self.forwarded.fetch_add(count, Ordering::Relaxed);
        if pruned > 0 {
            self.narrowed.fetch_add(1, Ordering::Relaxed);
            self.objects_pruned.fetch_add(pruned, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> ReuseStats {
        ReuseStats {
            hits: self.hits.load(Ordering::Relaxed),
            narrowed: self.narrowed.load(Ordering::Relaxed),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            objects_pruned: self.objects_pruned.load(Ordering::Relaxed),
        }
    }
}

/// The sharded platform-wide knowledge state behind every
/// [`SharedKnowledgeSource`] handle: object facts striped by `ObjectId`,
/// whole-query verdicts and in-flight coalescing striped by query hash,
/// and one atomic stats tally. No operation ever holds two stripe locks at
/// once (per-object scans take shard locks one at a time), so there is no
/// lock ordering to get wrong and no global serialization point.
#[derive(Debug)]
struct ShardedKnowledge {
    fact_shards: Vec<Stripe<FactShardState>>,
    set_stripes: Vec<Stripe<SetStripeState>>,
    stats: SharedStats,
    /// Observer of committed facts (WAL append), set at most once.
    sink: OnceLock<Arc<dyn FactSink>>,
    /// Disk home for cold labels, set at most once.
    spill: OnceLock<SpillHook>,
}

impl ShardedKnowledge {
    fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self {
            fact_shards: (0..shards).map(|_| Stripe::default()).collect(),
            set_stripes: (0..shards).map(|_| Stripe::default()).collect(),
            stats: SharedStats::default(),
            sink: OnceLock::new(),
            spill: OnceLock::new(),
        }
    }

    /// Consults the spill for `object` and, on a find, re-promotes the
    /// label into the in-memory shard. Runs under the shard lock so the
    /// label is in exactly one place at every instant.
    fn recall_spilled(&self, state: &mut FactShardState, object: ObjectId) -> Option<Labels> {
        let hook = self.spill.get()?;
        let labels = hook.spill.recall(object)?;
        state.facts.labels.insert(object, labels);
        state.touch(object);
        Some(labels)
    }

    /// Evicts the coldest labels of one shard to the spill once the shard
    /// outgrows its share of the high watermark. Called after label
    /// commits, under the shard lock.
    fn enforce_watermark(&self, state: &mut FactShardState) {
        let Some(hook) = self.spill.get() else {
            return;
        };
        if state.facts.labels.len() <= hook.per_shard_high {
            return;
        }
        let mut by_age: Vec<(u64, ObjectId)> = state
            .facts
            .labels
            .keys()
            .map(|o| (state.label_touch.get(o).copied().unwrap_or(0), *o))
            .collect();
        by_age.sort_unstable();
        let excess = state.facts.labels.len() - hook.per_shard_high;
        let victims: Vec<(ObjectId, Labels)> = by_age[..excess]
            .iter()
            .map(|(_, object)| {
                state.label_touch.remove(object);
                let labels = state
                    .facts
                    .labels
                    .remove(object)
                    .expect("victim key came from the label map");
                (*object, labels)
            })
            .collect();
        hook.spill.spill(victims);
    }

    fn fact_shard(&self, object: ObjectId) -> &Stripe<FactShardState> {
        &self.fact_shards[object.index() % self.fact_shards.len()]
    }

    fn set_stripe(&self, objects: &[ObjectId], target: &Target) -> &Stripe<SetStripeState> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        objects.hash(&mut hasher);
        target.hash(&mut hasher);
        &self.set_stripes[(hasher.finish() as usize) % self.set_stripes.len()]
    }

    /// Resolves a set query against the *object-level* facts (the exact
    /// whole-query verdict is checked separately against its set stripe).
    /// Scans shard by shard, taking one shard lock at a time; facts only
    /// accumulate, so the non-atomic scan can only under-report knowledge —
    /// never invent any — and a consistent source answers the (possibly
    /// slightly stale) residual exactly like the full query.
    fn resolve_objects(&self, objects: &[ObjectId], target: &Target) -> SetResolution {
        let shards = self.fact_shards.len();
        let mut non_member = vec![false; objects.len()];
        for (shard_index, shard) in self.fact_shards.iter().enumerate() {
            if objects.iter().all(|o| o.index() % shards != shard_index) {
                continue;
            }
            let mut state = shard.lock();
            for (slot, object) in objects.iter().enumerate() {
                if object.index() % shards != shard_index {
                    continue;
                }
                // A spilled label is still paid-for knowledge: recall it so
                // narrowing never regresses when the store spills to disk.
                if state.facts.label_of(*object).is_none() {
                    self.recall_spilled(&mut state, *object);
                }
                if state.facts.is_known_member(*object, target) {
                    return SetResolution::Known(true);
                }
                if state.facts.is_known_non_member(*object, target) {
                    non_member[slot] = true;
                }
            }
        }
        let residual: Vec<ObjectId> = objects
            .iter()
            .zip(&non_member)
            .filter(|(_, pruned)| !**pruned)
            .map(|(o, _)| *o)
            .collect();
        if residual.is_empty() {
            return SetResolution::Known(false);
        }
        let pruned = objects.len() - residual.len();
        SetResolution::Ask { residual, pruned }
    }

    /// Absorbs the per-object consequences of a delivered set answer into
    /// the fact shards (the whole-query verdict is recorded by the caller
    /// under its set stripe): `false` marks every residual object a
    /// non-member, `true` on a singleton residual marks it a member.
    fn absorb_set_consequences(&self, residual: &[ObjectId], target: &Target, answer: bool) {
        if answer {
            if let [only] = residual {
                let mut state = self.fact_shard(*only).lock();
                state
                    .facts
                    .members
                    .entry(target.clone())
                    .or_default()
                    .insert(*only);
            }
            return;
        }
        let shards = self.fact_shards.len();
        for (shard_index, shard) in self.fact_shards.iter().enumerate() {
            let mut pending = residual
                .iter()
                .filter(|o| o.index() % shards == shard_index)
                .peekable();
            if pending.peek().is_none() {
                continue;
            }
            let mut state = shard.lock();
            state
                .facts
                .non_members
                .entry(target.clone())
                .or_default()
                .extend(pending);
        }
    }

    /// Merges every shard and stripe into one plain [`KnowledgeStore`].
    fn snapshot(&self) -> KnowledgeStore {
        let mut store = KnowledgeStore::new();
        for shard in &self.fact_shards {
            let state = shard.lock();
            store.labels.extend(&state.facts.labels);
            for (target, members) in &state.facts.members {
                store
                    .members
                    .entry(target.clone())
                    .or_default()
                    .extend(members);
            }
            for (target, non_members) in &state.facts.non_members {
                store
                    .non_members
                    .entry(target.clone())
                    .or_default()
                    .extend(non_members);
            }
        }
        for stripe in &self.set_stripes {
            let state = stripe.lock();
            for (target, verdicts) in &state.verdicts {
                store
                    .set_verdicts
                    .entry(target.clone())
                    .or_default()
                    .extend(verdicts.iter().map(|(k, v)| (k.clone(), *v)));
            }
        }
        // Spilled cold labels are part of the fact base: snapshots (and
        // therefore exports and persistence) must never lose them.
        if let Some(hook) = self.spill.get() {
            for (object, labels) in hook.spill.contents() {
                store.labels.entry(object).or_insert(labels);
            }
        }
        store.stats = self.stats.snapshot();
        store
    }
}

/// Removes a claimed set-query key and wakes its stripe if the claiming
/// handle exits without committing an answer — an `Err` from the inner
/// source or a genuine panic; a waiter then re-claims the question instead
/// of blocking forever.
struct SetFlightGuard<'a> {
    stripe: &'a Stripe<SetStripeState>,
    key: Option<(Vec<ObjectId>, Target)>,
}

impl SetFlightGuard<'_> {
    fn disarm(&mut self) {
        self.key = None;
    }
}

impl Drop for SetFlightGuard<'_> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut state = self.stripe.lock();
            state.in_flight.remove(&key);
            drop(state);
            self.stripe.ready.notify_all();
        }
    }
}

/// The label-claim analogue of [`SetFlightGuard`]: releases every claimed
/// object in its own fact shard and wakes that shard's waiters.
struct LabelFlightGuard<'a> {
    shared: &'a ShardedKnowledge,
    keys: Vec<ObjectId>,
}

impl LabelFlightGuard<'_> {
    fn disarm(&mut self) {
        self.keys.clear();
    }
}

impl Drop for LabelFlightGuard<'_> {
    fn drop(&mut self) {
        for key in self.keys.drain(..) {
            let shard = self.shared.fact_shard(key);
            let mut state = shard.lock();
            state.label_in_flight.remove(&key);
            drop(state);
            shard.ready.notify_all();
        }
    }
}

/// The thread-safe, platform-wide knowledge layer: every clone consults and
/// fills one shared, **sharded** fact base.
///
/// Each clone carries its **own** inner source (so per-handle state such as
/// a dispatcher connection stays private) but all clones share one fact
/// base. This is the reuse layer the `coverage-service` crate threads
/// through concurrent audit jobs: once any job has paid for a label or a
/// set verdict, it answers or narrows every other job's questions for free.
///
/// ## Sharding
///
/// The shared state is **lock-striped** ([`SharedKnowledgeSource::with_shards`],
/// default [`DEFAULT_STORE_SHARDS`]): object-level facts (labels, per-target
/// membership verdicts) and label coalescing live in shards keyed by
/// `ObjectId`; whole-query set verdicts and set-query coalescing live in a
/// separate stripe map keyed by the query hash; the [`ReuseStats`] tally is
/// atomic. Handles touching different objects or different queries
/// therefore never contend on a lock, where the former design funneled
/// every question of every worker through one global mutex. Facts only
/// accumulate, so cross-shard scans need no global lock to stay sound, and
/// the shard count never changes any answer — for a single-threaded run it
/// does not even change the metered [`ReuseStats`].
///
/// Concurrent misses on the same question are still **coalesced**: the
/// first asker claims it in its stripe and forwards the residual to its
/// inner source (no lock held across that call); every other asker waits on
/// that stripe's condvar and re-resolves against the committed facts. If
/// the claiming handle *fails* — its budget refuses the question, its job
/// is cancelled, its connection drops — the failure stays its own: waiters
/// are woken, re-claim the question and pay for it with their own budget
/// instead of inheriting the error or blocking forever.
#[derive(Debug)]
pub struct SharedKnowledgeSource<S> {
    inner: S,
    local: ReuseStats,
    shared: Arc<ShardedKnowledge>,
}

impl<S: Clone> Clone for SharedKnowledgeSource<S> {
    /// The clone shares the fact base but starts a fresh per-handle tally.
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            local: ReuseStats::default(),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<S> SharedKnowledgeSource<S> {
    /// Wraps a source with a fresh shared store striped over
    /// [`DEFAULT_STORE_SHARDS`] locks.
    pub fn new(inner: S) -> Self {
        Self::with_shards(inner, DEFAULT_STORE_SHARDS)
    }

    /// Wraps a source with a fresh shared store striped over `shards`
    /// locks (facts by object, set verdicts by query hash). One shard
    /// reproduces the former single-mutex behaviour; more shards reduce
    /// contention under concurrent workers without changing any answer.
    ///
    /// # Panics
    /// Panics when `shards == 0`.
    pub fn with_shards(inner: S, shards: usize) -> Self {
        Self {
            inner,
            local: ReuseStats::default(),
            shared: Arc::new(ShardedKnowledge::new(shards)),
        }
    }

    /// How many lock stripes the shared store uses.
    pub fn shard_count(&self) -> usize {
        self.shared.fact_shards.len()
    }

    /// A handle over the **same** shared store but a different inner source
    /// — how a serving layer gives each tenant its own connection while all
    /// tenants share one fact base. The new handle's local tally starts at
    /// zero.
    pub fn with_inner<T>(&self, inner: T) -> SharedKnowledgeSource<T> {
        SharedKnowledgeSource {
            inner,
            local: ReuseStats::default(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The shared store's reuse tally across all handles.
    pub fn reuse_stats(&self) -> ReuseStats {
        self.shared.stats.snapshot()
    }

    /// This handle's own reuse tally (since creation).
    pub fn local_reuse_stats(&self) -> ReuseStats {
        self.local
    }

    /// A snapshot of the shared fact base, merged across every shard
    /// (spilled cold labels included).
    pub fn store_snapshot(&self) -> KnowledgeStore {
        self.shared.snapshot()
    }

    /// Attaches an observer of committed facts (e.g. a write-ahead log).
    /// The sink fires once per freshly delivered crowd answer, outside all
    /// stripe locks; seeded facts are never replayed into it.
    ///
    /// # Panics
    /// Panics when a sink is already attached.
    pub fn set_fact_sink(&self, sink: Arc<dyn FactSink>) {
        self.shared
            .sink
            .set(sink)
            .expect("fact sink already attached");
    }

    /// Attaches a disk home for cold labels and arms LRU eviction: once the
    /// in-memory label count passes `high_watermark` (split evenly across
    /// shards), the least-recently-touched labels move to `spill` and are
    /// re-promoted on their next touch. Spilling never changes an answer
    /// and never increases crowd spend — a spilled label still answers and
    /// narrows queries, at the price of a disk read.
    ///
    /// # Panics
    /// Panics when `high_watermark == 0` or a spill is already attached.
    pub fn set_fact_spill(&self, spill: Arc<dyn FactSpill>, high_watermark: usize) {
        assert!(high_watermark > 0, "spill watermark must be positive");
        let per_shard_high = high_watermark
            .div_ceil(self.shared.fact_shards.len())
            .max(1);
        self.shared
            .spill
            .set(SpillHook {
                spill,
                per_shard_high,
            })
            .expect("fact spill already attached");
    }

    /// Seeds the shared store with recovered or imported facts. Seeded
    /// facts behave exactly like facts bought in this lifetime — they
    /// answer and narrow queries — but bypass both the [`ReuseStats`]
    /// tally and any attached [`FactSink`] (they are already durable
    /// wherever they came from). The seed's own `stats` field is ignored.
    pub fn seed_store(&self, store: &KnowledgeStore) {
        for (object, labels) in &store.labels {
            let mut state = self.shared.fact_shard(*object).lock();
            state.facts.labels.insert(*object, *labels);
        }
        for (map, pick) in [(&store.members, true), (&store.non_members, false)] {
            for (target, objects) in map {
                for object in objects {
                    let mut state = self.shared.fact_shard(*object).lock();
                    let sets = if pick {
                        &mut state.facts.members
                    } else {
                        &mut state.facts.non_members
                    };
                    sets.entry(target.clone()).or_default().insert(*object);
                }
            }
        }
        for (target, verdicts) in &store.set_verdicts {
            for (objects, answer) in verdicts {
                let stripe = self.shared.set_stripe(objects, target);
                let mut state = stripe.lock();
                state
                    .verdicts
                    .entry(target.clone())
                    .or_default()
                    .insert(objects.clone(), *answer);
            }
        }
        // A seed can land an over-watermark label population in one go.
        self.enforce_spill_watermark();
    }

    /// Applies the attached spill's high watermark to every shard at once
    /// (no-op without a spill). Called automatically after seeding.
    pub fn enforce_spill_watermark(&self) {
        for shard in &self.shared.fact_shards {
            let mut state = shard.lock();
            self.shared.enforce_watermark(&mut state);
        }
    }

    /// Questions answered from shared knowledge (including coalesced waits
    /// on another handle's in-flight question), across all handles.
    pub fn cache_hits(&self) -> u64 {
        self.reuse_stats().hits
    }

    /// Questions forwarded to an inner source, across all handles.
    pub fn cache_misses(&self) -> u64 {
        self.reuse_stats().forwarded
    }

    /// This handle's inner source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps this handle into its inner source (the store lives on in
    /// other handles).
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn record_hit(&mut self) {
        self.shared.stats.record_hit();
        self.local.hits += 1;
    }

    fn record_hits(&mut self, count: u64) {
        self.shared.stats.hits.fetch_add(count, Ordering::Relaxed);
        self.local.hits += count;
    }

    fn record_forwarded(&mut self, count: u64, pruned: u64) {
        self.shared.stats.record_forwarded(count, pruned);
        self.local.forwarded += count;
        if pruned > 0 {
            self.local.narrowed += 1;
            self.local.objects_pruned += pruned;
        }
    }
}

/// Intra-audit parallel scans fork a handle per worker (sharing the fact
/// base) and fold each worker's local tally back in at the join, so
/// per-job reuse accounting stays complete.
impl<S: AnswerSource + Clone + Send> ForkableSource for SharedKnowledgeSource<S> {
    fn fork(&self) -> Self {
        self.clone()
    }

    fn join(&mut self, forked: Self) {
        self.local.absorb(&forked.local);
    }
}

impl<S: AnswerSource> AnswerSource for SharedKnowledgeSource<S> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        let shared = Arc::clone(&self.shared);
        let stripe = shared.set_stripe(objects, target);
        let key = (objects.to_vec(), target.clone());
        let (residual, pruned) = loop {
            // Exact whole-query verdict first (one stripe lock)...
            {
                let state = stripe.lock();
                if let Some(ans) = state.verdict(objects, target) {
                    self.record_hit();
                    return Ok(ans);
                }
            }
            // ...then the object-level facts (shard locks, one at a time).
            let resolution = shared.resolve_objects(objects, target);
            match resolution {
                SetResolution::Known(ans) => {
                    self.record_hit();
                    return Ok(ans);
                }
                SetResolution::Ask { residual, pruned } => {
                    let mut state = stripe.lock();
                    // A verdict may have been committed between the fact
                    // scan and this claim; re-check before claiming.
                    if let Some(ans) = state.verdict(objects, target) {
                        self.record_hit();
                        return Ok(ans);
                    }
                    if !state.in_flight.contains(&key) {
                        // Claim the question; the residual is frozen at
                        // claim time (facts arriving mid-flight cannot
                        // change a consistent source's answer).
                        state.in_flight.insert(key.clone());
                        break (residual, pruned);
                    }
                    // Coalesce behind the claimer, then re-resolve from
                    // scratch against whatever it committed.
                    drop(
                        stripe
                            .ready
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner),
                    );
                }
            }
        };
        let mut guard = SetFlightGuard {
            stripe,
            key: Some(key.clone()),
        };
        let result = self.inner.try_answer_set(&residual, target);
        let mut state = stripe.lock();
        state.in_flight.remove(&key);
        if let Ok(ans) = &result {
            // Failed questions are not recorded: a coalesced waiter wakes,
            // re-claims the question and pays for it itself — one handle's
            // budget abort must not poison another handle's identical ask.
            state
                .verdicts
                .entry(target.clone())
                .or_default()
                .insert(key.0.clone(), *ans);
        }
        drop(state);
        guard.disarm();
        stripe.ready.notify_all();
        if let Ok(ans) = &result {
            shared.absorb_set_consequences(&residual, target, *ans);
            self.record_forwarded(1, pruned as u64);
            if let Some(sink) = shared.sink.get() {
                sink.on_set_verdict(objects, &residual, target, *ans);
            }
        }
        result
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        let shared = Arc::clone(&self.shared);
        let shard = shared.fact_shard(object);
        let mut state = shard.lock();
        loop {
            if let Some(l) = state.facts.label_of(object) {
                state.touch(object);
                drop(state);
                self.record_hit();
                return Ok(l);
            }
            if let Some(l) = shared.recall_spilled(&mut state, object) {
                drop(state);
                self.record_hit();
                return Ok(l);
            }
            if !state.label_in_flight.contains(&object) {
                state.label_in_flight.insert(object);
                break;
            }
            state = shard
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(state);
        let mut guard = LabelFlightGuard {
            shared: &shared,
            keys: vec![object],
        };
        let result = self.inner.try_answer_point_labels(object);
        let mut state = shard.lock();
        state.label_in_flight.remove(&object);
        if let Ok(l) = &result {
            state.facts.record_labels(object, *l);
            state.touch(object);
            shared.enforce_watermark(&mut state);
        }
        drop(state);
        guard.disarm();
        shard.ready.notify_all();
        if let Ok(l) = &result {
            self.record_forwarded(1, 0);
            if let Some(sink) = shared.sink.get() {
                sink.on_labels(object, *l);
            }
        }
        result
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        // Route through the label facts, as in [`KnowledgeSource`].
        let labels = self.try_answer_point_labels(object)?;
        Ok(target.matches(&labels))
    }
}

impl<S: BatchAnswerSource> BatchAnswerSource for SharedKnowledgeSource<S> {
    /// Serves known labels locally, forwards the unclaimed unknowns to the
    /// inner batch path in one coalesced request, and waits out objects
    /// another handle already has in flight. On `Err` every claimed object
    /// is released (and waiters woken) without recording anything.
    ///
    /// Classification walks the batch in input order, taking each object's
    /// shard lock as it goes, so the forwarded id order — and therefore the
    /// inner source's view of the batch — is identical to the single-mutex
    /// design whatever the shard count.
    fn try_answer_point_labels_batch(
        &mut self,
        objects: &[ObjectId],
    ) -> Result<Vec<Labels>, AskError> {
        let shared = Arc::clone(&self.shared);
        let mut answers: Vec<Option<Labels>> = vec![None; objects.len()];
        let mut claimed: Vec<(usize, ObjectId)> = Vec::new();
        let mut deferred: Vec<(usize, ObjectId)> = Vec::new();
        let mut hits = 0u64;
        for (i, o) in objects.iter().enumerate() {
            let mut state = shared.fact_shard(*o).lock();
            if let Some(l) = state.facts.label_of(*o) {
                state.touch(*o);
                hits += 1;
                answers[i] = Some(l);
            } else if let Some(l) = shared.recall_spilled(&mut state, *o) {
                hits += 1;
                answers[i] = Some(l);
            } else if state.label_in_flight.contains(o) || claimed.iter().any(|(_, c)| c == o) {
                deferred.push((i, *o));
            } else {
                state.label_in_flight.insert(*o);
                claimed.push((i, *o));
            }
        }
        self.record_hits(hits);
        if !claimed.is_empty() {
            let mut guard = LabelFlightGuard {
                shared: &shared,
                keys: claimed.iter().map(|(_, o)| *o).collect(),
            };
            let fresh_ids: Vec<ObjectId> = claimed.iter().map(|(_, o)| *o).collect();
            // On Err the guard's Drop releases every claimed key and wakes
            // the waiters, who then re-claim those objects themselves.
            let fresh = self.inner.try_answer_point_labels_batch(&fresh_ids)?;
            let mut committed: Vec<(ObjectId, Labels)> = Vec::with_capacity(fresh.len());
            for ((i, o), l) in claimed.into_iter().zip(fresh) {
                let shard = shared.fact_shard(o);
                let mut state = shard.lock();
                state.label_in_flight.remove(&o);
                state.facts.record_labels(o, l);
                state.touch(o);
                shared.enforce_watermark(&mut state);
                drop(state);
                shard.ready.notify_all();
                answers[i] = Some(l);
                committed.push((o, l));
            }
            guard.disarm();
            self.record_forwarded(fresh_ids.len() as u64, 0);
            if let Some(sink) = shared.sink.get() {
                for (o, l) in committed {
                    sink.on_labels(o, l);
                }
            }
        }
        // Objects someone else had in flight: the single path waits for the
        // committed answer (or re-claims it if that flight failed).
        for (i, o) in deferred {
            answers[i] = Some(self.try_answer_point_labels(o)?);
        }
        Ok(answers.into_iter().map(|l| l.expect("filled")).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GroundTruth, PerfectSource, VecGroundTruth};
    use crate::group_coverage::{group_coverage, DncConfig};
    use crate::pattern::Pattern;

    fn truth(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    /// A source that records the object set of every set query it serves.
    #[derive(Debug, Clone)]
    struct SpySource<'a> {
        inner: PerfectSource<'a, VecGroundTruth>,
        asked_sets: Vec<Vec<ObjectId>>,
    }

    impl<'a> SpySource<'a> {
        fn new(t: &'a VecGroundTruth) -> Self {
            Self {
                inner: PerfectSource::new(t),
                asked_sets: Vec::new(),
            }
        }
    }

    impl AnswerSource for SpySource<'_> {
        fn try_answer_set(
            &mut self,
            objects: &[ObjectId],
            target: &Target,
        ) -> Result<bool, AskError> {
            self.asked_sets.push(objects.to_vec());
            self.inner.try_answer_set(objects, target)
        }

        fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
            self.inner.try_answer_point_labels(object)
        }
    }

    impl BatchAnswerSource for SpySource<'_> {}

    #[test]
    fn repeated_set_queries_hit_cache() {
        let t = truth(100, 10);
        let mut src = MemoizedSource::new(PerfectSource::new(&t));
        let ids = t.all_ids();
        let target = Target::group(Pattern::parse("1").unwrap());
        let a = src.try_answer_set(&ids[..50], &target).unwrap();
        let b = src.try_answer_set(&ids[..50], &target).unwrap();
        assert_eq!(a, b);
        assert_eq!(src.cache_hits(), 1);
        assert_eq!(src.cache_misses(), 1);
        // Different range or different target: miss.
        src.try_answer_set(&ids[50..], &target).unwrap();
        src.try_answer_set(&ids[..50], &target.negated()).unwrap();
        assert_eq!(src.cache_misses(), 3);
    }

    #[test]
    fn labels_cached_across_membership_questions() {
        let t = truth(10, 5);
        let mut src = MemoizedSource::new(PerfectSource::new(&t));
        let female = Target::group(Pattern::parse("1").unwrap());
        let male = female.negated();
        assert!(src.try_answer_membership(ObjectId(0), &female).unwrap());
        // The second question about the same object is free.
        assert!(!src.try_answer_membership(ObjectId(0), &male).unwrap());
        assert_eq!(src.cache_hits(), 1);
        assert_eq!(src.cache_misses(), 1);
    }

    /// Running the identical Group-Coverage twice: the second run is fully
    /// answered from cache — quantifying what a requester saves by storing
    /// crowd answers.
    #[test]
    fn memoization_savings() {
        let t = truth(2000, 30);
        let target = Target::group(Pattern::parse("1").unwrap());
        let mut engine = Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&t)), 50);
        let pool = t.all_ids();
        let first =
            group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        let after_first = engine.source().cache_misses();
        let second =
            group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        assert_eq!(first.covered, second.covered);
        assert_eq!(first.count, second.count);
        assert_eq!(
            engine.source().cache_misses(),
            after_first,
            "the repeat run must not reach the crowd at all"
        );
        assert!(engine.source().cache_hits() >= after_first);
    }

    /// A known member answers any containing set query outright; known
    /// non-members narrow the query to the residual the source then sees.
    #[test]
    fn labels_decompose_set_queries() {
        let t = truth(20, 3); // members: 0, 1, 2
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let mut src = KnowledgeSource::new(SpySource::new(&t));

        // Learn two labels via point queries: one member, one non-member.
        assert!(src.try_answer_membership(ObjectId(0), &female).unwrap());
        assert!(!src.try_answer_membership(ObjectId(5), &female).unwrap());

        // A set containing the known member is free.
        assert!(src.try_answer_set(&ids[..10], &female).unwrap());
        assert!(src.inner().asked_sets.is_empty(), "no crowd contact");

        // A set containing only the known non-member is narrowed.
        assert!(!src.try_answer_set(&ids[4..8], &female).unwrap());
        assert_eq!(
            src.inner().asked_sets,
            vec![vec![ObjectId(4), ObjectId(6), ObjectId(7)]],
            "object 5 must be pruned from the forwarded query"
        );
        let stats = src.reuse_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.narrowed, 1);
        assert_eq!(stats.objects_pruned, 1);
    }

    /// A `false` set answer marks every asked object a non-member; a later
    /// query over a subset is answered without any crowd contact.
    #[test]
    fn negative_set_answers_become_object_facts() {
        let t = truth(20, 3);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let mut src = KnowledgeSource::new(SpySource::new(&t));

        assert!(!src.try_answer_set(&ids[10..20], &female).unwrap());
        assert_eq!(src.inner().asked_sets.len(), 1);

        // Any subset — or any overlapping set whose unknowns all fall in
        // the certified range — resolves from facts.
        assert!(!src.try_answer_set(&ids[12..17], &female).unwrap());
        assert_eq!(src.inner().asked_sets.len(), 1, "subset was free");

        // An overlapping query is narrowed to its genuinely unknown part.
        assert!(!src.try_answer_set(&ids[8..12], &female).unwrap());
        assert_eq!(
            src.inner().asked_sets[1],
            vec![ObjectId(8), ObjectId(9)],
            "known non-members 10, 11 must be pruned"
        );
        assert_eq!(src.store().membership_facts(), 12);
    }

    /// A `true` answer on a singleton set is a membership fact.
    #[test]
    fn positive_singleton_becomes_member_fact() {
        let t = truth(10, 2);
        let female = Target::group(Pattern::parse("1").unwrap());
        let mut src = KnowledgeSource::new(SpySource::new(&t));
        assert!(src.try_answer_set(&[ObjectId(1)], &female).unwrap());
        // Every future set containing object 1 is free.
        let ids = t.all_ids();
        assert!(src.try_answer_set(&ids, &female).unwrap());
        assert_eq!(src.inner().asked_sets.len(), 1);
        assert!(src.store().is_known_member(ObjectId(1), &female));
    }

    /// Facts are per-target: knowledge about `female` must not leak into
    /// queries about an unrelated predicate (labels, which decide every
    /// predicate, are exempt by design).
    #[test]
    fn membership_facts_are_target_scoped() {
        let t = truth(10, 2);
        let female = Target::group(Pattern::parse("1").unwrap());
        let male = female.negated();
        let ids = t.all_ids();
        let mut src = KnowledgeSource::new(SpySource::new(&t));
        // "no females in 5..10" says nothing about males there.
        assert!(!src.try_answer_set(&ids[5..], &female).unwrap());
        assert!(src.try_answer_set(&ids[5..], &male).unwrap());
        assert_eq!(src.inner().asked_sets.len(), 2, "male query not narrowed");
    }

    /// Knowledge-wrapped and raw sources agree on every answer.
    #[test]
    fn transparent_semantics() {
        let t = truth(500, 77);
        let target = Target::group(Pattern::parse("1").unwrap());
        let pool = t.all_ids();
        let mut raw = Engine::with_point_batch(PerfectSource::new(&t), 50);
        let mut memo = Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&t)), 50);
        let mut know = Engine::with_point_batch(KnowledgeSource::new(PerfectSource::new(&t)), 50);
        let a = group_coverage(&mut raw, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        let b = group_coverage(&mut memo, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        let c = group_coverage(&mut know, &pool, &target, 50, 50, &DncConfig::default()).unwrap();
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.count, b.count);
        assert_eq!(a.set_queries, b.set_queries);
        assert_eq!(a.covered, c.covered);
        assert_eq!(a.count, c.count);
        assert_eq!(a.set_queries, c.set_queries);
        // The knowledge layer reaches the crowd at most as often as the
        // exact-match cache.
        assert!(know.source().reuse_stats().forwarded <= memo.source().cache_misses());
    }

    #[test]
    fn shared_store_spans_clones() {
        let t = truth(100, 10);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        let mut a = root.clone();
        let mut b = root.clone();
        let first = a.try_answer_set(&ids[..50], &target).unwrap();
        let second = b.try_answer_set(&ids[..50], &target).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            root.cache_misses(),
            1,
            "clone b must reuse clone a's answer"
        );
        assert_eq!(root.cache_hits(), 1);
        a.try_answer_membership(ObjectId(3), &target).unwrap();
        b.try_answer_membership(ObjectId(3), &target.negated())
            .unwrap();
        assert_eq!(root.cache_misses(), 2);
        assert_eq!(root.cache_hits(), 2);
        // Per-handle tallies split the same traffic.
        assert_eq!(a.local_reuse_stats().forwarded, 2);
        assert_eq!(b.local_reuse_stats().hits, 2);
    }

    /// Cross-handle narrowing: one handle's labels shrink another handle's
    /// set queries.
    #[test]
    fn knowledge_flows_between_handles() {
        let t = truth(30, 2);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedKnowledgeSource::new(SpySource::new(&t));
        let mut labeler = root.clone();
        let mut auditor = root.clone();
        // The labeler pays for two labels...
        labeler.try_answer_point_labels(ObjectId(0)).unwrap();
        labeler.try_answer_point_labels(ObjectId(10)).unwrap();
        // ...which answer (known member) and narrow (known non-member) the
        // auditor's set queries.
        assert!(auditor.try_answer_set(&ids[..5], &female).unwrap());
        assert!(!auditor.try_answer_set(&ids[8..12], &female).unwrap());
        let stats = root.reuse_stats();
        assert_eq!(stats.hits, 1, "member fact answered the first set");
        assert_eq!(stats.narrowed, 1, "label pruned the second set");
        assert_eq!(stats.objects_pruned, 1);
    }

    #[test]
    fn shared_batch_path_serves_known_labels_locally() {
        let t = truth(60, 20);
        let ids = t.all_ids();
        let mut src = SharedKnowledgeSource::new(PerfectSource::new(&t));
        src.try_answer_point_labels(ObjectId(0)).unwrap();
        src.try_answer_point_labels(ObjectId(1)).unwrap();
        let batched = src.try_answer_point_labels_batch(&ids[..10]).unwrap();
        for (i, l) in batched.iter().enumerate() {
            assert_eq!(*l, t.labels_of(ids[i]));
        }
        // 2 singles + 8 fresh batch members forwarded; 2 batch members hit.
        assert_eq!(src.cache_misses(), 10);
        assert_eq!(src.cache_hits(), 2);
        // The whole batch is now known.
        src.try_answer_point_labels_batch(&ids[..10]).unwrap();
        assert_eq!(src.cache_misses(), 10);
        assert_eq!(src.cache_hits(), 12);
    }

    #[test]
    fn shared_store_is_thread_safe() {
        let t = truth(500, 50);
        let target = Target::group(Pattern::parse("1").unwrap());
        let pool = t.all_ids();
        let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut handle = root.clone();
                let pool = &pool;
                let target = &target;
                scope.spawn(move || {
                    for chunk in pool.chunks(50) {
                        handle.try_answer_set(chunk, target).unwrap();
                    }
                    for id in &pool[..40] {
                        handle.try_answer_membership(*id, target).unwrap();
                    }
                });
            }
        });
        // 10 distinct set queries + 40 distinct labels: in-flight coalescing
        // guarantees each unique question reaches the source at most once
        // (fact short-circuits can only reduce the count further).
        let stats = root.reuse_stats();
        assert!(stats.forwarded <= 50, "forwarded {}", stats.forwarded);
        assert_eq!(stats.questions(), 4 * (10 + 40));
    }

    /// Whatever the interleaving, shared-store answers equal the raw
    /// source's answers — the store is transparent for consistent sources.
    #[test]
    fn concurrent_answers_match_raw_source() {
        let t = truth(400, 37);
        let target = Target::group(Pattern::parse("1").unwrap());
        let pool = t.all_ids();
        let mut raw = PerfectSource::new(&t);
        let expected_sets: Vec<bool> = pool
            .chunks(25)
            .map(|c| raw.try_answer_set(c, &target).unwrap())
            .collect();
        for _ in 0..4 {
            let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
            let answers: Vec<Vec<bool>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3)
                    .map(|j| {
                        let mut handle = root.clone();
                        let pool = &pool;
                        let target = &target;
                        scope.spawn(move || {
                            // Each thread mixes labels and set queries in a
                            // different order to vary the fact arrivals.
                            for id in &pool[(j * 40)..(j * 40 + 30)] {
                                handle.try_answer_point_labels(*id).unwrap();
                            }
                            pool.chunks(25)
                                .map(|c| handle.try_answer_set(c, target).unwrap())
                                .collect::<Vec<bool>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for per_thread in answers {
                assert_eq!(per_thread, expected_sets);
            }
        }
    }

    /// A source that (optionally after a delay) refuses every question.
    struct DownSource {
        delay_ms: u64,
    }

    impl AnswerSource for DownSource {
        fn try_answer_set(&mut self, _: &[ObjectId], _: &Target) -> Result<bool, AskError> {
            if self.delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
            }
            Err(AskError::SourceFailed("down".into()))
        }

        fn try_answer_point_labels(&mut self, _: ObjectId) -> Result<Labels, AskError> {
            if self.delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
            }
            Err(AskError::SourceFailed("down".into()))
        }
    }

    impl BatchAnswerSource for DownSource {}

    /// One handle's failure releases the in-flight claim: the next asker
    /// re-claims the question and gets a real answer — failures are never
    /// recorded and never poison the shared state.
    #[test]
    fn failed_claim_releases_question_for_others() {
        let t = truth(20, 5);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        let mut broken = root.with_inner(DownSource { delay_ms: 0 });
        let mut healthy = root.clone();

        assert!(matches!(
            broken.try_answer_set(&ids, &target),
            Err(AskError::SourceFailed(_))
        ));
        // The failure was not recorded; the healthy handle pays and succeeds.
        assert_eq!(healthy.try_answer_set(&ids, &target), Ok(true));
        assert_eq!(root.cache_misses(), 1, "only the delivered answer counts");

        // Same for the batch path: a failed batch releases every claim.
        assert!(broken.try_answer_point_labels_batch(&ids[..6]).is_err());
        let labels = healthy.try_answer_point_labels_batch(&ids[..6]).unwrap();
        assert_eq!(labels.len(), 6);
    }

    /// A waiter coalesced behind a failing claim is woken, re-claims, and
    /// answers with its own (working) inner source instead of hanging or
    /// inheriting the error.
    #[test]
    fn waiter_survives_claimants_failure() {
        let t = truth(50, 10);
        let target = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        let mut broken = root.with_inner(DownSource { delay_ms: 40 });
        let mut healthy = root.clone();

        std::thread::scope(|scope| {
            let claim_ids = ids.clone();
            let claim_target = target.clone();
            let claimer = scope.spawn(move || broken.try_answer_set(&claim_ids, &claim_target));
            // Give the broken handle time to claim, then pile up behind it.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let waited = healthy.try_answer_set(&ids, &target);
            assert_eq!(waited, Ok(true), "waiter must re-claim and succeed");
            assert!(claimer.join().unwrap().is_err());
        });
    }

    /// Single-threaded determinism: the shard count is a pure contention
    /// knob — answers *and* the metered `ReuseStats` are identical for any
    /// striping of the same question sequence.
    #[test]
    fn shard_count_never_changes_answers_or_stats() {
        let t = truth(300, 40);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let run = |shards: usize| -> (Vec<bool>, Vec<Labels>, ReuseStats) {
            let mut src = SharedKnowledgeSource::with_shards(PerfectSource::new(&t), shards);
            assert_eq!(src.shard_count(), shards);
            let mut sets = Vec::new();
            let mut labels = Vec::new();
            for chunk in ids.chunks(37) {
                sets.push(src.try_answer_set(chunk, &female).unwrap());
            }
            for id in &ids[..90] {
                labels.push(src.try_answer_point_labels(*id).unwrap());
            }
            for chunk in ids.chunks(23) {
                sets.push(src.try_answer_set(chunk, &female.negated()).unwrap());
            }
            labels.extend(src.try_answer_point_labels_batch(&ids[50..150]).unwrap());
            (sets, labels, src.reuse_stats())
        };
        let baseline = run(1);
        for shards in [2, 3, 8, 64] {
            assert_eq!(run(shards), baseline, "{shards} shards diverged");
        }
    }

    /// Forked handles share the fact base; joining folds the fork's local
    /// tally back so per-job accounting stays complete.
    #[test]
    fn fork_and_join_merge_local_tallies() {
        use crate::engine::ForkableSource;
        let t = truth(40, 10);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let mut root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        root.try_answer_set(&ids[..10], &female).unwrap();
        let mut fork = root.fork();
        assert_eq!(fork.local_reuse_stats(), ReuseStats::default());
        fork.try_answer_set(&ids[..10], &female).unwrap(); // hit via shared facts
        fork.try_answer_set(&ids[10..], &female).unwrap(); // fresh forward
        root.join(fork);
        let local = root.local_reuse_stats();
        assert_eq!(local.hits, 1);
        assert_eq!(local.forwarded, 2);
        assert_eq!(root.reuse_stats(), local, "one handle saw all traffic");
    }

    /// The serde surface round-trips every kind of fact exactly.
    #[test]
    fn store_serde_round_trips() {
        let t = truth(40, 8);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let mut src = KnowledgeSource::new(PerfectSource::new(&t));
        src.try_answer_point_labels(ObjectId(0)).unwrap();
        src.try_answer_point_labels(ObjectId(20)).unwrap();
        src.try_answer_set(&[ObjectId(3)], &female).unwrap();
        src.try_answer_set(&ids[10..30], &female).unwrap();
        src.try_answer_set(&ids[30..], &female.negated()).unwrap();
        let store = src.store().clone();
        assert!(!store.is_empty());
        let json = serde_json::to_string(&store).unwrap();
        let back: KnowledgeStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back, store);
        // And the round-tripped store resolves queries identically.
        for chunk in ids.chunks(7) {
            assert_eq!(
                back.resolve_set(chunk, &female),
                store.resolve_set(chunk, &female)
            );
        }
    }

    /// A sink observing an in-memory store that replays every observed
    /// fact into a second store via the public record methods — the
    /// WAL-replay contract, minus the file.
    #[derive(Debug, Default)]
    struct ReplaySink {
        replayed: Mutex<KnowledgeStore>,
    }

    impl FactSink for ReplaySink {
        fn on_labels(&self, object: ObjectId, labels: Labels) {
            let mut store = self.replayed.lock().unwrap();
            store.record_labels(object, labels);
        }

        fn on_set_verdict(
            &self,
            objects: &[ObjectId],
            residual: &[ObjectId],
            target: &Target,
            answer: bool,
        ) {
            let mut store = self.replayed.lock().unwrap();
            store.record_set_answer(objects, residual, target, answer);
        }
    }

    /// Every committed fact reaches the sink; replaying the sink's log
    /// rebuilds the exact fact base (modulo stats, which are not facts).
    #[test]
    fn sink_sees_every_committed_fact() {
        let t = truth(60, 9);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        let sink = Arc::new(ReplaySink::default());
        root.set_fact_sink(Arc::clone(&sink) as Arc<dyn FactSink>);
        let mut handle = root.clone();
        handle.try_answer_point_labels(ObjectId(2)).unwrap();
        handle.try_answer_point_labels_batch(&ids[10..20]).unwrap();
        for chunk in ids.chunks(13) {
            handle.try_answer_set(chunk, &female).unwrap();
        }
        let mut live = root.store_snapshot();
        let mut replayed = sink.replayed.lock().unwrap().clone();
        live.stats = ReuseStats::default();
        replayed.stats = ReuseStats::default();
        assert_eq!(replayed, live);
        // Repeating the questions adds no sink traffic: hits don't commit.
        let before = serde_json::to_string(&replayed).unwrap();
        handle.try_answer_point_labels(ObjectId(2)).unwrap();
        handle.try_answer_set(&ids[..13], &female).unwrap();
        assert_eq!(
            serde_json::to_string(&*sink.replayed.lock().unwrap()).unwrap(),
            before
        );
    }

    /// Seeded facts answer questions but reach neither stats-as-spend nor
    /// the sink — recovery must never re-log or re-bill recovered facts.
    #[test]
    fn seeding_bypasses_sink_and_spend() {
        let t = truth(30, 6);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let mut donor = KnowledgeSource::new(PerfectSource::new(&t));
        for id in &ids {
            donor.try_answer_point_labels(*id).unwrap();
        }
        let root = SharedKnowledgeSource::new(PerfectSource::new(&t));
        let sink = Arc::new(ReplaySink::default());
        root.set_fact_sink(Arc::clone(&sink) as Arc<dyn FactSink>);
        root.seed_store(donor.store());
        assert!(sink.replayed.lock().unwrap().is_empty());
        let mut handle = root.clone();
        for chunk in ids.chunks(11) {
            handle.try_answer_set(chunk, &female).unwrap();
        }
        for id in &ids {
            handle.try_answer_point_labels(*id).unwrap();
        }
        let stats = root.reuse_stats();
        assert_eq!(stats.forwarded, 0, "everything answered from the seed");
        assert!(sink.replayed.lock().unwrap().is_empty());
    }

    /// An in-memory spill with call counters, for watermark tests.
    #[derive(Debug, Default)]
    struct MapSpill {
        cold: Mutex<HashMap<ObjectId, Labels>>,
        spills: AtomicU64,
        recalls: AtomicU64,
    }

    impl FactSpill for MapSpill {
        fn spill(&self, victims: Vec<(ObjectId, Labels)>) {
            self.spills
                .fetch_add(victims.len() as u64, Ordering::Relaxed);
            self.cold.lock().unwrap().extend(victims);
        }

        fn recall(&self, object: ObjectId) -> Option<Labels> {
            let found = self.cold.lock().unwrap().remove(&object);
            if found.is_some() {
                self.recalls.fetch_add(1, Ordering::Relaxed);
            }
            found
        }

        fn contents(&self) -> Vec<(ObjectId, Labels)> {
            self.cold
                .lock()
                .unwrap()
                .iter()
                .map(|(o, l)| (*o, *l))
                .collect()
        }
    }

    /// Over-watermark labels spill to disk and come back on touch; answers,
    /// crowd spend and snapshots are identical to the spill-less run.
    #[test]
    fn spill_bounds_memory_without_changing_answers_or_spend() {
        let t = truth(200, 25);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();

        let run = |watermark: Option<usize>| {
            let src = SharedKnowledgeSource::with_shards(PerfectSource::new(&t), 4);
            let spill = Arc::new(MapSpill::default());
            if let Some(w) = watermark {
                src.set_fact_spill(Arc::clone(&spill) as Arc<dyn FactSpill>, w);
            }
            let mut handle = src.clone();
            let mut answers = Vec::new();
            for id in &ids {
                handle.try_answer_point_labels(*id).unwrap();
            }
            for chunk in ids.chunks(17) {
                answers.push(handle.try_answer_set(chunk, &female).unwrap());
            }
            // Touch every label again: recalls re-promote.
            for id in &ids {
                handle.try_answer_point_labels(*id).unwrap();
            }
            let mut snapshot = src.store_snapshot();
            snapshot.stats = ReuseStats::default();
            (answers, src.reuse_stats(), snapshot, spill)
        };

        let (answers_off, stats_off, snapshot_off, _) = run(None);
        let (answers_on, stats_on, snapshot_on, spill) = run(Some(40));
        assert_eq!(answers_on, answers_off);
        assert_eq!(stats_on, stats_off, "spill must not change crowd spend");
        assert_eq!(
            snapshot_on, snapshot_off,
            "snapshots must include cold labels"
        );
        assert!(
            spill.spills.load(Ordering::Relaxed) > 0,
            "the watermark must actually evict"
        );
        assert!(
            spill.recalls.load(Ordering::Relaxed) > 0,
            "touched cold labels must be recalled"
        );
        // The in-memory population respects the watermark bound right
        // after an eviction pass.
        let src = SharedKnowledgeSource::with_shards(PerfectSource::new(&t), 4);
        let spill = Arc::new(MapSpill::default());
        src.set_fact_spill(Arc::clone(&spill) as Arc<dyn FactSpill>, 40);
        let mut handle = src.clone();
        for id in &ids {
            handle.try_answer_point_labels(*id).unwrap();
        }
        let in_memory = ids.len() - spill.cold.lock().unwrap().len();
        assert!(in_memory <= 40 + 4, "in-memory labels: {in_memory}");
    }

    #[test]
    fn store_counts_facts() {
        let t = truth(12, 2);
        let female = Target::group(Pattern::parse("1").unwrap());
        let ids = t.all_ids();
        let mut src = KnowledgeSource::new(PerfectSource::new(&t));
        src.try_answer_point_labels(ObjectId(0)).unwrap();
        src.try_answer_set(&ids[6..], &female).unwrap();
        let store = src.store();
        assert_eq!(store.labels_known(), 1);
        assert_eq!(store.membership_facts(), 6);
        assert_eq!(store.set_verdicts_known(), 1);
        assert!(store.is_known_member(ObjectId(0), &female));
        assert!(store.is_known_non_member(ObjectId(0), &female.negated()));
        assert!(!store.is_known_member(ObjectId(1), &female));
    }
}
