//! Answer memoization: never pay for the same question twice.
//!
//! §4 of the paper motivates its heuristics by noting that independent
//! Group-Coverage runs "miss the opportunity to reuse the information
//! collected during each run". The aggregation heuristic reuses *labels*;
//! [`MemoizedSource`] generalizes the idea to *whole answers*: it wraps any
//! [`crate::engine::AnswerSource`] and caches set-query and
//! point-query results keyed by (objects, target), answering repeats from
//! the cache. Combined with an [`crate::engine::Engine`] the repeat
//! is still *metered* — the cache models a requester who stores previous
//! crowd answers, so wrap the source and compare ledgers to quantify the
//! savings (see the `memoization_savings` test).
//!
//! Point labels are additionally reusable *across* targets: once an object
//! is labeled, every future set query that contains it could in principle
//! be narrowed. That deeper reuse is the paper's open direction; here the
//! cache is exact-match only, which is already enough to de-duplicate the
//! brute-force multi-group baseline's repeated root queries.

use crate::engine::{AnswerSource, ObjectId};
use crate::schema::Labels;
use crate::target::Target;
use std::collections::HashMap;

/// A caching wrapper around an answer source.
#[derive(Debug, Clone)]
pub struct MemoizedSource<S> {
    inner: S,
    set_cache: HashMap<(Vec<ObjectId>, Target), bool>,
    label_cache: HashMap<ObjectId, Labels>,
    hits: u64,
    misses: u64,
}

impl<S> MemoizedSource<S> {
    /// Wraps a source with empty caches.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            set_cache: HashMap::new(),
            label_cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Questions answered from cache.
    pub fn cache_hits(&self) -> u64 {
        self.hits
    }

    /// Questions forwarded to the inner source.
    pub fn cache_misses(&self) -> u64 {
        self.misses
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps into the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: AnswerSource> AnswerSource for MemoizedSource<S> {
    fn answer_set(&mut self, objects: &[ObjectId], target: &Target) -> bool {
        let key = (objects.to_vec(), target.clone());
        if let Some(ans) = self.set_cache.get(&key) {
            self.hits += 1;
            return *ans;
        }
        self.misses += 1;
        let ans = self.inner.answer_set(objects, target);
        self.set_cache.insert(key, ans);
        ans
    }

    fn answer_point_labels(&mut self, object: ObjectId) -> Labels {
        if let Some(l) = self.label_cache.get(&object) {
            self.hits += 1;
            return *l;
        }
        self.misses += 1;
        let l = self.inner.answer_point_labels(object);
        self.label_cache.insert(object, l);
        l
    }

    fn answer_membership(&mut self, object: ObjectId, target: &Target) -> bool {
        // Route through the label cache: a cached label answers any
        // membership question about the object for free.
        let labels = self.answer_point_labels(object);
        target.matches(&labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, GroundTruth, PerfectSource, VecGroundTruth};
    use crate::group_coverage::{group_coverage, DncConfig};
    use crate::pattern::Pattern;

    fn truth(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    #[test]
    fn repeated_set_queries_hit_cache() {
        let t = truth(100, 10);
        let mut src = MemoizedSource::new(PerfectSource::new(&t));
        let ids = t.all_ids();
        let target = Target::group(Pattern::parse("1").unwrap());
        let a = src.answer_set(&ids[..50], &target);
        let b = src.answer_set(&ids[..50], &target);
        assert_eq!(a, b);
        assert_eq!(src.cache_hits(), 1);
        assert_eq!(src.cache_misses(), 1);
        // Different range or different target: miss.
        src.answer_set(&ids[50..], &target);
        src.answer_set(&ids[..50], &target.negated());
        assert_eq!(src.cache_misses(), 3);
    }

    #[test]
    fn labels_cached_across_membership_questions() {
        let t = truth(10, 5);
        let mut src = MemoizedSource::new(PerfectSource::new(&t));
        let female = Target::group(Pattern::parse("1").unwrap());
        let male = female.negated();
        assert!(src.answer_membership(ObjectId(0), &female));
        // The second question about the same object is free.
        assert!(!src.answer_membership(ObjectId(0), &male));
        assert_eq!(src.cache_hits(), 1);
        assert_eq!(src.cache_misses(), 1);
    }

    /// Running the identical Group-Coverage twice: the second run is fully
    /// answered from cache — quantifying what a requester saves by storing
    /// crowd answers.
    #[test]
    fn memoization_savings() {
        let t = truth(2000, 30);
        let target = Target::group(Pattern::parse("1").unwrap());
        let mut engine = Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&t)), 50);
        let pool = t.all_ids();
        let first = group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default());
        let after_first = engine.source().cache_misses();
        let second = group_coverage(&mut engine, &pool, &target, 50, 50, &DncConfig::default());
        assert_eq!(first.covered, second.covered);
        assert_eq!(first.count, second.count);
        assert_eq!(
            engine.source().cache_misses(),
            after_first,
            "the repeat run must not reach the crowd at all"
        );
        assert!(engine.source().cache_hits() >= after_first);
    }

    /// Memoized and raw sources agree on every answer.
    #[test]
    fn transparent_semantics() {
        let t = truth(500, 77);
        let target = Target::group(Pattern::parse("1").unwrap());
        let pool = t.all_ids();
        let mut raw = Engine::with_point_batch(PerfectSource::new(&t), 50);
        let mut memo = Engine::with_point_batch(MemoizedSource::new(PerfectSource::new(&t)), 50);
        let a = group_coverage(&mut raw, &pool, &target, 50, 50, &DncConfig::default());
        let b = group_coverage(&mut memo, &pool, &target, 50, 50, &DncConfig::default());
        assert_eq!(a.covered, b.covered);
        assert_eq!(a.count, b.count);
        assert_eq!(a.set_queries, b.set_queries);
    }
}
