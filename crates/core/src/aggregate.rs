//! Super-group aggregation (§4, `Aggregate` of Algorithm 6).
//!
//! When several groups are *all* expected to be tiny, one Group-Coverage run
//! over their union (an OR set query) can certify them all uncovered at
//! once. The heuristic estimates each group's population from the labeled
//! sample (`E[|g|] = N·count(g)/|L|`), sorts groups by sample count
//! ascending (so minorities sit together), and greedily merges consecutive
//! groups while the running expected total stays below `τ`.
//!
//! In the intersectional case (`multi = true`) only *sibling* subgroups —
//! fully-specified patterns that differ on exactly one attribute, i.e.
//! share a parent — may be merged, so that an uncovered super-group count
//! remains attributable to a single parent pattern.

use crate::pattern::Pattern;
use crate::sampling::LabeledStore;
use crate::target::Target;
use serde::{Deserialize, Serialize};

/// A (possibly singleton) set of groups searched together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperGroup {
    /// The member groups, in ascending order of sample count.
    pub members: Vec<Pattern>,
    /// Expected total population of the members, from the sample.
    pub expected_total: f64,
}

impl SuperGroup {
    /// The OR target over the member groups.
    pub fn target(&self) -> Target {
        if self.members.len() == 1 {
            Target::group(self.members[0])
        } else {
            Target::super_group(self.members.clone())
        }
    }

    /// True for a one-group "super-group".
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }
}

/// Can `candidate` join a super-group whose members so far are `members`,
/// under the sibling restriction? True when `members` is empty, or when
/// every current member shares a parent with the candidate **and** the
/// whole merged set still shares a common parent (all patterns identical
/// except on a single attribute).
fn sibling_compatible(members: &[Pattern], candidate: &Pattern) -> bool {
    let Some(first) = members.first() else {
        return true;
    };
    // The differing attribute is fixed by the first two members.
    let Some(parent) = first.common_parent(candidate) else {
        return members.iter().all(|m| m == candidate);
    };
    members.iter().all(|m| parent.generalizes(m))
}

/// `Aggregate` (Algorithm 6, lines 6-14).
///
/// * `labeled` — the sample `L` produced by
///   [`label_samples`](crate::sampling::label_samples).
/// * `n_total` — the original dataset size `N` (pool + sample).
/// * `tau` — the coverage threshold.
/// * `groups` — the groups to organize (all values of one attribute, or all
///   fully-specified subgroups for the intersectional case).
/// * `multi` — restrict merges to sibling subgroups (intersectional mode).
///
/// Returns the partition of `groups` into super-groups. Groups the sample
/// expects to be large come out as singletons; expected-tiny groups are
/// merged while their expected sum stays below `tau`.
pub fn aggregate(
    labeled: &LabeledStore,
    n_total: usize,
    tau: usize,
    groups: &[Pattern],
    multi: bool,
) -> Vec<SuperGroup> {
    assert!(!groups.is_empty(), "aggregate needs at least one group");
    let sample_size = labeled.len();

    // Sort groups by sample count ascending (minorities first).
    let mut with_counts: Vec<(Pattern, usize)> = groups
        .iter()
        .map(|g| (*g, labeled.count(&Target::group(*g))))
        .collect();
    with_counts.sort_by_key(|(_, c)| *c);

    let expected = |count: usize| -> f64 {
        if sample_size == 0 {
            // No sample information: treat every group as potentially tiny.
            0.0
        } else {
            count as f64 / sample_size as f64 * n_total as f64
        }
    };

    let mut out: Vec<SuperGroup> = Vec::new();
    let mut current: Vec<Pattern> = Vec::new();
    let mut sum = 0.0f64;
    for (g, c) in with_counts {
        let e = expected(c);
        let fits = sum + e < tau as f64;
        let compatible = !multi || sibling_compatible(&current, &g);
        if current.is_empty() || (fits && compatible) {
            current.push(g);
            sum += e;
        } else {
            out.push(SuperGroup {
                members: std::mem::take(&mut current),
                expected_total: sum,
            });
            current.push(g);
            sum = e;
        }
    }
    if !current.is_empty() {
        out.push(SuperGroup {
            members: current,
            expected_total: sum,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ObjectId;
    use crate::schema::Labels;

    /// A labeled store over a single attribute with the given per-value counts.
    fn store_1d(counts: &[usize]) -> LabeledStore {
        let mut store = LabeledStore::new();
        let mut id = 0u32;
        for (v, c) in counts.iter().enumerate() {
            for _ in 0..*c {
                store.add(ObjectId(id), Labels::single(v as u8));
                id += 1;
            }
        }
        store
    }

    fn groups_1d(card: usize) -> Vec<Pattern> {
        (0..card).map(|v| Pattern::single(1, 0, v as u8)).collect()
    }

    #[test]
    fn minorities_merge_majority_stays_alone() {
        // N = 1000, τ = 50, sample of 100: group counts 90, 6, 4 ⇒ expected
        // 900, 60, 40. Groups 2 (exp 40) alone is below τ; adding group 1
        // (exp 60) overshoots, so it opens a new super-group; group 0 is huge.
        let store = store_1d(&[90, 6, 4]);
        let groups = groups_1d(3);
        let sgs = aggregate(&store, 1000, 50, &groups, false);
        assert_eq!(sgs.len(), 3);
        assert!(sgs.iter().all(SuperGroup::is_singleton));
    }

    #[test]
    fn three_tiny_groups_become_one_super_group() {
        // Expected sizes 10, 10, 10 with τ = 50 ⇒ merged; majority separate.
        let store = store_1d(&[97, 1, 1, 1]);
        let groups = groups_1d(4);
        let sgs = aggregate(&store, 1000, 50, &groups, false);
        assert_eq!(sgs.len(), 2);
        let merged = &sgs[0];
        assert_eq!(merged.members.len(), 3);
        assert!((merged.expected_total - 30.0).abs() < 1e-9);
        assert!(sgs[1].is_singleton());
    }

    #[test]
    fn zero_count_groups_merge_freely() {
        // Groups absent from the sample have expected size 0.
        let store = store_1d(&[100, 0, 0, 0]);
        let groups = groups_1d(4);
        let sgs = aggregate(&store, 10_000, 50, &groups, false);
        assert_eq!(sgs.len(), 2);
        assert_eq!(sgs[0].members.len(), 3);
        assert_eq!(sgs[0].expected_total, 0.0);
    }

    #[test]
    fn empty_sample_merges_everything() {
        let store = LabeledStore::new();
        let groups = groups_1d(4);
        let sgs = aggregate(&store, 1000, 50, &groups, false);
        assert_eq!(sgs.len(), 1);
        assert_eq!(sgs[0].members.len(), 4);
    }

    #[test]
    fn aggregation_is_a_partition() {
        let store = store_1d(&[50, 30, 10, 5, 3, 2]);
        let groups = groups_1d(6);
        let sgs = aggregate(&store, 2000, 50, &groups, false);
        let mut all: Vec<Pattern> = sgs.iter().flat_map(|s| s.members.clone()).collect();
        all.sort_by_key(|p| format!("{p}"));
        let mut want = groups.clone();
        want.sort_by_key(|p| format!("{p}"));
        assert_eq!(all, want);
    }

    #[test]
    fn multi_mode_merges_only_siblings() {
        // Two binary attributes ⇒ four fully-specified subgroups.
        // Make 00 and 11 tiny: they do NOT share a parent (differ on both
        // attributes), so multi mode must keep them apart even though the
        // expected sums would allow a merge.
        let mut store = LabeledStore::new();
        let mut id = 0u32;
        let mut push = |vals: [u8; 2], c: usize, store: &mut LabeledStore| {
            for _ in 0..c {
                store.add(ObjectId(id), Labels::new(&vals));
                id += 1;
            }
        };
        push([0, 0], 1, &mut store);
        push([1, 1], 1, &mut store);
        push([0, 1], 49, &mut store);
        push([1, 0], 49, &mut store);
        let groups = vec![
            Pattern::parse("00").unwrap(),
            Pattern::parse("01").unwrap(),
            Pattern::parse("10").unwrap(),
            Pattern::parse("11").unwrap(),
        ];
        let sgs = aggregate(&store, 100, 50, &groups, true);
        // 00 and 11 each expected size 1 — mergeable by size, but not siblings.
        for sg in &sgs {
            if sg.members.len() > 1 {
                let parent = sg.members[0].common_parent(&sg.members[1]);
                assert!(parent.is_some(), "non-sibling merge: {:?}", sg.members);
            }
        }
        let tiny_together = sgs.iter().any(|s| {
            s.members.contains(&Pattern::parse("00").unwrap())
                && s.members.contains(&Pattern::parse("11").unwrap())
        });
        assert!(!tiny_together, "00 and 11 must not merge in multi mode");
    }

    #[test]
    fn multi_mode_merges_actual_siblings() {
        // Attribute 2 has three values; 0-0, 0-1, 0-2 are siblings via 0-X.
        let mut store = LabeledStore::new();
        store.add(ObjectId(0), Labels::new(&[1, 0]));
        let groups = vec![
            Pattern::parse("00").unwrap(),
            Pattern::parse("01").unwrap(),
            Pattern::parse("02").unwrap(),
        ];
        let sgs = aggregate(&store, 100, 50, &groups, true);
        assert_eq!(sgs.len(), 1, "siblings with zero counts should merge");
        assert_eq!(sgs[0].members.len(), 3);
    }

    #[test]
    fn super_group_target_is_or() {
        let sg = SuperGroup {
            members: vec![Pattern::parse("0X").unwrap(), Pattern::parse("1X").unwrap()],
            expected_total: 3.0,
        };
        let t = sg.target();
        assert!(t.matches(&Labels::new(&[0, 1])));
        assert!(t.matches(&Labels::new(&[1, 0])));
        let singleton = SuperGroup {
            members: vec![Pattern::parse("0X").unwrap()],
            expected_total: 3.0,
        };
        assert!(singleton.is_singleton());
        assert!(singleton.target().is_single_group());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_groups_panics() {
        aggregate(&LabeledStore::new(), 10, 5, &[], false);
    }
}
