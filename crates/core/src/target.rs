//! Query targets: what a crowd task asks about.
//!
//! A [`Target`] uniformly encodes the three kinds of group predicates used by
//! the paper's algorithms:
//!
//! * a **single group** (a pattern, possibly partial, e.g. `female-X`),
//! * a **super-group** — the OR of several groups, used by the aggregation
//!   heuristic of §4 ("does the set contain any Native American, Asian OR
//!   Middle Eastern individual?"),
//! * a **negated group** — the reverse question of `Classifier-Coverage`
//!   (§5: "is there any individual in this set that is NOT female?").

use crate::pattern::Pattern;
use crate::schema::{AttributeSchema, Labels};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A membership predicate over label vectors.
///
/// An object with labels `l` matches the target when
/// `(∃ p ∈ patterns: p.matches(l)) XOR negated`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Target {
    patterns: Vec<Pattern>,
    negated: bool,
}

impl Target {
    /// A single (sub)group.
    pub fn group(pattern: Pattern) -> Self {
        Self {
            patterns: vec![pattern],
            negated: false,
        }
    }

    /// A super-group: the union (OR) of several disjoint groups.
    ///
    /// # Panics
    /// Panics when `patterns` is empty or the patterns disagree on arity.
    pub fn super_group(patterns: Vec<Pattern>) -> Self {
        assert!(
            !patterns.is_empty(),
            "a super-group needs at least one group"
        );
        let d = patterns[0].d();
        assert!(
            patterns.iter().all(|p| p.d() == d),
            "all patterns of a super-group must share the arity"
        );
        Self {
            patterns,
            negated: false,
        }
    }

    /// The complement of a single group (the §5 "NOT g" reverse question).
    pub fn negation(pattern: Pattern) -> Self {
        Self {
            patterns: vec![pattern],
            negated: true,
        }
    }

    /// Returns this target with the polarity flipped.
    #[must_use]
    pub fn negated(&self) -> Self {
        Self {
            patterns: self.patterns.clone(),
            negated: !self.negated,
        }
    }

    /// Does an object with the given labels match?
    pub fn matches(&self, labels: &Labels) -> bool {
        self.patterns.iter().any(|p| p.matches(labels)) ^ self.negated
    }

    /// The underlying pattern(s).
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// True when this is a complement predicate.
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// True when the target is a single, non-negated group.
    pub fn is_single_group(&self) -> bool {
        self.patterns.len() == 1 && !self.negated
    }

    /// Human-readable description using the schema's value names, suitable
    /// for a HIT title (e.g. `any of {female-X}?` / `any NOT male-X?`).
    pub fn describe(&self, schema: &AttributeSchema) -> String {
        let names: Vec<String> = self
            .patterns
            .iter()
            .map(|p| schema.pattern_display(p))
            .collect();
        if self.negated {
            format!("any NOT {}?", names.join(" | "))
        } else {
            format!("any of {{{}}}?", names.join(", "))
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "¬")?;
        }
        let strs: Vec<String> = self.patterns.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", strs.join("|"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeSchema};

    #[test]
    fn single_group_matching() {
        let t = Target::group(Pattern::parse("1X").unwrap());
        assert!(t.matches(&Labels::new(&[1, 0])));
        assert!(t.matches(&Labels::new(&[1, 1])));
        assert!(!t.matches(&Labels::new(&[0, 0])));
        assert!(t.is_single_group());
    }

    #[test]
    fn super_group_is_union() {
        let t = Target::super_group(vec![
            Pattern::parse("00").unwrap(),
            Pattern::parse("11").unwrap(),
        ]);
        assert!(t.matches(&Labels::new(&[0, 0])));
        assert!(t.matches(&Labels::new(&[1, 1])));
        assert!(!t.matches(&Labels::new(&[0, 1])));
        assert!(!t.is_single_group());
    }

    #[test]
    fn negation_flips_membership() {
        let female = Pattern::parse("1").unwrap();
        let not_female = Target::negation(female);
        assert!(!not_female.matches(&Labels::new(&[1])));
        assert!(not_female.matches(&Labels::new(&[0])));
        assert!(not_female.is_negated());
        // Double negation restores the original predicate.
        let again = not_female.negated();
        assert!(again.matches(&Labels::new(&[1])));
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn empty_super_group_panics() {
        Target::super_group(vec![]);
    }

    #[test]
    #[should_panic(expected = "share the arity")]
    fn mixed_arity_super_group_panics() {
        Target::super_group(vec![
            Pattern::parse("0").unwrap(),
            Pattern::parse("01").unwrap(),
        ]);
    }

    #[test]
    fn describe_uses_value_names() {
        let schema = AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::new("race", ["white", "black"]).unwrap(),
        ])
        .unwrap();
        let t = Target::group(schema.pattern(&[("gender", "female")]).unwrap());
        assert_eq!(t.describe(&schema), "any of {female-X}?");
        let n = t.negated();
        assert_eq!(n.describe(&schema), "any NOT female-X?");
    }

    #[test]
    fn display_compact() {
        let t = Target::super_group(vec![
            Pattern::parse("0X").unwrap(),
            Pattern::parse("X1").unwrap(),
        ]);
        assert_eq!(t.to_string(), "0X|X1");
        assert_eq!(t.negated().to_string(), "¬0X|X1");
    }
}
