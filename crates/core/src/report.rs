//! Aggregate, serializable study reports.
//!
//! A [`CoverageReport`] bundles everything an audit produces — per-group
//! verdicts, MUPs, task totals, and dollar cost — into one serde-friendly
//! value that the benchmark harness writes as JSON.

use crate::intersectional::PatternCoverage;
use crate::ledger::{PricingModel, TaskLedger};
use crate::multiple::GroupResult;
use crate::pattern::Pattern;
use crate::schema::AttributeSchema;
use serde::{Deserialize, Serialize};

/// The final artifact of a coverage study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoverageReport {
    /// Human-readable study name.
    pub study: String,
    /// The attributes of interest.
    pub schema: AttributeSchema,
    /// Coverage threshold used.
    pub tau: usize,
    /// Dataset size audited.
    pub dataset_size: usize,
    /// Per-group verdicts (fully-specified subgroups or single-attribute
    /// groups, depending on the study).
    pub groups: Vec<GroupResult>,
    /// Lattice-wide verdicts, when an intersectional study ran.
    pub patterns: Vec<PatternCoverage>,
    /// Maximal uncovered patterns.
    pub mups: Vec<Pattern>,
    /// Total crowd work.
    pub tasks: TaskLedger,
    /// Dollar cost under the study's pricing model.
    pub dollars: f64,
}

impl CoverageReport {
    /// Builds a report, pricing the ledger with `pricing`.
    pub fn new(
        study: impl Into<String>,
        schema: AttributeSchema,
        tau: usize,
        dataset_size: usize,
        tasks: TaskLedger,
        pricing: &PricingModel,
    ) -> Self {
        let dollars = pricing.total_cost(&tasks);
        Self {
            study: study.into(),
            schema,
            tau,
            dataset_size,
            groups: Vec::new(),
            patterns: Vec::new(),
            mups: Vec::new(),
            tasks,
            dollars,
        }
    }

    /// Attaches per-group verdicts.
    #[must_use]
    pub fn with_groups(mut self, groups: Vec<GroupResult>) -> Self {
        self.groups = groups;
        self
    }

    /// Attaches lattice verdicts and MUPs.
    #[must_use]
    pub fn with_patterns(mut self, patterns: Vec<PatternCoverage>, mups: Vec<Pattern>) -> Self {
        self.patterns = patterns;
        self.mups = mups;
        self
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let uncovered: Vec<String> = self
            .groups
            .iter()
            .filter(|g| !g.covered)
            .map(|g| self.schema.pattern_display(&g.group))
            .collect();
        format!(
            "{}: {} tasks (${:.2}); uncovered groups: [{}]; MUPs: [{}]",
            self.study,
            self.tasks.total_tasks(),
            self.dollars,
            uncovered.join(", "),
            self.mups
                .iter()
                .map(|m| self.schema.pattern_display(m))
                .collect::<Vec<_>>()
                .join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn report() -> CoverageReport {
        let schema =
            AttributeSchema::new(vec![Attribute::binary("gender", "male", "female").unwrap()])
                .unwrap();
        let mut tasks = TaskLedger::new();
        for _ in 0..10 {
            tasks.record_set_query();
        }
        CoverageReport::new(
            "demo",
            schema,
            50,
            1000,
            tasks,
            &PricingModel::amt_ten_cents(),
        )
        .with_groups(vec![GroupResult {
            group: Pattern::parse("1").unwrap(),
            covered: false,
            count: 12,
            count_exact: true,
        }])
        .with_patterns(Vec::new(), vec![Pattern::parse("1").unwrap()])
    }

    #[test]
    fn pricing_applied() {
        let r = report();
        // 10 tasks × $0.10 × 3 assignments × 1.2 fees = $3.60.
        assert!((r.dollars - 3.6).abs() < 1e-9);
    }

    #[test]
    fn summary_names_uncovered_groups() {
        let s = report().summary();
        assert!(s.contains("female"), "{s}");
        assert!(s.contains("10 tasks"), "{s}");
    }

    #[test]
    fn serde_roundtrip() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: CoverageReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.study, "demo");
        assert_eq!(back.mups.len(), 1);
        assert_eq!(back.tasks.total_tasks(), 10);
    }
}
