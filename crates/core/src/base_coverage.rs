//! **Base-Coverage** — the brute-force baseline (Algorithm 7).
//!
//! One yes/no point query per object ("does this image show a member of
//! g?"), scanning the pool until `τ` members are found or the pool is
//! exhausted. Every task contains a single object *by definition* — this is
//! the two-step baseline the paper argues is too expensive.

use crate::engine::{AnswerSource, Engine, ObjectId};
use crate::error::{try_ask, Interrupted};
use crate::group_coverage::GroupCoverageOutcome;
use crate::target::Target;

/// Runs **Base-Coverage** over `pool` for `target` with threshold `tau`.
///
/// Returns the same outcome type as
/// [`group_coverage`](crate::group_coverage::group_coverage); the
/// `set_queries` field is zero — the cost shows up in the engine ledger's
/// point tasks (one per object scanned).
///
/// # Errors
/// When the ask path fails (budget exhausted, cancelled, source failure)
/// the returned [`Interrupted`] carries the partial outcome: the witnesses
/// found and the member count proven before the cut.
pub fn base_coverage<S: AnswerSource>(
    engine: &mut Engine<S>,
    pool: &[ObjectId],
    target: &Target,
    tau: usize,
) -> Result<GroupCoverageOutcome, Interrupted<GroupCoverageOutcome>> {
    let mut cnt = 0usize;
    let mut witnesses = Vec::new();
    if tau == 0 {
        return Ok(GroupCoverageOutcome {
            covered: true,
            count: 0,
            set_queries: 0,
            witnesses,
        });
    }
    for &t in pool {
        let is_member = try_ask!(
            engine.ask_membership_single(t, target),
            GroupCoverageOutcome {
                covered: false,
                count: cnt,
                set_queries: 0,
                witnesses,
            }
        );
        if is_member {
            cnt += 1;
            witnesses.push(t);
            if cnt >= tau {
                return Ok(GroupCoverageOutcome {
                    covered: true,
                    count: cnt,
                    set_queries: 0,
                    witnesses,
                });
            }
        }
    }
    Ok(GroupCoverageOutcome {
        covered: false,
        count: cnt,
        set_queries: 0,
        witnesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GroundTruth;
    use crate::engine::{PerfectSource, VecGroundTruth};
    use crate::pattern::Pattern;
    use crate::schema::Labels;

    fn truth_with_minority(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    fn minority() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    #[test]
    fn covered_stops_at_tau() {
        let truth = truth_with_minority(1000, 100);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let out = base_coverage(&mut engine, &truth.all_ids(), &minority(), 50).unwrap();
        assert!(out.covered);
        assert_eq!(out.count, 50);
        // Minority is at the front: exactly 50 point tasks.
        assert_eq!(engine.ledger().point_tasks(), 50);
        assert_eq!(out.witnesses.len(), 50);
    }

    #[test]
    fn uncovered_scans_everything() {
        let truth = truth_with_minority(200, 10);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let out = base_coverage(&mut engine, &truth.all_ids(), &minority(), 50).unwrap();
        assert!(!out.covered);
        assert_eq!(out.count, 10);
        assert_eq!(engine.ledger().point_tasks(), 200);
        assert_eq!(engine.ledger().total_tasks(), 200);
    }

    #[test]
    fn each_object_is_one_task_never_batched() {
        // Even with a large engine batch configured, Base-Coverage charges
        // one task per object — the paper defines it that way.
        let truth = truth_with_minority(30, 0);
        let mut engine = Engine::with_point_batch(PerfectSource::new(&truth), 50);
        base_coverage(&mut engine, &truth.all_ids(), &minority(), 5).unwrap();
        assert_eq!(engine.ledger().point_tasks(), 30);
    }

    #[test]
    fn tau_zero_trivially_covered() {
        let truth = truth_with_minority(5, 0);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let out = base_coverage(&mut engine, &truth.all_ids(), &minority(), 0).unwrap();
        assert!(out.covered);
        assert_eq!(engine.ledger().total_tasks(), 0);
    }

    #[test]
    fn empty_pool() {
        let truth = truth_with_minority(0, 0);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let out = base_coverage(&mut engine, &[], &minority(), 3).unwrap();
        assert!(!out.covered);
        assert_eq!(out.count, 0);
    }

    #[test]
    fn expected_cost_shape_matches_paper() {
        // Table 1 shape: 215 females in 1522 images, τ = 50 — roughly
        // 50·(N+1)/(f+1) ≈ 352 tasks when shuffled. With the females at
        // uniform positions the deterministic scan gives the same order.
        let n = 1522usize;
        let f = 215usize;
        let labels: Vec<Labels> = (0..n)
            .map(|i| Labels::single(u8::from(i % (n / f) == 0 && i / (n / f) < f)))
            .collect();
        let truth = VecGroundTruth::new(labels);
        let mut engine = Engine::new(PerfectSource::new(&truth));
        let out = base_coverage(&mut engine, &truth.all_ids(), &minority(), 50).unwrap();
        assert!(out.covered);
        let tasks = engine.ledger().total_tasks();
        assert!(
            (250..=450).contains(&tasks),
            "expected ≈350 tasks, got {tasks}"
        );
    }
}
