//! Variable pricing — the paper's stated future work (§8: "we consider
//! extending our techniques to support various pricing models").
//!
//! The fixed-price model charges every HIT the same, so minimizing tasks
//! minimizes cost. Real platforms price differently: large set queries
//! deserve a higher reward (more images to scan), and point labels are
//! cheap piecework. A [`CostScheme`] prices the two query shapes
//! separately — with an optional per-image surcharge on set queries — and
//! [`optimal_subset_size`] picks the subset bound `n` that minimizes the
//! *expected dollar* bound instead of the task bound: with a per-image
//! surcharge, ever-larger `n` stops being free, and the optimum moves to
//! an interior value.

use crate::error::require_positive_n;
use crate::ledger::TaskLedger;
use serde::{Deserialize, Serialize};

/// A pricing scheme with per-shape rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostScheme {
    /// Base reward for a set query.
    pub set_query_base: f64,
    /// Additional reward per image shown in a set query.
    pub set_query_per_image: f64,
    /// Reward for one point task (a batch of labels or a single object,
    /// depending on the engine's batching).
    pub point_task: f64,
    /// Redundancy factor (assignments per task).
    pub assignments: u32,
    /// Platform fee rate on wages.
    pub fee_rate: f64,
}

impl CostScheme {
    /// The paper's fixed-price model expressed in this scheme: every task
    /// costs the same regardless of shape or size.
    pub fn fixed(reward: f64) -> Self {
        Self {
            set_query_base: reward,
            set_query_per_image: 0.0,
            point_task: reward,
            assignments: 3,
            fee_rate: 0.20,
        }
    }

    /// A per-image scheme: a small base plus a per-image increment,
    /// approximating effort-proportional rewards.
    pub fn per_image(base: f64, per_image: f64) -> Self {
        Self {
            set_query_base: base,
            set_query_per_image: per_image,
            point_task: base,
            assignments: 3,
            fee_rate: 0.20,
        }
    }

    /// Wages for a ledger, assuming every set query showed `n` images.
    pub fn wages(&self, ledger: &TaskLedger, n: usize) -> f64 {
        let set = ledger.set_queries() as f64
            * (self.set_query_base + self.set_query_per_image * n as f64);
        let point = ledger.point_tasks() as f64 * self.point_task;
        (set + point) * f64::from(self.assignments)
    }

    /// Total cost (wages + fees) for a ledger at set size `n`.
    pub fn total_cost(&self, ledger: &TaskLedger, n: usize) -> f64 {
        self.wages(ledger, n) * (1.0 + self.fee_rate)
    }

    /// Expected worst-case dollar cost of a Group-Coverage run at subset
    /// size `n`: the task bound `N/n + τ·log2(n)` priced per set query.
    pub fn bound_cost(&self, n_total: usize, n: usize, tau: usize) -> f64 {
        require_positive_n(n);
        let tasks = n_total as f64 / n as f64 + tau as f64 * ((n.max(2)) as f64).log2();
        tasks
            * (self.set_query_base + self.set_query_per_image * n as f64)
            * f64::from(self.assignments)
            * (1.0 + self.fee_rate)
    }
}

/// Picks the subset size `n ∈ [1, max_n]` minimizing
/// [`CostScheme::bound_cost`]. Under fixed pricing the answer saturates at
/// `max_n` (more batching is free); with a per-image surcharge the optimum
/// is interior.
pub fn optimal_subset_size(scheme: &CostScheme, n_total: usize, tau: usize, max_n: usize) -> usize {
    assert!(max_n >= 1, "need at least one candidate subset size");
    (1..=max_n)
        .min_by(|a, b| {
            scheme
                .bound_cost(n_total, *a, tau)
                .partial_cmp(&scheme.bound_cost(n_total, *b, tau))
                .expect("costs are finite")
        })
        .expect("non-empty range")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(sets: u64, points: u64) -> TaskLedger {
        let mut l = TaskLedger::new();
        for _ in 0..sets {
            l.record_set_query();
        }
        l.record_point_work(points * 10, points);
        l
    }

    #[test]
    fn fixed_scheme_matches_flat_pricing() {
        let scheme = CostScheme::fixed(0.10);
        let l = ledger(5, 5);
        // 10 tasks × $0.10 × 3 assignments = $3 wages, ×1.2 = $3.60.
        assert!((scheme.wages(&l, 50) - 3.0).abs() < 1e-9);
        assert!((scheme.total_cost(&l, 50) - 3.6).abs() < 1e-9);
        // Set size is irrelevant under fixed pricing.
        assert_eq!(scheme.total_cost(&l, 1), scheme.total_cost(&l, 400));
    }

    #[test]
    fn per_image_scheme_charges_size() {
        let scheme = CostScheme::per_image(0.02, 0.001);
        let l = ledger(10, 0);
        let small = scheme.total_cost(&l, 10);
        let large = scheme.total_cost(&l, 200);
        assert!(large > small);
    }

    #[test]
    fn fixed_pricing_prefers_largest_n() {
        let scheme = CostScheme::fixed(0.10);
        assert_eq!(optimal_subset_size(&scheme, 100_000, 50, 400), 400);
    }

    #[test]
    fn per_image_pricing_has_interior_optimum() {
        let scheme = CostScheme::per_image(0.02, 0.002);
        let best = optimal_subset_size(&scheme, 100_000, 50, 400);
        assert!(
            (5..350).contains(&best),
            "expected an interior optimum, got {best}"
        );
        // And it really is no worse than the endpoints.
        let cost = |n| scheme.bound_cost(100_000, n, 50);
        assert!(cost(best) <= cost(1));
        assert!(cost(best) <= cost(400));
    }

    #[test]
    fn heavier_surcharge_shrinks_optimal_n() {
        let light = CostScheme::per_image(0.02, 0.0005);
        let heavy = CostScheme::per_image(0.02, 0.01);
        let n_light = optimal_subset_size(&light, 100_000, 50, 400);
        let n_heavy = optimal_subset_size(&heavy, 100_000, 50, 400);
        assert!(
            n_heavy <= n_light,
            "heavier per-image cost should favour smaller sets: {n_heavy} vs {n_light}"
        );
    }

    #[test]
    fn bound_cost_decreasing_then_increasing_under_surcharge() {
        let scheme = CostScheme::per_image(0.02, 0.002);
        let c10 = scheme.bound_cost(100_000, 10, 50);
        let best = optimal_subset_size(&scheme, 100_000, 50, 400);
        let cbest = scheme.bound_cost(100_000, best, 50);
        let c400 = scheme.bound_cost(100_000, 400, 50);
        assert!(cbest <= c10 && cbest <= c400);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_n_bound_panics() {
        CostScheme::fixed(0.1).bound_cost(100, 0, 5);
    }
}
