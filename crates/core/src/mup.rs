//! Maximal Uncovered Patterns (MUPs) — the coverage machinery the paper
//! inherits from Asudeh et al. (ICDE 2019), reference \[4\].
//!
//! A pattern `P` is **uncovered** when fewer than `τ` objects match it, and
//! a **MUP** when it is uncovered while every parent is covered. The set of
//! MUPs is a compact certificate of everything that is uncovered: a pattern
//! is uncovered iff some MUP generalizes it... — precisely the other way
//! around: iff it is *specialized by no covered ancestor*, i.e. iff some MUP
//! generalizes it or it lies below a MUP. Concretely: every uncovered
//! pattern has a MUP ancestor-or-self.
//!
//! Two entry points:
//!
//! * [`mups_from_labels`] — the classic fully-labeled-data case (the
//!   baseline's second step: label everything, then detect).
//! * [`mups_from_counts`] — from exact counts of the fully-specified
//!   subgroups, as produced by the crowd algorithms.
//!
//! Detection runs on the **dense lattice index** (see
//! [`PatternGraph`]): one bottom-up prime-child pass aggregates every
//! pattern's population in O(edges), and one forward pass over dense ids
//! folds the coverage flags and the parent check together — no pattern is
//! ever hashed. The historical `HashMap`-keyed implementation survives as
//! [`mups_from_counts_baseline`], the reference the dense path is verified
//! against (equivalence proptest below) and benchmarked against
//! (`cvg-bench`'s `mup` bench and the `giant_audit` example).

use crate::pattern::Pattern;
use crate::pattern_graph::PatternGraph;
use crate::schema::{AttributeSchema, Labels};
use std::collections::HashMap;

/// Exact population counts for fully-specified subgroups.
pub type FullGroupCounts = HashMap<Pattern, usize>;

/// Tallies fully-specified subgroup counts from labeled data.
pub fn count_full_groups(labels: &[Labels], schema: &AttributeSchema) -> FullGroupCounts {
    let mut counts: FullGroupCounts = HashMap::with_capacity(schema.num_full_groups());
    for l in labels {
        debug_assert!(schema.validate_labels(l).is_ok());
        *counts.entry(Pattern::fully_specified(l)).or_insert(0) += 1;
    }
    counts
}

/// Population of an arbitrary pattern = sum over its fully-specified
/// descendants' counts (served from the graph's precomputed descendant
/// slice — no allocation).
pub fn pattern_count(graph: &PatternGraph, counts: &FullGroupCounts, p: &Pattern) -> usize {
    graph
        .full_descendants(p)
        .iter()
        .map(|fg| counts.get(fg).copied().unwrap_or(0))
        .sum()
}

/// Finds all MUPs given exact fully-specified subgroup counts.
///
/// Dense-lattice formulation: every pattern's population comes from one
/// bottom-up prime-child sum ([`PatternGraph::pattern_counts`], O(edges)),
/// then a single forward pass over dense ids folds each pattern's coverage
/// flag and its parents' (parents always carry smaller ids, so the flag
/// vector is already filled where the parent check reads it). A pattern is
/// a MUP when its own count is below `tau` and every parent's count reaches
/// `tau`; the root (all-`X`) pattern has no parents and is a MUP when the
/// whole dataset is smaller than `tau`. Output order is id order — the same
/// root-first, level-major order the `HashMap` formulation produced, so
/// verdicts are byte-identical to [`mups_from_counts_baseline`].
pub fn mups_from_counts(
    schema: &AttributeSchema,
    counts: &FullGroupCounts,
    tau: usize,
) -> Vec<Pattern> {
    let graph = PatternGraph::new(schema);
    let pattern_counts = graph.pattern_counts(counts);
    let mut covered = vec![false; graph.len()];
    let mut mups = Vec::new();
    for (id, p) in graph.iter().enumerate() {
        let is_covered = pattern_counts[id] >= tau;
        covered[id] = is_covered;
        if !is_covered
            && graph
                .parents_of(id as u32)
                .iter()
                .all(|parent| covered[*parent as usize])
        {
            mups.push(*p);
        }
    }
    mups
}

/// The historical `HashMap`-keyed MUP detector: per-pattern descendant
/// scans (O(patterns × full groups)) with patterns re-hashed as map keys.
///
/// Kept as the reference implementation the dense path is proptested
/// against, and as the baseline of the `mup` criterion bench and the
/// `giant_audit` example — a regression in the dense path surfaces as the
/// two timings converging.
pub fn mups_from_counts_baseline(
    schema: &AttributeSchema,
    counts: &FullGroupCounts,
    tau: usize,
) -> Vec<Pattern> {
    let graph = PatternGraph::new(schema);
    let mut covered: HashMap<Pattern, bool> = HashMap::with_capacity(graph.len());
    for p in graph.iter() {
        covered.insert(*p, pattern_count(&graph, counts, p) >= tau);
    }
    let mut mups = Vec::new();
    for p in graph.iter() {
        if covered[p] {
            continue;
        }
        if p.parents().iter().all(|parent| covered[parent]) {
            mups.push(*p);
        }
    }
    mups
}

/// Finds all MUPs of fully-labeled data — the off-the-shelf technique the
/// paper's baseline would apply after labeling the whole dataset.
pub fn mups_from_labels(labels: &[Labels], schema: &AttributeSchema, tau: usize) -> Vec<Pattern> {
    let counts = count_full_groups(labels, schema);
    mups_from_counts(schema, &counts, tau)
}

/// True when `p` is uncovered according to a MUP set: some MUP
/// generalizes `p` (then `p` is the MUP itself or one of its descendants).
pub fn uncovered_by_mups(mups: &[Pattern], p: &Pattern) -> bool {
    mups.iter().any(|m| m.generalizes(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use proptest::prelude::*;

    fn schema_gender_race() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::new("race", ["white", "black", "hispanic", "asian"]).unwrap(),
        ])
        .unwrap()
    }

    fn labels_from_counts(
        schema: &AttributeSchema,
        counts: &[(&str, &str, &str, &str, usize)],
    ) -> Vec<Labels> {
        let mut out = Vec::new();
        for (a1, v1, a2, v2, c) in counts {
            let l = schema.labels(&[(*a1, *v1), (*a2, *v2)]).unwrap();
            out.extend(std::iter::repeat_n(l, *c));
        }
        out
    }

    /// The paper's §4 example: 15 Asian-Female + 20 Asian-Male < τ = 50 ⇒
    /// X-asian is uncovered too; with 28 + 32 it is covered.
    #[test]
    fn paper_asian_example() {
        let schema = schema_gender_race();
        let mut base = labels_from_counts(
            &schema,
            &[
                ("gender", "male", "race", "white", 500),
                ("gender", "female", "race", "white", 500),
                ("gender", "male", "race", "black", 100),
                ("gender", "female", "race", "black", 100),
                ("gender", "male", "race", "hispanic", 100),
                ("gender", "female", "race", "hispanic", 100),
            ],
        );
        let uncovered_case = {
            let mut l = base.clone();
            l.extend(labels_from_counts(
                &schema,
                &[
                    ("gender", "female", "race", "asian", 15),
                    ("gender", "male", "race", "asian", 20),
                ],
            ));
            mups_from_labels(&l, &schema, 50)
        };
        let x_asian = schema.pattern(&[("race", "asian")]).unwrap();
        assert!(
            uncovered_case.contains(&x_asian),
            "X-asian should be the MUP, got {uncovered_case:?}"
        );
        // Its children are uncovered but NOT maximal.
        let fem_asian = schema
            .pattern(&[("gender", "female"), ("race", "asian")])
            .unwrap();
        assert!(!uncovered_case.contains(&fem_asian));
        assert!(uncovered_by_mups(&uncovered_case, &fem_asian));

        base.extend(labels_from_counts(
            &schema,
            &[
                ("gender", "female", "race", "asian", 28),
                ("gender", "male", "race", "asian", 32),
            ],
        ));
        let covered_case = mups_from_labels(&base, &schema, 50);
        assert!(!covered_case.contains(&x_asian));
        // The children stay individually uncovered: they are the MUPs now.
        assert!(covered_case.contains(&fem_asian));
    }

    #[test]
    fn empty_dataset_root_is_the_only_mup() {
        let schema = schema_gender_race();
        let mups = mups_from_labels(&[], &schema, 1);
        assert_eq!(mups, vec![Pattern::all_unspecified(2)]);
    }

    #[test]
    fn fully_covered_dataset_has_no_mups() {
        let schema = schema_gender_race();
        let mut labels = Vec::new();
        for g in schema.full_groups() {
            let l = Labels::new(&[g.get(0).unwrap(), g.get(1).unwrap()]);
            labels.extend(std::iter::repeat_n(l, 60));
        }
        assert!(mups_from_labels(&labels, &schema, 50).is_empty());
    }

    #[test]
    fn tau_zero_means_everything_covered() {
        let schema = schema_gender_race();
        assert!(mups_from_labels(&[], &schema, 0).is_empty());
    }

    #[test]
    fn pattern_count_sums_descendants() {
        let schema = schema_gender_race();
        let graph = PatternGraph::new(&schema);
        let labels = labels_from_counts(
            &schema,
            &[
                ("gender", "female", "race", "asian", 3),
                ("gender", "male", "race", "asian", 5),
                ("gender", "female", "race", "white", 7),
            ],
        );
        let counts = count_full_groups(&labels, &schema);
        let x_asian = schema.pattern(&[("race", "asian")]).unwrap();
        assert_eq!(pattern_count(&graph, &counts, &x_asian), 8);
        let female_x = schema.pattern(&[("gender", "female")]).unwrap();
        assert_eq!(pattern_count(&graph, &counts, &female_x), 10);
        let root = Pattern::all_unspecified(2);
        assert_eq!(pattern_count(&graph, &counts, &root), 15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The dense-id detector and the HashMap baseline return the
        /// byte-identical MUP list (content *and* order) on random
        /// compositions over a 2×4×3 schema.
        #[test]
        fn prop_dense_equals_baseline(
            cells in proptest::collection::vec(0usize..120, 24),
            tau in 1usize..80,
        ) {
            let schema = AttributeSchema::new(vec![
                Attribute::binary("gender", "m", "f").unwrap(),
                Attribute::new("race", ["w", "b", "h", "a"]).unwrap(),
                Attribute::new("age", ["c", "ad", "s"]).unwrap(),
            ]).unwrap();
            let graph = PatternGraph::new(&schema);
            let counts: FullGroupCounts = graph
                .full_groups()
                .iter()
                .zip(&cells)
                .map(|(p, c)| (*p, *c))
                .collect();
            prop_assert_eq!(
                mups_from_counts(&schema, &counts, tau),
                mups_from_counts_baseline(&schema, &counts, tau)
            );
        }

        /// MUP soundness & completeness on random datasets over a 2×3 schema:
        /// 1. every MUP is uncovered with all parents covered;
        /// 2. the MUP set is an antichain;
        /// 3. every uncovered pattern has a MUP ancestor-or-self.
        #[test]
        fn prop_mup_invariants(
            raw in proptest::collection::vec((0u8..2, 0u8..3), 0..300),
            tau in 1usize..40,
        ) {
            let schema = AttributeSchema::new(vec![
                Attribute::binary("a", "a0", "a1").unwrap(),
                Attribute::new("b", ["b0", "b1", "b2"]).unwrap(),
            ]).unwrap();
            let labels: Vec<Labels> = raw.iter().map(|(a, b)| Labels::new(&[*a, *b])).collect();
            let graph = PatternGraph::new(&schema);
            let counts = count_full_groups(&labels, &schema);
            let mups = mups_from_labels(&labels, &schema, tau);

            for m in &mups {
                prop_assert!(pattern_count(&graph, &counts, m) < tau);
                for parent in m.parents() {
                    prop_assert!(pattern_count(&graph, &counts, &parent) >= tau);
                }
            }
            for (i, a) in mups.iter().enumerate() {
                for (j, b) in mups.iter().enumerate() {
                    if i != j {
                        prop_assert!(!a.generalizes(b), "{a} generalizes {b}");
                    }
                }
            }
            for p in graph.iter() {
                let uncovered = pattern_count(&graph, &counts, p) < tau;
                prop_assert_eq!(
                    uncovered,
                    uncovered_by_mups(&mups, p),
                    "pattern {} misclassified", p
                );
            }
        }
    }
}
