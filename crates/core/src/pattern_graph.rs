//! The pattern graph (paper Figure 5): every pattern over a schema,
//! organized by level — with a **dense index** over the whole lattice.
//!
//! For a schema with cardinalities `c1..cd` there are `Π (ci + 1)` patterns
//! (each cell is a value or `X`). Level `ℓ` holds the patterns with exactly
//! `ℓ` specified cells; level 0 is the root `XX…X`, level `d` the
//! fully-specified subgroups.
//!
//! ## The dense lattice index
//!
//! Construction assigns every pattern a stable **[`PatternId`]**: a dense
//! `u32` in root-first, level-major order — exactly the order
//! [`PatternGraph::iter`] yields — so algorithms can replace
//! `HashMap<Pattern, _>` keying with plain `Vec` indexing. Around the ids
//! the graph precomputes CSR-style index vectors (one flat edge array plus
//! an offsets array per relation):
//!
//! * **parents / children** — the lattice adjacency
//!   ([`PatternGraph::parents_of`], [`PatternGraph::children_of`]);
//! * **prime children** — the children along the *first unspecified*
//!   attribute only ([`PatternGraph::prime_children_ids`]). These partition a
//!   pattern's fully-specified descendants, so one bottom-up pass over
//!   prime-child edges aggregates any per-cell quantity (counts, coverage
//!   flags) for **every** pattern in O(edges) — the engine behind
//!   [`PatternGraph::pattern_counts`] and the dense rewrite of
//!   [`mups_from_counts`](crate::mup::mups_from_counts) and the
//!   intersectional propagation;
//! * **full descendants** — the fully-specified subgroups each pattern
//!   generalizes, as a borrowed slice ([`PatternGraph::full_descendants`])
//!   and as leaf indices into [`PatternGraph::full_groups`]
//!   ([`PatternGraph::full_descendant_leaves`]). No call allocates.
//!
//! Id lookup is O(d) and hash-free: a pattern's cells form a mixed-radix
//! *code* (`X` is the extra digit), and a `code → id` table maps it to the
//! level-major id ([`PatternGraph::pattern_id`]).

use crate::mup::FullGroupCounts;
use crate::pattern::Pattern;
use crate::schema::AttributeSchema;

/// Dense identifier of a pattern within one [`PatternGraph`]: `0..len()`,
/// assigned in root-first, level-major iteration order (the root `XX…X` is
/// id 0; the fully-specified subgroups occupy the last ids).
pub type PatternId = u32;

/// Materialized pattern lattice for one schema, with dense ids and
/// precomputed adjacency (see the module docs).
#[derive(Debug, Clone)]
pub struct PatternGraph {
    d: usize,
    cards: Vec<usize>,
    /// Every pattern, root first, level by level (index = [`PatternId`]).
    patterns: Vec<Pattern>,
    /// `level_offsets[ℓ]..level_offsets[ℓ+1]` spans level `ℓ` in `patterns`.
    level_offsets: Vec<usize>,
    /// Mixed-radix pattern code → dense id (a bijection; see `code_of`).
    id_by_code: Vec<PatternId>,
    parent_edges: Vec<PatternId>,
    parent_offsets: Vec<u32>,
    child_edges: Vec<PatternId>,
    child_offsets: Vec<u32>,
    prime_edges: Vec<PatternId>,
    prime_offsets: Vec<u32>,
    full_desc: Vec<Pattern>,
    full_desc_leaves: Vec<u32>,
    full_desc_offsets: Vec<u32>,
}

impl PatternGraph {
    /// Enumerates every pattern over `schema` and builds the dense index.
    pub fn new(schema: &AttributeSchema) -> Self {
        let d = schema.d();
        let cards = schema.cardinalities();
        let mut by_level: Vec<Vec<Pattern>> = vec![Vec::new(); d + 1];
        // Odometer over (card + 1) symbols per cell; the extra symbol is X.
        let mut cells = vec![0usize; d];
        'enumerate: loop {
            let mut p = Pattern::all_unspecified(d);
            for (i, &c) in cells.iter().enumerate() {
                if c < cards[i] {
                    p = p.with(i, Some(c as u8));
                }
            }
            by_level[p.level()].push(p);
            let mut i = d;
            loop {
                if i == 0 {
                    break 'enumerate;
                }
                i -= 1;
                cells[i] += 1;
                if cells[i] <= cards[i] {
                    break;
                }
                cells[i] = 0;
            }
        }

        let mut level_offsets = Vec::with_capacity(d + 2);
        level_offsets.push(0);
        let mut patterns: Vec<Pattern> = Vec::new();
        for level in &by_level {
            patterns.extend_from_slice(level);
            level_offsets.push(patterns.len());
        }

        let mut graph = Self {
            d,
            cards,
            patterns,
            level_offsets,
            id_by_code: Vec::new(),
            parent_edges: Vec::new(),
            parent_offsets: Vec::new(),
            child_edges: Vec::new(),
            child_offsets: Vec::new(),
            prime_edges: Vec::new(),
            prime_offsets: Vec::new(),
            full_desc: Vec::new(),
            full_desc_leaves: Vec::new(),
            full_desc_offsets: Vec::new(),
        };
        graph.build_code_index();
        graph.build_adjacency();
        graph.build_full_descendants();
        graph
    }

    /// The mixed-radix code of a pattern: cell `i` contributes its value (or
    /// `cards[i]` for `X`) at the cell's stride. Codes are a bijection onto
    /// `0..len()`, so the code table replaces a `HashMap<Pattern, id>`.
    /// `None` when the pattern does not belong to this lattice (wrong arity
    /// or a value outside the schema's cardinality).
    fn code_of(&self, p: &Pattern) -> Option<usize> {
        if p.d() != self.d {
            return None;
        }
        let mut code = 0usize;
        for i in 0..self.d {
            let radix = self.cards[i] + 1;
            let symbol = match p.get(i) {
                None => self.cards[i],
                Some(v) => {
                    let v = usize::from(v);
                    if v >= self.cards[i] {
                        return None;
                    }
                    v
                }
            };
            code = code * radix + symbol;
        }
        Some(code)
    }

    fn build_code_index(&mut self) {
        self.id_by_code = vec![0; self.patterns.len()];
        for (id, p) in self.patterns.iter().enumerate() {
            let code = {
                // Inline of `code_of` over known-valid patterns.
                let mut code = 0usize;
                for i in 0..self.d {
                    let radix = self.cards[i] + 1;
                    let symbol = p.get(i).map_or(self.cards[i], usize::from);
                    code = code * radix + symbol;
                }
                code
            };
            self.id_by_code[code] = id as PatternId;
        }
    }

    fn build_adjacency(&mut self) {
        let n = self.patterns.len();
        let mut parent_offsets = Vec::with_capacity(n + 1);
        let mut parent_edges = Vec::new();
        let mut child_offsets = vec![0u32; n + 1];
        let mut prime_offsets = Vec::with_capacity(n + 1);
        let mut prime_edges = Vec::new();

        parent_offsets.push(0u32);
        for p in &self.patterns {
            for i in 0..self.d {
                if p.get(i).is_some() {
                    let parent = p.with(i, None);
                    parent_edges.push(self.must_id(&parent));
                }
            }
            parent_offsets.push(parent_edges.len() as u32);
        }

        // Children are the reverse of parents; count then fill keeps the
        // edges grouped per parent in (attribute, value) order.
        for p in &self.patterns {
            let id = self.must_id(p) as usize;
            let children: u32 = (0..self.d)
                .filter(|i| p.get(*i).is_none())
                .map(|i| self.cards[i] as u32)
                .sum();
            child_offsets[id + 1] = children;
        }
        for i in 0..n {
            child_offsets[i + 1] += child_offsets[i];
        }
        let mut child_edges = vec![0 as PatternId; child_offsets[n] as usize];
        let mut cursor: Vec<u32> = child_offsets[..n].to_vec();
        for (id, p) in self.patterns.iter().enumerate() {
            for i in 0..self.d {
                if p.get(i).is_none() {
                    for v in 0..self.cards[i] {
                        let child = p.with(i, Some(v as u8));
                        child_edges[cursor[id] as usize] = self.must_id(&child);
                        cursor[id] += 1;
                    }
                }
            }
        }

        prime_offsets.push(0u32);
        for p in &self.patterns {
            if let Some(i) = (0..self.d).find(|i| p.get(*i).is_none()) {
                for v in 0..self.cards[i] {
                    prime_edges.push(self.must_id(&p.with(i, Some(v as u8))));
                }
            }
            prime_offsets.push(prime_edges.len() as u32);
        }

        self.parent_edges = parent_edges;
        self.parent_offsets = parent_offsets;
        self.child_edges = child_edges;
        self.child_offsets = child_offsets;
        self.prime_edges = prime_edges;
        self.prime_offsets = prime_offsets;
    }

    /// Builds the full-descendant CSR bottom-up over prime children: a full
    /// pattern's list is itself; any other pattern's list is the
    /// concatenation of its prime children's lists — which reproduces
    /// `full_groups()` order (lexicographic over the free cells) because
    /// prime children split on the first unspecified attribute.
    fn build_full_descendants(&mut self) {
        let n = self.patterns.len();
        let mut counts = vec![0u32; n];
        for id in (0..n).rev() {
            let prime = self.prime_children_ids(id as PatternId);
            counts[id] = if prime.is_empty() {
                1
            } else {
                prime.iter().map(|c| counts[*c as usize]).sum()
            };
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for id in 0..n {
            offsets.push(offsets[id] + counts[id]);
        }
        let total = offsets[n] as usize;
        let mut full_desc = vec![Pattern::all_unspecified(self.d); total];
        let mut full_desc_leaves = vec![0u32; total];
        let full_start = self.level_offsets[self.d];
        for id in (0..n).rev() {
            let at = offsets[id] as usize;
            let prime: &[PatternId] = {
                let lo = self.prime_offsets[id] as usize;
                let hi = self.prime_offsets[id + 1] as usize;
                &self.prime_edges[lo..hi]
            };
            if prime.is_empty() {
                full_desc[at] = self.patterns[id];
                full_desc_leaves[at] = (id - full_start) as u32;
            } else {
                let mut cursor = at;
                // Children carry higher ids, so their segments are filled
                // already when iterating ids in reverse.
                for &c in prime {
                    let lo = offsets[c as usize] as usize;
                    let len = counts[c as usize] as usize;
                    full_desc.copy_within(lo..lo + len, cursor);
                    full_desc_leaves.copy_within(lo..lo + len, cursor);
                    cursor += len;
                }
            }
        }
        self.full_desc = full_desc;
        self.full_desc_leaves = full_desc_leaves;
        self.full_desc_offsets = offsets;
    }

    fn must_id(&self, p: &Pattern) -> PatternId {
        self.id_by_code[self.code_of(p).expect("pattern belongs to the lattice")]
    }

    /// Arity `d` of the underlying schema.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Total number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// True when the graph holds no patterns (never, for valid schemas).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Patterns with exactly `level` specified cells.
    pub fn at_level(&self, level: usize) -> &[Pattern] {
        &self.patterns[self.level_offsets[level]..self.level_offsets[level + 1]]
    }

    /// Every pattern, root first, level by level — i.e. in [`PatternId`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = &Pattern> {
        self.patterns.iter()
    }

    /// The fully-specified subgroups (bottom level). Their [`PatternId`]s
    /// are the last `full_groups().len()` ids; position `k` in this slice
    /// is **leaf index** `k` (see [`PatternGraph::full_descendant_leaves`]).
    pub fn full_groups(&self) -> &[Pattern] {
        self.at_level(self.d)
    }

    /// The dense id of `p`, or `None` when `p` is not a pattern of this
    /// lattice (wrong arity, or a value outside the schema). O(d), hash-free.
    pub fn pattern_id(&self, p: &Pattern) -> Option<PatternId> {
        self.code_of(p).map(|code| self.id_by_code[code])
    }

    /// The pattern with dense id `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn pattern_at(&self, id: PatternId) -> Pattern {
        self.patterns[id as usize]
    }

    /// The leaf index of a fully-specified pattern — its position in
    /// [`PatternGraph::full_groups`] — or `None` for non-full or foreign
    /// patterns.
    pub fn leaf_index(&self, p: &Pattern) -> Option<usize> {
        let id = self.pattern_id(p)? as usize;
        let full_start = self.level_offsets[self.d];
        (id >= full_start).then(|| id - full_start)
    }

    /// Ids of the parents of pattern `id` (one per specified cell).
    pub fn parents_of(&self, id: PatternId) -> &[PatternId] {
        let lo = self.parent_offsets[id as usize] as usize;
        let hi = self.parent_offsets[id as usize + 1] as usize;
        &self.parent_edges[lo..hi]
    }

    /// Ids of the children of pattern `id` (one per unspecified cell ×
    /// value of that attribute).
    pub fn children_of(&self, id: PatternId) -> &[PatternId] {
        let lo = self.child_offsets[id as usize] as usize;
        let hi = self.child_offsets[id as usize + 1] as usize;
        &self.child_edges[lo..hi]
    }

    /// Ids of the children along the **first unspecified** attribute only.
    /// Empty exactly for fully-specified patterns. Prime children partition
    /// a pattern's fully-specified descendants, so summing any per-pattern
    /// quantity over prime children bottom-up aggregates it exactly — the
    /// O(edges) replacement for per-pattern descendant scans.
    pub fn prime_children_ids(&self, id: PatternId) -> &[PatternId] {
        let lo = self.prime_offsets[id as usize] as usize;
        let hi = self.prime_offsets[id as usize + 1] as usize;
        &self.prime_edges[lo..hi]
    }

    /// The fully-specified descendants of `p` (every full group that `p`
    /// generalizes), as a **borrowed slice** of the precomputed index — no
    /// allocation, ordered like [`PatternGraph::full_groups`]. For a
    /// fully-specified `p` this is `[p]` itself; for a pattern that does not
    /// belong to this lattice it is empty.
    pub fn full_descendants(&self, p: &Pattern) -> &[Pattern] {
        match self.pattern_id(p) {
            Some(id) => self.full_descendants_of(id),
            None => &[],
        }
    }

    /// [`PatternGraph::full_descendants`] by dense id.
    pub fn full_descendants_of(&self, id: PatternId) -> &[Pattern] {
        let lo = self.full_desc_offsets[id as usize] as usize;
        let hi = self.full_desc_offsets[id as usize + 1] as usize;
        &self.full_desc[lo..hi]
    }

    /// Leaf indices (positions in [`PatternGraph::full_groups`]) of the
    /// fully-specified descendants of pattern `id` — the index to use
    /// against dense per-cell vectors.
    pub fn full_descendant_leaves(&self, id: PatternId) -> &[u32] {
        let lo = self.full_desc_offsets[id as usize] as usize;
        let hi = self.full_desc_offsets[id as usize + 1] as usize;
        &self.full_desc_leaves[lo..hi]
    }

    /// Converts sparse full-group counts into the dense per-leaf vector
    /// (indexed like [`PatternGraph::full_groups`]). Foreign keys — patterns
    /// not in this lattice or not fully specified — are ignored, matching
    /// the historical behaviour of summing only known descendants.
    pub fn dense_leaf_counts(&self, counts: &FullGroupCounts) -> Vec<usize> {
        let mut leaves = vec![0usize; self.full_groups().len()];
        for (p, k) in counts {
            if let Some(leaf) = self.leaf_index(p) {
                leaves[leaf] += k;
            }
        }
        leaves
    }

    /// The population of **every** pattern (indexed by [`PatternId`]) from
    /// dense per-leaf counts, via one bottom-up prime-child sum pass —
    /// O(edges) total, replacing the O(patterns × full groups) per-pattern
    /// descendant scans.
    pub fn pattern_counts_from_leaves(&self, leaves: &[usize]) -> Vec<usize> {
        assert_eq!(
            leaves.len(),
            self.full_groups().len(),
            "leaf count vector must cover every fully-specified subgroup"
        );
        let n = self.patterns.len();
        let full_start = self.level_offsets[self.d];
        let mut counts = vec![0usize; n];
        counts[full_start..].copy_from_slice(leaves);
        for id in (0..full_start).rev() {
            counts[id] = self
                .prime_children_ids(id as PatternId)
                .iter()
                .map(|c| counts[*c as usize])
                .sum();
        }
        counts
    }

    /// The population of every pattern from sparse full-group counts (see
    /// [`PatternGraph::pattern_counts_from_leaves`]).
    pub fn pattern_counts(&self, counts: &FullGroupCounts) -> Vec<usize> {
        self.pattern_counts_from_leaves(&self.dense_leaf_counts(counts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema_gender_race() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::new("race", ["white", "black", "hispanic", "asian"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn figure5_lattice_shape() {
        // Paper Figure 5: gender × race. Level 0: X-X. Level 1: 2 gender
        // patterns + 4 race patterns. Level 2: 8 fully-specified subgroups.
        let g = PatternGraph::new(&schema_gender_race());
        assert_eq!(g.at_level(0).len(), 1);
        assert_eq!(g.at_level(1).len(), 6);
        assert_eq!(g.at_level(2).len(), 8);
        assert_eq!(g.len(), 15); // (2+1)·(4+1)
        assert_eq!(g.full_groups().len(), 8);
    }

    #[test]
    fn levels_partition_all_patterns() {
        let g = PatternGraph::new(&schema_gender_race());
        let mut seen = std::collections::HashSet::new();
        for p in g.iter() {
            assert!(seen.insert(*p), "duplicate pattern {p}");
        }
        assert_eq!(seen.len(), g.len());
        for level in 0..=g.d() {
            for p in g.at_level(level) {
                assert_eq!(p.level(), level);
            }
        }
    }

    #[test]
    fn full_descendants_of_level1() {
        let schema = schema_gender_race();
        let g = PatternGraph::new(&schema);
        let female_x = schema.pattern(&[("gender", "female")]).unwrap();
        let desc = g.full_descendants(&female_x);
        assert_eq!(desc.len(), 4); // female-{white,black,hispanic,asian}
        for d in desc {
            assert!(female_x.generalizes(d));
            assert!(d.is_fully_specified());
        }
        // Root generalizes everything.
        let root = Pattern::all_unspecified(2);
        assert_eq!(g.full_descendants(&root).len(), 8);
        // A full group's only full descendant is itself.
        let fg = g.full_groups()[0];
        assert_eq!(g.full_descendants(&fg), vec![fg]);
    }

    #[test]
    fn three_binary_attributes() {
        let schema = AttributeSchema::new(vec![
            Attribute::binary("a", "0", "1").unwrap(),
            Attribute::binary("b", "0", "1").unwrap(),
            Attribute::binary("c", "0", "1").unwrap(),
        ])
        .unwrap();
        let g = PatternGraph::new(&schema);
        assert_eq!(g.len(), 27); // 3^3
        assert_eq!(g.full_groups().len(), 8);
        assert_eq!(g.at_level(1).len(), 6);
        assert_eq!(g.at_level(2).len(), 12);
    }

    #[test]
    fn ids_are_iteration_order_and_lookup_roundtrips() {
        let g = PatternGraph::new(&schema_gender_race());
        for (i, p) in g.iter().enumerate() {
            assert_eq!(g.pattern_id(p), Some(i as PatternId), "{p}");
            assert_eq!(g.pattern_at(i as PatternId), *p);
        }
        // Foreign patterns resolve to no id.
        assert_eq!(g.pattern_id(&Pattern::parse("XXX").unwrap()), None);
        assert_eq!(g.pattern_id(&Pattern::parse("X9").unwrap()), None);
        assert!(g
            .full_descendants(&Pattern::parse("X9").unwrap())
            .is_empty());
    }

    #[test]
    fn adjacency_matches_pattern_arithmetic() {
        let schema = schema_gender_race();
        let g = PatternGraph::new(&schema);
        for (id, p) in g.iter().enumerate() {
            let id = id as PatternId;
            let parents: Vec<Pattern> = g.parents_of(id).iter().map(|i| g.pattern_at(*i)).collect();
            assert_eq!(parents, p.parents(), "parents of {p}");
            let children: Vec<Pattern> =
                g.children_of(id).iter().map(|i| g.pattern_at(*i)).collect();
            assert_eq!(children, p.children(&schema), "children of {p}");
            // Prime children: the slice of children along the first
            // unspecified attribute; empty iff fully specified.
            let prime = g.prime_children_ids(id);
            if p.is_fully_specified() {
                assert!(prime.is_empty());
            } else {
                let first_unspec = (0..p.d()).find(|i| p.get(*i).is_none()).unwrap();
                let expected: Vec<PatternId> = (0..schema.attr(first_unspec).cardinality())
                    .map(|v| g.pattern_id(&p.with(first_unspec, Some(v as u8))).unwrap())
                    .collect();
                assert_eq!(prime, expected, "prime children of {p}");
            }
        }
    }

    #[test]
    fn full_descendants_preserve_full_group_order() {
        let schema = schema_gender_race();
        let g = PatternGraph::new(&schema);
        for (id, p) in g.iter().enumerate() {
            let via_filter: Vec<Pattern> = g
                .full_groups()
                .iter()
                .filter(|fg| p.generalizes(fg))
                .copied()
                .collect();
            assert_eq!(
                g.full_descendants_of(id as PatternId),
                via_filter.as_slice(),
                "descendants of {p}"
            );
            // Leaf indices point at the same patterns.
            let via_leaves: Vec<Pattern> = g
                .full_descendant_leaves(id as PatternId)
                .iter()
                .map(|l| g.full_groups()[*l as usize])
                .collect();
            assert_eq!(via_leaves, via_filter, "leaves of {p}");
        }
    }

    #[test]
    fn pattern_counts_match_descendant_sums() {
        let schema = schema_gender_race();
        let g = PatternGraph::new(&schema);
        // Distinct count per cell so any aggregation slip shows.
        let leaves: Vec<usize> = (0..g.full_groups().len()).map(|i| 1 << i).collect();
        let counts = g.pattern_counts_from_leaves(&leaves);
        for (id, p) in g.iter().enumerate() {
            let expected: usize = g
                .full_descendant_leaves(id as PatternId)
                .iter()
                .map(|l| leaves[*l as usize])
                .sum();
            assert_eq!(counts[id], expected, "count of {p}");
        }
        // Root sums everything.
        assert_eq!(counts[0], leaves.iter().sum::<usize>());
    }
}
