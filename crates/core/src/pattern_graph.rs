//! The pattern graph (paper Figure 5): every pattern over a schema,
//! organized by level.
//!
//! For a schema with cardinalities `c1..cd` there are `Π (ci + 1)` patterns
//! (each cell is a value or `X`). Level `ℓ` holds the patterns with exactly
//! `ℓ` specified cells; level 0 is the root `XX…X`, level `d` the
//! fully-specified subgroups.

use crate::pattern::Pattern;
use crate::schema::AttributeSchema;

/// Materialized pattern lattice for one schema.
#[derive(Debug, Clone)]
pub struct PatternGraph {
    d: usize,
    by_level: Vec<Vec<Pattern>>,
}

impl PatternGraph {
    /// Enumerates every pattern over `schema`.
    pub fn new(schema: &AttributeSchema) -> Self {
        let d = schema.d();
        let cards = schema.cardinalities();
        let mut by_level: Vec<Vec<Pattern>> = vec![Vec::new(); d + 1];
        // Odometer over (card + 1) symbols per cell; the extra symbol is X.
        let mut cells = vec![0usize; d];
        loop {
            let mut p = Pattern::all_unspecified(d);
            for (i, &c) in cells.iter().enumerate() {
                if c < cards[i] {
                    p = p.with(i, Some(c as u8));
                }
            }
            by_level[p.level()].push(p);
            let mut i = d;
            loop {
                if i == 0 {
                    return Self { d, by_level };
                }
                i -= 1;
                cells[i] += 1;
                if cells[i] <= cards[i] {
                    break;
                }
                cells[i] = 0;
            }
        }
    }

    /// Arity `d` of the underlying schema.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Total number of patterns.
    pub fn len(&self) -> usize {
        self.by_level.iter().map(Vec::len).sum()
    }

    /// True when the graph holds no patterns (never, for valid schemas).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Patterns with exactly `level` specified cells.
    pub fn at_level(&self, level: usize) -> &[Pattern] {
        &self.by_level[level]
    }

    /// Every pattern, root first, level by level.
    pub fn iter(&self) -> impl Iterator<Item = &Pattern> {
        self.by_level.iter().flatten()
    }

    /// The fully-specified subgroups (bottom level).
    pub fn full_groups(&self) -> &[Pattern] {
        &self.by_level[self.d]
    }

    /// The fully-specified descendants of `p` (every full group that `p`
    /// generalizes). For a fully-specified `p` this is `[p]` itself.
    pub fn full_descendants(&self, p: &Pattern) -> Vec<Pattern> {
        self.full_groups()
            .iter()
            .filter(|fg| p.generalizes(fg))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema_gender_race() -> AttributeSchema {
        AttributeSchema::new(vec![
            Attribute::binary("gender", "male", "female").unwrap(),
            Attribute::new("race", ["white", "black", "hispanic", "asian"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn figure5_lattice_shape() {
        // Paper Figure 5: gender × race. Level 0: X-X. Level 1: 2 gender
        // patterns + 4 race patterns. Level 2: 8 fully-specified subgroups.
        let g = PatternGraph::new(&schema_gender_race());
        assert_eq!(g.at_level(0).len(), 1);
        assert_eq!(g.at_level(1).len(), 6);
        assert_eq!(g.at_level(2).len(), 8);
        assert_eq!(g.len(), 15); // (2+1)·(4+1)
        assert_eq!(g.full_groups().len(), 8);
    }

    #[test]
    fn levels_partition_all_patterns() {
        let g = PatternGraph::new(&schema_gender_race());
        let mut seen = std::collections::HashSet::new();
        for p in g.iter() {
            assert!(seen.insert(*p), "duplicate pattern {p}");
        }
        assert_eq!(seen.len(), g.len());
        for level in 0..=g.d() {
            for p in g.at_level(level) {
                assert_eq!(p.level(), level);
            }
        }
    }

    #[test]
    fn full_descendants_of_level1() {
        let schema = schema_gender_race();
        let g = PatternGraph::new(&schema);
        let female_x = schema.pattern(&[("gender", "female")]).unwrap();
        let desc = g.full_descendants(&female_x);
        assert_eq!(desc.len(), 4); // female-{white,black,hispanic,asian}
        for d in &desc {
            assert!(female_x.generalizes(d));
            assert!(d.is_fully_specified());
        }
        // Root generalizes everything.
        let root = Pattern::all_unspecified(2);
        assert_eq!(g.full_descendants(&root).len(), 8);
        // A full group's only full descendant is itself.
        let fg = g.full_groups()[0];
        assert_eq!(g.full_descendants(&fg), vec![fg]);
    }

    #[test]
    fn three_binary_attributes() {
        let schema = AttributeSchema::new(vec![
            Attribute::binary("a", "0", "1").unwrap(),
            Attribute::binary("b", "0", "1").unwrap(),
            Attribute::binary("c", "0", "1").unwrap(),
        ])
        .unwrap();
        let g = PatternGraph::new(&schema);
        assert_eq!(g.len(), 27); // 3^3
        assert_eq!(g.full_groups().len(), 8);
        assert_eq!(g.at_level(1).len(), 6);
        assert_eq!(g.at_level(2).len(), 12);
    }
}
