//! The telemetry plane: metrics registry + job phase tracing, zero deps.
//!
//! Where the dollars and the milliseconds go. A crowdsourced audit platform
//! is only tunable (and only trustworthy) when it can account for itself:
//! which tenants spend crowd tasks, how long HIT rounds take, how long a
//! submitted job waits for a worker, which HTTP endpoints return errors.
//! This module is that account, hand-rolled under the same offline
//! discipline as the rest of the crate — no crates.io, just atomics,
//! stripes and a ring buffer.
//!
//! Three layers share one cheaply-cloneable [`Telemetry`] handle:
//!
//! * **metrics registry** — [`Counter`]s, [`Gauge`]s, fixed-bucket
//!   log-scale [`Histogram`]s (`record_ms` / [`Histogram::percentile`]),
//!   and lock-striped *labeled* counter families (per-endpoint HTTP
//!   request/status counts, per-tenant crowd spend, per-status job
//!   tallies). Everything renders as Prometheus text exposition via
//!   [`Telemetry::render_prometheus`] — `GET /metrics` serves exactly that
//!   string;
//! * **job phase tracing** — a bounded ring of [`TraceEvent`]s with a
//!   monotone `seq`: submit → scheduled → algorithm phases (via the core
//!   [`EngineProbe`](coverage_core::probe::EngineProbe) hook) → store
//!   reuse summary → terminal status. [`Telemetry::timeline`] assembles a
//!   per-job view on demand (`GET /trace/{id}`);
//!   [`Telemetry::events_since`] drains the ring incrementally
//!   (`GET /events?since=seq`), surviving wraparound because `seq` never
//!   resets;
//! * **the off switch** — [`Telemetry::disabled`] makes every record call
//!   a no-op behind one `Option` check, so un-instrumented runs pay
//!   nothing.
//!
//! The hard invariant, carried from the store/scale-out/daemon PRs:
//! telemetry is **strictly read-only**. With tracing on or off, every
//! [`JobReport`](crate::JobReport) field except the wall-clock ones
//! (`wall_ms`, `phases_ms`) is byte-identical — no record call feeds
//! anything back into scheduling, budgeting or answering. The
//! `tests/telemetry.rs` proptest pins this across all five algorithm
//! drivers.
//!
//! ```
//! use coverage_service::telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new(64);
//! telemetry.job_submitted();
//! telemetry.record_queue_wait_ms(3);
//! telemetry.count_http_request("GET", "/stats", 200);
//! telemetry.trace(Some(0), "submit", || "queued at priority 5".to_string());
//! let text = telemetry.render_prometheus();
//! assert!(text.contains("audit_jobs_submitted_total 1"));
//! assert!(text.contains(r#"audit_http_requests_total{method="GET",route="/stats",status="200"} 1"#));
//! let (events, next) = telemetry.events_since(0);
//! assert_eq!(events.len(), 1);
//! assert_eq!(next, 1);
//! ```

use crate::job::JobStatus;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotone event counter (wait-free, relaxed ordering — counts, not
/// synchronization).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up-and-down level (queue depths, running counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Shifts the level by `delta` (negative to decrease).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets: powers of two from `le="1"` up to
/// `le="1048576"` (≈ 17.5 minutes when recording milliseconds). One
/// overflow bucket (`le="+Inf"`) follows.
pub const HISTOGRAM_BUCKETS: usize = 21;

/// A fixed-bucket log-scale histogram: bucket `i` counts observations
/// `≤ 2^i`, with one `+Inf` overflow bucket — cheap enough to record on
/// every dispatch round, expressive enough for latency percentiles
/// spanning microseconds to minutes. Lock-free: each bucket is an atomic.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The inclusive upper bound of finite bucket `i` (`2^i`).
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i
    }

    fn bucket_index(value: u64) -> usize {
        // Smallest i with value <= 2^i; 0 and 1 land in bucket 0.
        let needed = 64 - value.saturating_sub(1).leading_zeros() as usize;
        needed.min(HISTOGRAM_BUCKETS)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a millisecond observation (the dominant use: latencies).
    pub fn record_ms(&self, ms: u64) {
        self.record(ms);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile (0 < p ≤ 100) as the inclusive upper bound of
    /// the bucket holding that rank — an upper estimate no finer than the
    /// bucket resolution (the overflow bucket answers with the exact
    /// maximum). 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return if i < HISTOGRAM_BUCKETS {
                    Self::bucket_bound(i)
                } else {
                    self.max()
                };
            }
        }
        self.max()
    }

    /// Cumulative per-bucket counts in Prometheus `le` order: the finite
    /// bounds, then the `+Inf` total.
    pub fn cumulative_buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(HISTOGRAM_BUCKETS + 1);
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let bound = (i < HISTOGRAM_BUCKETS).then(|| Self::bucket_bound(i));
            out.push((bound, cumulative));
        }
        out
    }

    fn render(&self, name: &str, help: &str, out: &mut String) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (bound, cumulative) in self.cumulative_buckets() {
            match bound {
                Some(le) => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                None => {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                }
            }
        }
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// Number of lock stripes in a labeled counter family. Label cardinality
/// is modest (routes × statuses, tenants), so striping is about update
/// contention from many handler/worker threads, not capacity.
const LABEL_STRIPES: usize = 8;

/// A counter family keyed by label values (e.g. `{method, route, status}`),
/// lock-striped by label hash so concurrent HTTP handlers and workers
/// rarely contend on the same mutex.
#[derive(Debug)]
struct LabeledCounter {
    label_names: &'static [&'static str],
    stripes: Vec<Mutex<HashMap<Vec<String>, u64>>>,
}

impl LabeledCounter {
    fn new(label_names: &'static [&'static str]) -> Self {
        Self {
            label_names,
            stripes: (0..LABEL_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn add(&self, labels: Vec<String>, n: u64) {
        debug_assert_eq!(labels.len(), self.label_names.len());
        let mut hasher = DefaultHasher::new();
        labels.hash(&mut hasher);
        let stripe = (hasher.finish() as usize) % LABEL_STRIPES;
        let mut map = crate::service::lock(&self.stripes[stripe]);
        *map.entry(labels).or_insert(0) += n;
    }

    /// Every `(label values, count)` pair, sorted by label values — a
    /// deterministic order however the stripes filled.
    fn sorted_entries(&self) -> Vec<(Vec<String>, u64)> {
        let mut entries: Vec<(Vec<String>, u64)> = self
            .stripes
            .iter()
            .flat_map(|stripe| {
                crate::service::lock(stripe)
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort();
        entries
    }

    /// Overwrites the value of one label combination — gauge semantics on
    /// the same striped storage (used by `audit_breaker_state`, whose
    /// per-tenant value moves both ways).
    fn set(&self, labels: Vec<String>, value: u64) {
        debug_assert_eq!(labels.len(), self.label_names.len());
        let mut hasher = DefaultHasher::new();
        labels.hash(&mut hasher);
        let stripe = (hasher.finish() as usize) % LABEL_STRIPES;
        let mut map = crate::service::lock(&self.stripes[stripe]);
        map.insert(labels, value);
    }

    fn render(&self, name: &str, help: &str, out: &mut String) {
        self.render_as(name, help, "counter", out);
    }

    fn render_as(&self, name: &str, help: &str, kind: &str, out: &mut String) {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (values, count) in self.sorted_entries() {
            let labels: Vec<String> = self
                .label_names
                .iter()
                .zip(&values)
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect();
            let _ = writeln!(out, "{name}{{{}}} {count}", labels.join(","));
        }
    }
}

/// A histogram family keyed by one label value (per-tenant latencies).
/// Tenant cardinality is modest, so one mutex guards the map of handles;
/// the recording hot path only holds it long enough to clone an `Arc` —
/// the bucket updates themselves stay lock-free.
#[derive(Debug)]
struct LabeledHistogram {
    label_name: &'static str,
    series: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl LabeledHistogram {
    fn new(label_name: &'static str) -> Self {
        Self {
            label_name,
            series: Mutex::new(HashMap::new()),
        }
    }

    fn series(&self, label: &str) -> Arc<Histogram> {
        let mut map = crate::service::lock(&self.series);
        Arc::clone(
            map.entry(label.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    fn record(&self, label: &str, value: u64) {
        self.series(label).record(value);
    }

    fn percentile(&self, label: &str, p: f64) -> u64 {
        crate::service::lock(&self.series)
            .get(label)
            .map(|h| h.percentile(p))
            .unwrap_or(0)
    }

    fn render(&self, name: &str, help: &str, out: &mut String) {
        let mut entries: Vec<(String, Arc<Histogram>)> = crate::service::lock(&self.series)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        if entries.is_empty() {
            return;
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let key = self.label_name;
        for (label, histogram) in entries {
            let label = escape_label(&label);
            for (bound, cumulative) in histogram.cumulative_buckets() {
                match bound {
                    Some(le) => {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{{key}=\"{label}\",le=\"{le}\"}} {cumulative}"
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{{key}=\"{label}\",le=\"+Inf\"}} {cumulative}"
                        );
                    }
                }
            }
            let _ = writeln!(out, "{name}_sum{{{key}=\"{label}\"}} {}", histogram.sum());
            let _ = writeln!(
                out,
                "{name}_count{{{key}=\"{label}\"}} {}",
                histogram.count()
            );
        }
    }
}

/// Escapes a label value for the Prometheus text format.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One entry of the bounded trace ring: what happened, to which job, when
/// (milliseconds relative to telemetry start), in which global order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global monotone sequence number. Never resets, so a consumer of
    /// `GET /events?since=seq` can detect both its resume point and how
    /// many events the ring dropped while it was away.
    pub seq: u64,
    /// Milliseconds since the telemetry plane (≈ the daemon) started.
    pub rel_ms: u64,
    /// The job this event belongs to; `None` for platform-wide events
    /// (dispatch rounds).
    pub job: Option<u64>,
    /// Short machine-friendly phase tag (`submit`, `scheduled`,
    /// `scan_group`, `store`, `done`, …).
    pub phase: String,
    /// Human-readable detail line.
    pub detail: String,
}

/// The bounded event log: a ring of the most recent `capacity` events.
/// `next_seq` only ever grows — overwriting an old slot never disturbs the
/// monotone numbering, which is what lets `events_since` resume across
/// wraparound.
#[derive(Debug)]
struct TraceRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    next_seq: u64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            next_seq: 0,
        }
    }

    fn push(&mut self, rel_ms: u64, job: Option<u64>, phase: &str, detail: String) {
        let event = TraceEvent {
            seq: self.next_seq,
            rel_ms,
            job,
            phase: phase.to_string(),
            detail,
        };
        let slot = (self.next_seq % self.capacity as u64) as usize;
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[slot] = event;
        }
        self.next_seq += 1;
    }

    /// The oldest sequence number still in the ring.
    fn first_seq(&self) -> u64 {
        self.next_seq - self.buf.len() as u64
    }

    /// Events with `seq >= since`, oldest first, plus the next sequence
    /// number (pass it back as `since` to resume where this drain ended).
    fn since(&self, since: u64) -> (Vec<TraceEvent>, u64) {
        let from = since.max(self.first_seq());
        let events = (from..self.next_seq)
            .map(|seq| self.buf[(seq % self.capacity as u64) as usize].clone())
            .collect();
        (events, self.next_seq)
    }

    /// One job's events, oldest first.
    fn timeline(&self, job: u64) -> Vec<TraceEvent> {
        (self.first_seq()..self.next_seq)
            .map(|seq| &self.buf[(seq % self.capacity as u64) as usize])
            .filter(|e| e.job == Some(job))
            .cloned()
            .collect()
    }
}

/// Everything the enabled plane owns. Reached only through [`Telemetry`].
#[derive(Debug)]
struct Inner {
    started: Instant,
    // Counters.
    jobs_submitted: Counter,
    crowd_tasks: Counter,
    dispatch_rounds: Counter,
    // Persistence plane (WAL, snapshots, recovery, spill).
    wal_records: Counter,
    snapshot_writes: Counter,
    recovered_facts: Counter,
    spilled_labels: Counter,
    spill_recalls: Counter,
    // HTTP connection engine.
    keepalive_reuses: Counter,
    http_active_connections: Gauge,
    // Fleet plane (anti-entropy deltas, degraded-mode forwards).
    fleet_deltas: LabeledCounter,
    fleet_forwarded: Counter,
    // Gauges.
    jobs_queued: Gauge,
    jobs_running: Gauge,
    // Labeled families.
    jobs_finished: LabeledCounter,
    tenant_crowd_tasks: LabeledCounter,
    http_requests: LabeledCounter,
    // Resilience plane (retries, injected faults, persistence errors,
    // breaker states).
    retries: LabeledCounter,
    faults_injected: LabeledCounter,
    persist_errors: LabeledCounter,
    breaker_state: LabeledCounter,
    tenant_queue_wait_ms: LabeledHistogram,
    // Histograms.
    queue_wait_ms: Histogram,
    submit_to_first_result_ms: Histogram,
    hit_round_trip_ms: Histogram,
    dispatch_round_questions: Histogram,
    point_batch_size: Histogram,
    // Tracing.
    trace: Mutex<TraceRing>,
}

/// The telemetry handle threaded through the daemon, the scoped service,
/// the dispatcher, the worker pool and the HTTP front-end. Cloning shares
/// the registry (an `Arc` bump); [`Telemetry::disabled`] is the free
/// no-op variant. See the [module docs](self).
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => f.write_str("Telemetry(enabled)"),
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

/// The per-tenant label of a job name: the segment before the first `/`
/// (job names are conventionally `tenant/audit-label`; a name without a
/// slash is its own tenant).
pub fn tenant_of(name: &str) -> &str {
    name.split('/').next().unwrap_or(name)
}

/// The `status` label of a terminal [`JobStatus`] (detail-free: every
/// `Exhausted` scope tallies under `"exhausted"`).
pub fn status_label(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Done => "done",
        JobStatus::Exhausted { .. } => "exhausted",
        JobStatus::Cancelled => "cancelled",
        JobStatus::Failed { .. } => "failed",
    }
}

impl Telemetry {
    /// An enabled plane whose trace ring holds the most recent
    /// `trace_capacity` events.
    ///
    /// # Panics
    /// Panics when `trace_capacity == 0` — an enabled plane needs at least
    /// one trace slot (use [`Telemetry::disabled`] to opt out entirely).
    pub fn new(trace_capacity: usize) -> Self {
        assert!(trace_capacity > 0, "trace capacity must be positive");
        Self {
            inner: Some(Arc::new(Inner {
                started: Instant::now(),
                jobs_submitted: Counter::default(),
                crowd_tasks: Counter::default(),
                dispatch_rounds: Counter::default(),
                wal_records: Counter::default(),
                snapshot_writes: Counter::default(),
                recovered_facts: Counter::default(),
                spilled_labels: Counter::default(),
                spill_recalls: Counter::default(),
                keepalive_reuses: Counter::default(),
                http_active_connections: Gauge::default(),
                fleet_deltas: LabeledCounter::new(&["peer"]),
                fleet_forwarded: Counter::default(),
                jobs_queued: Gauge::default(),
                jobs_running: Gauge::default(),
                jobs_finished: LabeledCounter::new(&["status"]),
                tenant_crowd_tasks: LabeledCounter::new(&["tenant"]),
                http_requests: LabeledCounter::new(&["method", "route", "status"]),
                retries: LabeledCounter::new(&["tenant"]),
                faults_injected: LabeledCounter::new(&["kind"]),
                persist_errors: LabeledCounter::new(&["op"]),
                breaker_state: LabeledCounter::new(&["tenant"]),
                tenant_queue_wait_ms: LabeledHistogram::new("tenant"),
                queue_wait_ms: Histogram::new(),
                submit_to_first_result_ms: Histogram::new(),
                hit_round_trip_ms: Histogram::new(),
                dispatch_round_questions: Histogram::new(),
                point_batch_size: Histogram::new(),
                trace: Mutex::new(TraceRing::new(trace_capacity)),
            })),
        }
    }

    /// The no-op plane: every record call is one `Option` check.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Is this the enabled plane?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Milliseconds since the plane started (0 when disabled).
    pub fn uptime_ms(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.started.elapsed().as_millis() as u64)
            .unwrap_or(0)
    }

    // ---- job lifecycle --------------------------------------------------

    /// One job accepted (the queued gauge rises separately via
    /// [`Telemetry::job_queued_delta`]).
    pub fn job_submitted(&self) {
        if let Some(inner) = &self.inner {
            inner.jobs_submitted.inc();
        }
    }

    /// Shifts the queued-jobs gauge.
    pub fn job_queued_delta(&self, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.jobs_queued.add(delta);
        }
    }

    /// Shifts the running-jobs gauge.
    pub fn job_running_delta(&self, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.jobs_running.add(delta);
        }
    }

    /// How long a job waited between submission and its first schedule.
    pub fn record_queue_wait_ms(&self, ms: u64) {
        if let Some(inner) = &self.inner {
            inner.queue_wait_ms.record_ms(ms);
        }
    }

    /// The same wait, attributed to the job's tenant — the per-tenant QoS
    /// signal the WFQ weights are judged against.
    pub fn record_tenant_queue_wait_ms(&self, tenant: &str, ms: u64) {
        if let Some(inner) = &self.inner {
            inner.tenant_queue_wait_ms.record(tenant, ms);
        }
    }

    /// The p-th percentile of one tenant's queue wait, in milliseconds
    /// (bucket upper bound; 0 when the tenant never waited).
    pub fn tenant_queue_wait_percentile_ms(&self, tenant: &str, p: f64) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.tenant_queue_wait_ms.percentile(tenant, p))
            .unwrap_or(0)
    }

    /// Submit-to-first-result: the tenant-visible latency from submission
    /// to the terminal report landing.
    pub fn record_submit_to_first_result_ms(&self, ms: u64) {
        if let Some(inner) = &self.inner {
            inner.submit_to_first_result_ms.record_ms(ms);
        }
    }

    /// One job reached a terminal status: tallies the per-status counter
    /// and attributes its crowd spend to its tenant.
    pub fn job_finished(&self, status: &JobStatus, tenant: &str, crowd_tasks: u64) {
        if let Some(inner) = &self.inner {
            inner
                .jobs_finished
                .add(vec![status_label(status).to_string()], 1);
            inner.crowd_tasks.add(crowd_tasks);
            inner
                .tenant_crowd_tasks
                .add(vec![tenant.to_string()], crowd_tasks);
        }
    }

    /// The p-th percentile of submit-to-first-result latency, in
    /// milliseconds (bucket upper bound; 0 when nothing recorded).
    pub fn submit_to_first_result_percentile_ms(&self, p: f64) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.submit_to_first_result_ms.percentile(p))
            .unwrap_or(0)
    }

    /// The p-th percentile of queue wait, in milliseconds.
    pub fn queue_wait_percentile_ms(&self, p: f64) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.queue_wait_ms.percentile(p))
            .unwrap_or(0)
    }

    // ---- dispatcher -----------------------------------------------------

    /// One dispatch round: how many questions it drained and how long the
    /// full round trip took (publish, simulated crowd wait, collect).
    pub fn record_dispatch_round(&self, questions: u64, round_ms: u64) {
        if let Some(inner) = &self.inner {
            inner.dispatch_rounds.inc();
            inner.dispatch_round_questions.record(questions);
            inner.hit_round_trip_ms.record_ms(round_ms);
        }
    }

    /// One coalesced point-label HIT of `size` images.
    pub fn record_point_batch(&self, size: u64) {
        if let Some(inner) = &self.inner {
            inner.point_batch_size.record(size);
        }
    }

    // ---- resilience -----------------------------------------------------

    /// One redelivery of `tenant`'s question(s) after a transient platform
    /// failure (`audit_retries_total{tenant}`).
    pub fn record_retry(&self, tenant: &str) {
        if let Some(inner) = &self.inner {
            inner.retries.add(vec![tenant.to_string()], 1);
        }
    }

    /// One fault observed on the dispatch path, by kind — injected chaos
    /// (`hit_timeout`, `platform_error`, `worker_abandoned`), deadline
    /// misses, breaker refusals (`audit_faults_injected_total{kind}`).
    pub fn record_fault(&self, kind: &str) {
        if let Some(inner) = &self.inner {
            inner.faults_injected.add(vec![kind.to_string()], 1);
        }
    }

    /// One swallowed-no-more persistence error, by operation
    /// (`audit_persist_errors_total{op}`; `op` is `wal_append`,
    /// `snapshot`, `spill_read`, `sync`, ...).
    pub fn record_persist_error(&self, op: &str) {
        if let Some(inner) = &self.inner {
            inner.persist_errors.add(vec![op.to_string()], 1);
        }
    }

    /// Total persistence errors recorded so far (0 when disabled).
    pub fn persist_errors_total(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| {
                i.persist_errors
                    .sorted_entries()
                    .iter()
                    .map(|(_, n)| n)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Moves `tenant`'s breaker-state gauge
    /// (`audit_breaker_state{tenant}`: 0 = closed, 1 = half-open,
    /// 2 = open).
    pub fn record_breaker_state(&self, tenant: &str, state: u64) {
        if let Some(inner) = &self.inner {
            inner.breaker_state.set(vec![tenant.to_string()], state);
        }
    }

    // ---- fleet ----------------------------------------------------------

    /// One anti-entropy `KnowledgeStore` delta absorbed from `peer`
    /// (`audit_fleet_deltas_total{peer}`; `peer` is the sending node's
    /// name, so cardinality is bounded by fleet size).
    pub fn record_fleet_delta(&self, peer: &str) {
        if let Some(inner) = &self.inner {
            inner.fleet_deltas.add(vec![peer.to_string()], 1);
        }
    }

    /// One job placed away from its ring owner because the owner was
    /// unreachable — the router's degraded-mode tally
    /// (`audit_fleet_forwarded_total`).
    pub fn record_fleet_forwarded(&self) {
        if let Some(inner) = &self.inner {
            inner.fleet_forwarded.inc();
        }
    }

    /// Total degraded-mode forwards so far (0 when disabled).
    pub fn fleet_forwarded_total(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.fleet_forwarded.get())
            .unwrap_or(0)
    }

    // ---- persistence ----------------------------------------------------

    /// `n` fact records appended to the write-ahead log.
    pub fn record_wal_records(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.wal_records.add(n);
        }
    }

    /// One compacted snapshot written (rotation included).
    pub fn record_snapshot_write(&self) {
        if let Some(inner) = &self.inner {
            inner.snapshot_writes.inc();
        }
    }

    /// `n` facts recovered at startup (snapshot load + WAL replay) or
    /// imported over HTTP.
    pub fn record_recovered_facts(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.recovered_facts.add(n);
        }
    }

    /// `n` cold labels evicted to the on-disk spill segment.
    pub fn record_spilled_labels(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.spilled_labels.add(n);
        }
    }

    /// `n` spilled labels recalled (re-promoted) on touch.
    pub fn record_spill_recalls(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.spill_recalls.add(n);
        }
    }

    // ---- HTTP -----------------------------------------------------------

    /// One HTTP request, by method, route class (`/jobs/{id}`, not
    /// `/jobs/17`) and response status — including the refused ones (400,
    /// 413, 503), which is the point: error floods must be visible.
    pub fn count_http_request(&self, method: &str, route: &str, status: u16) {
        if let Some(inner) = &self.inner {
            inner.http_requests.add(
                vec![method.to_string(), route.to_string(), status.to_string()],
                1,
            );
        }
    }

    /// Shifts the live-connection gauge (+1 on accept, −1 on close) —
    /// the connection engine's load signal.
    pub fn http_connection_delta(&self, delta: i64) {
        if let Some(inner) = &self.inner {
            inner.http_active_connections.add(delta);
        }
    }

    /// Connections currently open against the HTTP front-end.
    pub fn http_active_connections(&self) -> i64 {
        self.inner
            .as_ref()
            .map(|i| i.http_active_connections.get())
            .unwrap_or(0)
    }

    /// One more request served on an already-open keep-alive connection —
    /// the handshake the engine just saved.
    pub fn record_keepalive_reuse(&self) {
        if let Some(inner) = &self.inner {
            inner.keepalive_reuses.inc();
        }
    }

    /// Keep-alive reuses so far (0 when disabled).
    pub fn keepalive_reuses(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.keepalive_reuses.get())
            .unwrap_or(0)
    }

    // ---- tracing --------------------------------------------------------

    /// Appends one trace event. The `detail` closure is evaluated only
    /// when the plane is enabled.
    pub fn trace(&self, job: Option<u64>, phase: &str, detail: impl FnOnce() -> String) {
        if let Some(inner) = &self.inner {
            let rel_ms = inner.started.elapsed().as_millis() as u64;
            crate::service::lock(&inner.trace).push(rel_ms, job, phase, detail());
        }
    }

    /// One job's surviving trace events, oldest first (empty when the
    /// plane is disabled or the ring has wrapped past the job).
    pub fn timeline(&self, job: u64) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map(|i| crate::service::lock(&i.trace).timeline(job))
            .unwrap_or_default()
    }

    /// Surviving events with `seq >= since`, oldest first, plus the `next`
    /// cursor to resume from. When the ring wrapped past `since`, the
    /// drain restarts at the oldest surviving event — the gap is visible
    /// as a jump in `seq`.
    pub fn events_since(&self, since: u64) -> (Vec<TraceEvent>, u64) {
        self.inner
            .as_ref()
            .map(|i| crate::service::lock(&i.trace).since(since))
            .unwrap_or((Vec::new(), 0))
    }

    // ---- rendering ------------------------------------------------------

    /// The whole registry in Prometheus text exposition format — what
    /// `GET /metrics` serves. Deterministically ordered (label families
    /// sort their entries), so scrapes diff cleanly.
    pub fn render_prometheus(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::from("# telemetry disabled\n");
        };
        let mut out = String::new();
        render_counter(
            &mut out,
            "audit_jobs_submitted_total",
            "Jobs accepted since start.",
            &inner.jobs_submitted,
        );
        inner.jobs_finished.render(
            "audit_jobs_finished_total",
            "Terminal jobs by status.",
            &mut out,
        );
        render_gauge(
            &mut out,
            "audit_jobs_queued",
            "Jobs waiting for a worker right now.",
            &inner.jobs_queued,
        );
        render_gauge(
            &mut out,
            "audit_jobs_running",
            "Jobs executing right now.",
            &inner.jobs_running,
        );
        render_counter(
            &mut out,
            "audit_crowd_tasks_total",
            "Crowd tasks charged past the knowledge store.",
            &inner.crowd_tasks,
        );
        inner.tenant_crowd_tasks.render(
            "audit_tenant_crowd_tasks_total",
            "Crowd tasks charged, by tenant (job-name prefix).",
            &mut out,
        );
        render_counter(
            &mut out,
            "audit_dispatch_rounds_total",
            "Dispatch rounds (each pays one platform round trip).",
            &inner.dispatch_rounds,
        );
        inner.http_requests.render(
            "audit_http_requests_total",
            "HTTP requests by method, route class and status.",
            &mut out,
        );
        render_gauge(
            &mut out,
            "audit_http_active_connections",
            "Connections currently open against the HTTP front-end.",
            &inner.http_active_connections,
        );
        render_counter(
            &mut out,
            "audit_http_keepalive_reuses_total",
            "Requests served on an already-open keep-alive connection.",
            &inner.keepalive_reuses,
        );
        inner.fleet_deltas.render(
            "audit_fleet_deltas_total",
            "Anti-entropy knowledge deltas absorbed, by sending peer.",
            &mut out,
        );
        render_counter(
            &mut out,
            "audit_fleet_forwarded_total",
            "Jobs placed away from their ring owner because the owner was down.",
            &inner.fleet_forwarded,
        );
        inner.retries.render(
            "audit_retries_total",
            "Question redeliveries after transient platform failures, by tenant.",
            &mut out,
        );
        inner.faults_injected.render(
            "audit_faults_injected_total",
            "Faults observed on the dispatch path, by kind.",
            &mut out,
        );
        inner.persist_errors.render(
            "audit_persist_errors_total",
            "Persistence I/O errors absorbed on the hot path, by operation.",
            &mut out,
        );
        inner.breaker_state.render_as(
            "audit_breaker_state",
            "Per-tenant circuit-breaker state (0 closed, 1 half-open, 2 open).",
            "gauge",
            &mut out,
        );
        render_counter(
            &mut out,
            "audit_wal_records_total",
            "Fact records appended to the write-ahead log.",
            &inner.wal_records,
        );
        render_counter(
            &mut out,
            "audit_snapshot_writes_total",
            "Compacted knowledge snapshots written.",
            &inner.snapshot_writes,
        );
        render_counter(
            &mut out,
            "audit_recovered_facts_total",
            "Facts recovered at startup or imported over HTTP.",
            &inner.recovered_facts,
        );
        render_counter(
            &mut out,
            "audit_spilled_labels_total",
            "Cold labels evicted to the on-disk spill segment.",
            &inner.spilled_labels,
        );
        render_counter(
            &mut out,
            "audit_spill_recalls_total",
            "Spilled labels re-promoted on touch.",
            &inner.spill_recalls,
        );
        inner.queue_wait_ms.render(
            "audit_queue_wait_ms",
            "Submission-to-first-schedule wait per job, ms.",
            &mut out,
        );
        inner.tenant_queue_wait_ms.render(
            "audit_tenant_queue_wait_ms",
            "Submission-to-first-schedule wait per job, by tenant, ms.",
            &mut out,
        );
        inner.submit_to_first_result_ms.render(
            "audit_submit_to_first_result_ms",
            "Submission-to-terminal-report latency per job, ms.",
            &mut out,
        );
        inner.hit_round_trip_ms.render(
            "audit_hit_round_trip_ms",
            "Dispatch-round round-trip time, ms.",
            &mut out,
        );
        inner.dispatch_round_questions.render(
            "audit_dispatch_round_questions",
            "Questions drained per dispatch round.",
            &mut out,
        );
        inner.point_batch_size.render(
            "audit_point_batch_size",
            "Images per coalesced point-label HIT.",
            &mut out,
        );
        out
    }

    /// A compact human-readable snapshot (the `daemon_audit` example's
    /// closing print): headline counters, gauges and latency percentiles.
    pub fn human_summary(&self) -> String {
        let Some(inner) = &self.inner else {
            return String::from("telemetry disabled");
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "jobs: {} submitted | {} queued | {} running",
            inner.jobs_submitted.get(),
            inner.jobs_queued.get(),
            inner.jobs_running.get()
        );
        let finished: Vec<String> = inner
            .jobs_finished
            .sorted_entries()
            .into_iter()
            .map(|(labels, count)| format!("{} {}", count, labels.join("/")))
            .collect();
        if !finished.is_empty() {
            let _ = writeln!(out, "finished: {}", finished.join(" | "));
        }
        let _ = writeln!(
            out,
            "crowd: {} tasks total | {} dispatch rounds",
            inner.crowd_tasks.get(),
            inner.dispatch_rounds.get()
        );
        for (labels, count) in inner.tenant_crowd_tasks.sorted_entries() {
            let _ = writeln!(out, "  tenant {:<12} {} tasks", labels.join("/"), count);
        }
        let _ = writeln!(
            out,
            "submit-to-first-result: p50 ≤ {} ms | p99 ≤ {} ms (of {})",
            inner.submit_to_first_result_ms.percentile(50.0),
            inner.submit_to_first_result_ms.percentile(99.0),
            inner.submit_to_first_result_ms.count()
        );
        let _ = writeln!(
            out,
            "queue wait: p50 ≤ {} ms | p99 ≤ {} ms",
            inner.queue_wait_ms.percentile(50.0),
            inner.queue_wait_ms.percentile(99.0)
        );
        let _ = write!(
            out,
            "trace: {} events recorded",
            crate::service::lock(&inner.trace).next_seq
        );
        out
    }
}

fn render_counter(out: &mut String, name: &str, help: &str, counter: &Counter) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {}", counter.get());
}

fn render_gauge(out: &mut String, name: &str, help: &str, gauge: &Gauge) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", gauge.get());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        let h = Histogram::new();
        // 0 and 1 share the first bucket; each 2^i lands at le=2^i; 2^i + 1
        // spills into the next bucket.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 20);
        assert_eq!(Histogram::bucket_index((1 << 20) + 1), HISTOGRAM_BUCKETS);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS);
        h.record(1);
        h.record(2);
        h.record(1_000_000_000); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 1_000_000_000);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets[0], (Some(1), 1));
        assert_eq!(buckets[1], (Some(2), 2));
        assert_eq!(buckets.last().unwrap(), &(None, 3));
    }

    #[test]
    fn percentile_is_bucket_upper_bound() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0, "empty histogram");
        for ms in [1, 2, 3, 10, 100] {
            h.record_ms(ms);
        }
        // Ranks: p50 → 3rd of 5 = value 3 → bucket le=4.
        assert_eq!(h.percentile(50.0), 4);
        // p99 → 5th of 5 = value 100 → bucket le=128.
        assert_eq!(h.percentile(99.0), 128);
        // Everything beyond the finite range answers with the exact max.
        h.record_ms(5_000_000);
        assert_eq!(h.percentile(100.0), 5_000_000);
    }

    /// Regression pin (ISSUE 7 satellite): a histogram with zero recorded
    /// samples answers **0** for every percentile — it must not fall
    /// through to the `+Inf` overflow branch or report a bucket bound.
    #[test]
    fn empty_histogram_percentile_is_zero_at_every_p() {
        let h = Histogram::new();
        for p in [0.001, 1.0, 50.0, 90.0, 99.0, 99.999, 100.0] {
            assert_eq!(h.percentile(p), 0, "p={p} on an empty histogram");
        }
        // The same holds through the public Telemetry accessors.
        let telemetry = Telemetry::new(4);
        assert_eq!(telemetry.submit_to_first_result_percentile_ms(50.0), 0);
        assert_eq!(telemetry.queue_wait_percentile_ms(99.0), 0);
        // One observation flips it to a real bucket bound.
        h.record_ms(3);
        assert_eq!(h.percentile(50.0), 4);
    }

    #[test]
    fn persistence_counters_render() {
        let telemetry = Telemetry::new(4);
        telemetry.record_wal_records(7);
        telemetry.record_snapshot_write();
        telemetry.record_recovered_facts(42);
        telemetry.record_spilled_labels(5);
        telemetry.record_spill_recalls(2);
        let text = telemetry.render_prometheus();
        assert!(text.contains("audit_wal_records_total 7"), "{text}");
        assert!(text.contains("audit_snapshot_writes_total 1"), "{text}");
        assert!(text.contains("audit_recovered_facts_total 42"), "{text}");
        assert!(text.contains("audit_spilled_labels_total 5"), "{text}");
        assert!(text.contains("audit_spill_recalls_total 2"), "{text}");
        // The disabled plane swallows them silently.
        let disabled = Telemetry::disabled();
        disabled.record_wal_records(1);
        disabled.record_snapshot_write();
        disabled.record_recovered_facts(1);
        disabled.record_spilled_labels(1);
        disabled.record_spill_recalls(1);
        assert_eq!(disabled.render_prometheus(), "# telemetry disabled\n");
    }

    #[test]
    fn ring_wraparound_keeps_seq_monotone() {
        let telemetry = Telemetry::new(4);
        for i in 0..10u64 {
            telemetry.trace(Some(i % 2), "phase", || format!("event {i}"));
        }
        let (events, next) = telemetry.events_since(0);
        assert_eq!(next, 10);
        // Only the last 4 survive, in seq order, numbering intact.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(events[0].detail, "event 6");
        // Per-job timelines filter the survivors.
        let timeline = telemetry.timeline(0);
        let t_seqs: Vec<u64> = timeline.iter().map(|e| e.seq).collect();
        assert_eq!(t_seqs, vec![6, 8]);
        assert!(telemetry.timeline(7).is_empty());
    }

    #[test]
    fn events_since_resumes_across_wrap() {
        let telemetry = Telemetry::new(4);
        telemetry.trace(None, "a", || "0".into());
        telemetry.trace(None, "a", || "1".into());
        let (first, next) = telemetry.events_since(0);
        assert_eq!(first.len(), 2);
        assert_eq!(next, 2);
        // Six more events wrap the ring well past the cursor.
        for i in 2..8u64 {
            telemetry.trace(None, "a", || format!("{i}"));
        }
        let (resumed, next) = telemetry.events_since(next);
        // Events 2 and 3 were overwritten; the drain restarts at the
        // oldest survivor (4) and the gap is visible in the numbering.
        let seqs: Vec<u64> = resumed.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7]);
        assert_eq!(next, 8);
        // A fully caught-up consumer drains nothing.
        let (empty, next2) = telemetry.events_since(next);
        assert!(empty.is_empty());
        assert_eq!(next2, 8);
    }

    #[test]
    fn disabled_plane_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.is_enabled());
        telemetry.job_submitted();
        telemetry.record_queue_wait_ms(5);
        telemetry.count_http_request("GET", "/stats", 200);
        telemetry.trace(Some(0), "x", || panic!("detail must not be evaluated"));
        assert_eq!(telemetry.events_since(0), (Vec::new(), 0));
        assert!(telemetry.timeline(0).is_empty());
        assert_eq!(telemetry.submit_to_first_result_percentile_ms(99.0), 0);
        assert_eq!(telemetry.render_prometheus(), "# telemetry disabled\n");
        assert_eq!(telemetry.human_summary(), "telemetry disabled");
    }

    #[test]
    fn prometheus_rendering_has_all_families() {
        let telemetry = Telemetry::new(16);
        telemetry.job_submitted();
        telemetry.job_queued_delta(1);
        telemetry.job_queued_delta(-1);
        telemetry.job_running_delta(1);
        telemetry.record_queue_wait_ms(2);
        telemetry.record_submit_to_first_result_ms(9);
        telemetry.job_finished(&JobStatus::Done, "press", 40);
        telemetry.job_finished(&JobStatus::Cancelled, "ngo", 3);
        telemetry.record_dispatch_round(12, 4);
        telemetry.record_point_batch(50);
        telemetry.count_http_request("POST", "/jobs", 201);
        telemetry.count_http_request("POST", "/jobs", 201);
        telemetry.count_http_request("GET", "/jobs/{id}", 404);
        let text = telemetry.render_prometheus();
        assert!(text.contains("audit_jobs_submitted_total 1"), "{text}");
        assert!(
            text.contains(r#"audit_jobs_finished_total{status="cancelled"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_jobs_finished_total{status="done"} 1"#),
            "{text}"
        );
        assert!(text.contains("audit_jobs_queued 0"), "{text}");
        assert!(text.contains("audit_jobs_running 1"), "{text}");
        assert!(text.contains("audit_crowd_tasks_total 43"), "{text}");
        assert!(
            text.contains(r#"audit_tenant_crowd_tasks_total{tenant="press"} 40"#),
            "{text}"
        );
        assert!(
            text.contains(
                r#"audit_http_requests_total{method="POST",route="/jobs",status="201"} 2"#
            ),
            "{text}"
        );
        assert!(
            text.contains(
                r#"audit_http_requests_total{method="GET",route="/jobs/{id}",status="404"} 1"#
            ),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_queue_wait_ms_bucket{le="2"} 1"#),
            "{text}"
        );
        assert!(
            text.contains("audit_submit_to_first_result_ms_count 1"),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_hit_round_trip_ms_bucket{le="+Inf"} 1"#),
            "{text}"
        );
        assert!(text.contains("audit_dispatch_rounds_total 1"), "{text}");
        assert!(text.contains("audit_point_batch_size_sum 50"), "{text}");
        // The human snapshot carries the same headline numbers.
        let human = telemetry.human_summary();
        assert!(human.contains("1 submitted"), "{human}");
        assert!(human.contains("43 tasks total"), "{human}");
    }

    /// ISSUE 8: the connection-engine instruments — active-connection
    /// gauge, keep-alive reuse counter, per-tenant queue-wait histograms —
    /// record, read back, and render deterministically.
    #[test]
    fn connection_engine_instruments_record_and_render() {
        let telemetry = Telemetry::new(8);
        telemetry.http_connection_delta(1);
        telemetry.http_connection_delta(1);
        telemetry.http_connection_delta(-1);
        assert_eq!(telemetry.http_active_connections(), 1);
        telemetry.record_keepalive_reuse();
        telemetry.record_keepalive_reuse();
        assert_eq!(telemetry.keepalive_reuses(), 2);
        telemetry.record_tenant_queue_wait_ms("press", 3);
        telemetry.record_tenant_queue_wait_ms("press", 100);
        telemetry.record_tenant_queue_wait_ms("ngo", 1);
        assert_eq!(
            telemetry.tenant_queue_wait_percentile_ms("press", 99.0),
            128
        );
        assert_eq!(telemetry.tenant_queue_wait_percentile_ms("ngo", 50.0), 1);
        assert_eq!(telemetry.tenant_queue_wait_percentile_ms("ghost", 50.0), 0);
        let text = telemetry.render_prometheus();
        assert!(text.contains("audit_http_active_connections 1"), "{text}");
        assert!(
            text.contains("audit_http_keepalive_reuses_total 2"),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_tenant_queue_wait_ms_bucket{tenant="ngo",le="1"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_tenant_queue_wait_ms_count{tenant="press"} 2"#),
            "{text}"
        );
        // Sorted label order: ngo renders before press.
        let ngo = text.find(r#"tenant="ngo""#).unwrap();
        let press = text.find(r#"tenant="press""#).unwrap();
        assert!(ngo < press);
        // Disabled plane swallows everything.
        let disabled = Telemetry::disabled();
        disabled.http_connection_delta(1);
        disabled.record_keepalive_reuse();
        disabled.record_tenant_queue_wait_ms("press", 1);
        assert_eq!(disabled.http_active_connections(), 0);
        assert_eq!(disabled.keepalive_reuses(), 0);
        assert_eq!(disabled.tenant_queue_wait_percentile_ms("press", 99.0), 0);
    }

    #[test]
    fn trace_event_round_trips_through_json() {
        let event = TraceEvent {
            seq: 7,
            rel_ms: 123,
            job: Some(2),
            phase: "scan_group".into(),
            detail: "super-group 1/3".into(),
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
        // Platform-wide events have no job.
        let global = TraceEvent {
            job: None,
            ..event.clone()
        };
        let json = serde_json::to_string(&global).unwrap();
        assert!(json.contains("null"), "{json}");
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.job, None);
    }

    #[test]
    fn tenant_and_status_labels() {
        assert_eq!(tenant_of("press/full-sweep"), "press");
        assert_eq!(tenant_of("probe"), "probe");
        assert_eq!(status_label(&JobStatus::Done), "done");
        assert_eq!(
            status_label(&JobStatus::Exhausted {
                scope: crate::governor::BudgetScope::Job,
                spent: 1,
                cap: 1
            }),
            "exhausted"
        );
    }
}
