//! The budget governor: per-job and platform-wide crowd-spend caps.
//!
//! Budgets meter **crowd spend** — questions that actually reach the
//! platform after the shared cache — in HIT-equivalents: a set query is one
//! task, point labels amortize to `1/batch` of a task each (the dispatcher
//! really does coalesce them into `batch`-image HITs). Cache hits are free;
//! a job can only exhaust its budget with fresh questions.
//!
//! Coverage algorithms ask questions through an infallible [`AnswerSource`]
//! interface, so the governor stops an over-budget job the only way that
//! composes with that interface: [`GovernedSource`] raises a
//! [`BudgetExhausted`] panic payload, the job runner catches the unwind and
//! reports the job [`Exhausted`](crate::job::JobStatus::Exhausted) with its
//! spend so far. The abort is cooperative between these two layers and never
//! crosses the service boundary.

use crate::job::JobId;
use coverage_core::engine::{AnswerSource, ObjectId};
use coverage_core::ledger::{batched_tasks, TaskLedger};
use coverage_core::schema::Labels;
use coverage_core::target::Target;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, PoisonError};

/// Budget caps, in crowd tasks (HIT-equivalents).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetPolicy {
    /// Default cap per job; a job's own [`crate::job::JobSpec::budget`]
    /// overrides it. `None` means unlimited.
    pub per_job: Option<u64>,
    /// Cap on the whole service run's crowd spend. `None` means unlimited.
    pub global: Option<u64>,
}

impl BudgetPolicy {
    /// No caps.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps every job at `tasks` (unless its spec overrides).
    pub fn per_job(tasks: u64) -> Self {
        Self {
            per_job: Some(tasks),
            ..Self::default()
        }
    }

    /// Caps the whole run at `tasks`.
    pub fn global(tasks: u64) -> Self {
        Self {
            global: Some(tasks),
            ..Self::default()
        }
    }
}

/// Which cap an aborted job ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetScope {
    /// The job's own cap.
    Job,
    /// The service-wide cap.
    Global,
}

/// Panic payload raised by [`GovernedSource`] when a question would exceed
/// a cap; caught by the service's job runner.
#[derive(Debug, Clone)]
pub struct BudgetExhausted {
    /// The aborted job.
    pub job: JobId,
    /// Which cap was hit.
    pub scope: BudgetScope,
}

#[derive(Debug, Default, Clone, Copy)]
struct Spend {
    set_queries: u64,
    point_labels: u64,
}

impl Spend {
    /// HIT-equivalents at the given point-batch size.
    fn tasks(&self, batch: usize) -> u64 {
        self.set_queries + batched_tasks(self.point_labels as usize, batch)
    }
}

/// Spend shared by every job of one service run.
#[derive(Debug)]
pub(crate) struct GlobalBudget {
    cap: Option<u64>,
    batch: usize,
    spend: Mutex<Spend>,
}

impl GlobalBudget {
    pub(crate) fn new(cap: Option<u64>, batch: usize) -> Arc<Self> {
        assert!(batch > 0, "point batch must be positive");
        Arc::new(Self {
            cap,
            batch,
            spend: Mutex::new(Spend::default()),
        })
    }

    /// Total crowd tasks charged so far across all jobs.
    pub(crate) fn tasks_spent(&self) -> u64 {
        self.lock().tasks(self.batch)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Spend> {
        // An aborting job must not poison the shared ledger.
        self.spend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Charges the global ledger; `Err` when the cap would be crossed.
    fn charge(&self, sets: u64, points: u64) -> Result<(), ()> {
        let mut spend = self.lock();
        let mut next = *spend;
        next.set_queries += sets;
        next.point_labels += points;
        if let Some(cap) = self.cap {
            if next.tasks(self.batch) > cap {
                return Err(());
            }
        }
        *spend = next;
        Ok(())
    }
}

/// One job's view of the budget: its own cap plus the shared global ledger.
#[derive(Debug, Clone)]
pub(crate) struct JobBudget {
    job: JobId,
    cap: Option<u64>,
    global: Arc<GlobalBudget>,
    spend: Arc<Mutex<Spend>>,
}

impl JobBudget {
    pub(crate) fn new(job: JobId, cap: Option<u64>, global: Arc<GlobalBudget>) -> Self {
        Self {
            job,
            cap,
            global,
            spend: Arc::new(Mutex::new(Spend::default())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Spend> {
        self.spend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Crowd tasks this job has charged.
    pub(crate) fn tasks_spent(&self) -> u64 {
        self.lock().tasks(self.global.batch)
    }

    /// The job's crowd spend as a [`TaskLedger`] (point tasks amortized at
    /// the dispatcher's batch size).
    pub(crate) fn ledger(&self) -> TaskLedger {
        let spend = *self.lock();
        let mut ledger = TaskLedger::new();
        for _ in 0..spend.set_queries {
            ledger.record_set_query();
        }
        ledger.record_point_work(
            spend.point_labels,
            batched_tasks(spend.point_labels as usize, self.global.batch),
        );
        ledger
    }

    /// Charges this job (and the global ledger); panics with
    /// [`BudgetExhausted`] when a cap would be crossed.
    fn charge(&self, sets: u64, points: u64) {
        // A rejected question must not count toward the job's spend on
        // either abort path, so the local commit happens only after both
        // caps admit it. Lock order is job → global; nothing takes them in
        // reverse, and the job lock is effectively uncontended (one thread
        // runs a job).
        let mut spend = self.lock();
        let mut next = *spend;
        next.set_queries += sets;
        next.point_labels += points;
        if let Some(cap) = self.cap {
            if next.tasks(self.global.batch) > cap {
                drop(spend);
                std::panic::panic_any(BudgetExhausted {
                    job: self.job,
                    scope: BudgetScope::Job,
                });
            }
        }
        if self.global.charge(sets, points).is_err() {
            drop(spend);
            std::panic::panic_any(BudgetExhausted {
                job: self.job,
                scope: BudgetScope::Global,
            });
        }
        *spend = next;
    }
}

/// Wraps a job's connection to the platform with budget enforcement. Sits
/// **below** the shared cache, so only fresh questions are charged.
#[derive(Debug, Clone)]
pub(crate) struct GovernedSource<S> {
    inner: S,
    budget: JobBudget,
}

impl<S> GovernedSource<S> {
    pub(crate) fn new(inner: S, budget: JobBudget) -> Self {
        Self { inner, budget }
    }
}

impl<S: AnswerSource> AnswerSource for GovernedSource<S> {
    fn answer_set(&mut self, objects: &[ObjectId], target: &Target) -> bool {
        self.budget.charge(1, 0);
        self.inner.answer_set(objects, target)
    }

    fn answer_point_labels(&mut self, object: ObjectId) -> Labels {
        self.budget.charge(0, 1);
        self.inner.answer_point_labels(object)
    }

    fn answer_membership(&mut self, object: ObjectId, target: &Target) -> bool {
        self.budget.charge(0, 1);
        self.inner.answer_membership(object, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::engine::{GroundTruth, PerfectSource, VecGroundTruth};
    use coverage_core::pattern::Pattern;

    fn truth(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    fn female() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    #[test]
    fn spend_amortizes_points() {
        let s = Spend {
            set_queries: 3,
            point_labels: 120,
        };
        assert_eq!(s.tasks(50), 3 + 3); // ceil(120/50) = 3
    }

    #[test]
    fn under_budget_passes_through() {
        let t = truth(100, 10);
        let global = GlobalBudget::new(Some(100), 50);
        let budget = JobBudget::new(JobId(0), Some(10), Arc::clone(&global));
        let mut src = GovernedSource::new(PerfectSource::new(&t), budget.clone());
        let ids = t.all_ids();
        assert!(src.answer_set(&ids, &female()));
        for id in &ids[..50] {
            src.answer_point_labels(*id);
        }
        assert_eq!(budget.tasks_spent(), 2); // 1 set + ceil(50/50)
        assert_eq!(global.tasks_spent(), 2);
        let ledger = budget.ledger();
        assert_eq!(ledger.set_queries(), 1);
        assert_eq!(ledger.point_labels(), 50);
        assert_eq!(ledger.total_tasks(), 2);
    }

    #[test]
    fn job_cap_aborts_with_payload() {
        let t = truth(10, 2);
        let global = GlobalBudget::new(None, 50);
        let budget = JobBudget::new(JobId(7), Some(2), global);
        let mut src = GovernedSource::new(PerfectSource::new(&t), budget.clone());
        let ids = t.all_ids();
        src.answer_set(&ids, &female());
        src.answer_set(&ids[..5], &female());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            src.answer_set(&ids[5..], &female());
        }))
        .unwrap_err();
        let exhausted = err.downcast::<BudgetExhausted>().expect("typed payload");
        assert_eq!(exhausted.job, JobId(7));
        assert_eq!(exhausted.scope, BudgetScope::Job);
        // The failed question was not charged.
        assert_eq!(budget.tasks_spent(), 2);
    }

    #[test]
    fn global_cap_spans_jobs() {
        let t = truth(10, 2);
        let global = GlobalBudget::new(Some(3), 50);
        let mut a = GovernedSource::new(
            PerfectSource::new(&t),
            JobBudget::new(JobId(0), None, Arc::clone(&global)),
        );
        let mut b = GovernedSource::new(
            PerfectSource::new(&t),
            JobBudget::new(JobId(1), None, Arc::clone(&global)),
        );
        let ids = t.all_ids();
        a.answer_set(&ids, &female());
        b.answer_set(&ids, &female());
        a.answer_set(&ids, &female());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.answer_set(&ids, &female());
        }))
        .unwrap_err();
        let exhausted = err.downcast::<BudgetExhausted>().expect("typed payload");
        assert_eq!(exhausted.scope, BudgetScope::Global);
        assert_eq!(global.tasks_spent(), 3);
        // The rejected question is charged on neither ledger: per-job spend
        // sums to the global bill.
        let spent_a = a.budget.tasks_spent();
        let spent_b = b.budget.tasks_spent();
        assert_eq!(spent_a, 2);
        assert_eq!(spent_b, 1, "global abort must not charge the job");
        assert_eq!(spent_a + spent_b, global.tasks_spent());
    }
}
