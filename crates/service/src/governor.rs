//! The budget governor: per-job and platform-wide crowd-spend caps.
//!
//! Budgets meter **crowd spend** — the residual questions that actually
//! reach the platform after the shared knowledge store has answered what it
//! can and narrowed what it half-knows — in HIT-equivalents: a set query is
//! one task (narrowed or not), point labels amortize to `1/batch` of a task
//! each (the dispatcher really does coalesce them into `batch`-image HITs).
//! Questions the store decides from facts never get here and are free; a
//! job can only exhaust its budget with genuinely fresh crowd work.
//!
//! Coverage algorithms ask questions through the fallible [`AnswerSource`]
//! interface, so exhaustion is *data*, not control flow: `GovernedSource`
//! refuses an over-budget question with
//! [`AskError::BudgetExhausted`] carrying a [`BudgetSnapshot`] of the spend
//! at that moment, the algorithm driver surfaces its partial result, and
//! the job runner reports the job
//! [`Exhausted`](crate::job::JobStatus::Exhausted). Nothing panics and no
//! unwinding crosses any layer.

use coverage_core::engine::{AnswerSource, ObjectId};
use coverage_core::error::{AskError, BudgetSnapshot};
use coverage_core::ledger::batched_tasks;
#[cfg(test)]
use coverage_core::ledger::TaskLedger;
use coverage_core::schema::Labels;
use coverage_core::target::Target;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, PoisonError};

/// Budget caps, in crowd tasks (HIT-equivalents).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetPolicy {
    /// Default cap per job; a job's own [`crate::job::JobSpec::budget`]
    /// overrides it. `None` means unlimited.
    pub per_job: Option<u64>,
    /// Cap on the whole service run's crowd spend. `None` means unlimited.
    pub global: Option<u64>,
}

impl BudgetPolicy {
    /// No caps.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps every job at `tasks` (unless its spec overrides).
    pub fn per_job(tasks: u64) -> Self {
        Self {
            per_job: Some(tasks),
            ..Self::default()
        }
    }

    /// Caps the whole run at `tasks`.
    pub fn global(tasks: u64) -> Self {
        Self {
            global: Some(tasks),
            ..Self::default()
        }
    }
}

/// Which cap an exhausted job ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BudgetScope {
    /// The job's own cap.
    Job,
    /// The service-wide cap.
    Global,
}

impl BudgetScope {
    /// Maps a core-level [`BudgetSnapshot`] back to the cap it describes:
    /// the governor marks the shared (service-wide) ledger as `shared`.
    pub(crate) fn from_snapshot(snapshot: &BudgetSnapshot) -> Self {
        if snapshot.shared {
            BudgetScope::Global
        } else {
            BudgetScope::Job
        }
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct Spend {
    set_queries: u64,
    point_labels: u64,
}

impl Spend {
    /// HIT-equivalents at the given point-batch size.
    fn tasks(&self, batch: usize) -> u64 {
        self.set_queries + batched_tasks(self.point_labels as usize, batch)
    }
}

/// Spend shared by every job of one service run.
#[derive(Debug)]
pub(crate) struct GlobalBudget {
    cap: Option<u64>,
    batch: usize,
    spend: Mutex<Spend>,
}

impl GlobalBudget {
    pub(crate) fn new(cap: Option<u64>, batch: usize) -> Arc<Self> {
        assert!(batch > 0, "point batch must be positive");
        Arc::new(Self {
            cap,
            batch,
            spend: Mutex::new(Spend::default()),
        })
    }

    /// Total crowd tasks charged so far across all jobs.
    pub(crate) fn tasks_spent(&self) -> u64 {
        self.lock().tasks(self.batch)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Spend> {
        // A job failing with `Err` never unwinds here, but a genuine panic
        // elsewhere must still not poison the shared ledger.
        self.spend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Charges the global ledger; `Err` carries the shared-spend snapshot
    /// when the cap would be crossed.
    fn charge(&self, sets: u64, points: u64) -> Result<(), BudgetSnapshot> {
        let mut spend = self.lock();
        let mut next = *spend;
        next.set_queries += sets;
        next.point_labels += points;
        if let Some(cap) = self.cap {
            if next.tasks(self.batch) > cap {
                return Err(BudgetSnapshot {
                    spent: spend.tasks(self.batch),
                    cap,
                    shared: true,
                });
            }
        }
        *spend = next;
        Ok(())
    }
}

/// One job's view of the budget: its own cap plus the shared global ledger.
#[derive(Debug, Clone)]
pub(crate) struct JobBudget {
    cap: Option<u64>,
    global: Arc<GlobalBudget>,
    spend: Arc<Mutex<Spend>>,
}

impl JobBudget {
    pub(crate) fn new(cap: Option<u64>, global: Arc<GlobalBudget>) -> Self {
        Self {
            cap,
            global,
            spend: Arc::new(Mutex::new(Spend::default())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Spend> {
        self.spend.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Crowd tasks this job has charged.
    pub(crate) fn tasks_spent(&self) -> u64 {
        self.lock().tasks(self.global.batch)
    }

    /// The job's crowd spend as a [`TaskLedger`] (point tasks amortized at
    /// the dispatcher's batch size). The job runner reports the engine's
    /// live logical ledger instead (the fallible ask path keeps the engine
    /// alive through exhaustion), so this view is for inspection only.
    #[cfg(test)]
    pub(crate) fn ledger(&self) -> TaskLedger {
        let spend = *self.lock();
        let mut ledger = TaskLedger::new();
        for _ in 0..spend.set_queries {
            ledger.record_set_query();
        }
        ledger.record_point_work(
            spend.point_labels,
            batched_tasks(spend.point_labels as usize, self.global.batch),
        );
        ledger
    }

    /// Charges this job (and the global ledger); `Err` with
    /// [`AskError::BudgetExhausted`] when a cap would be crossed.
    fn charge(&self, sets: u64, points: u64) -> Result<(), AskError> {
        // A rejected question must not count toward the job's spend on
        // either refusal path, so the local commit happens only after both
        // caps admit it. Lock order is job → global; nothing takes them in
        // reverse, and the job lock is effectively uncontended (one thread
        // runs a job).
        let mut spend = self.lock();
        let mut next = *spend;
        next.set_queries += sets;
        next.point_labels += points;
        if let Some(cap) = self.cap {
            if next.tasks(self.global.batch) > cap {
                let snapshot = BudgetSnapshot {
                    spent: spend.tasks(self.global.batch),
                    cap,
                    shared: false,
                };
                return Err(AskError::BudgetExhausted(snapshot));
            }
        }
        if let Err(snapshot) = self.global.charge(sets, points) {
            return Err(AskError::BudgetExhausted(snapshot));
        }
        *spend = next;
        Ok(())
    }
}

/// Wraps a job's connection to the platform with budget enforcement. Sits
/// **below** the shared knowledge store, so only the residual questions the
/// store could not answer are charged.
#[derive(Debug, Clone)]
pub(crate) struct GovernedSource<S> {
    inner: S,
    budget: JobBudget,
}

impl<S> GovernedSource<S> {
    pub(crate) fn new(inner: S, budget: JobBudget) -> Self {
        Self { inner, budget }
    }
}

impl<S: AnswerSource> AnswerSource for GovernedSource<S> {
    fn try_answer_set(&mut self, objects: &[ObjectId], target: &Target) -> Result<bool, AskError> {
        self.budget.charge(1, 0)?;
        self.inner.try_answer_set(objects, target)
    }

    fn try_answer_point_labels(&mut self, object: ObjectId) -> Result<Labels, AskError> {
        self.budget.charge(0, 1)?;
        self.inner.try_answer_point_labels(object)
    }

    fn try_answer_membership(
        &mut self,
        object: ObjectId,
        target: &Target,
    ) -> Result<bool, AskError> {
        self.budget.charge(0, 1)?;
        self.inner.try_answer_membership(object, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::engine::{GroundTruth, PerfectSource, VecGroundTruth};
    use coverage_core::pattern::Pattern;

    fn truth(n: usize, minority: usize) -> VecGroundTruth {
        VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        )
    }

    fn female() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    #[test]
    fn spend_amortizes_points() {
        let s = Spend {
            set_queries: 3,
            point_labels: 120,
        };
        assert_eq!(s.tasks(50), 3 + 3); // ceil(120/50) = 3
    }

    #[test]
    fn under_budget_passes_through() {
        let t = truth(100, 10);
        let global = GlobalBudget::new(Some(100), 50);
        let budget = JobBudget::new(Some(10), Arc::clone(&global));
        let mut src = GovernedSource::new(PerfectSource::new(&t), budget.clone());
        let ids = t.all_ids();
        assert!(src.try_answer_set(&ids, &female()).unwrap());
        for id in &ids[..50] {
            src.try_answer_point_labels(*id).unwrap();
        }
        assert_eq!(budget.tasks_spent(), 2); // 1 set + ceil(50/50)
        assert_eq!(global.tasks_spent(), 2);
        let ledger = budget.ledger();
        assert_eq!(ledger.set_queries(), 1);
        assert_eq!(ledger.point_labels(), 50);
        assert_eq!(ledger.total_tasks(), 2);
    }

    #[test]
    fn job_cap_refuses_with_snapshot() {
        let t = truth(10, 2);
        let global = GlobalBudget::new(None, 50);
        let budget = JobBudget::new(Some(2), global);
        let mut src = GovernedSource::new(PerfectSource::new(&t), budget.clone());
        let ids = t.all_ids();
        src.try_answer_set(&ids, &female()).unwrap();
        src.try_answer_set(&ids[..5], &female()).unwrap();
        let err = src.try_answer_set(&ids[5..], &female()).unwrap_err();
        match err {
            AskError::BudgetExhausted(snapshot) => {
                assert_eq!(snapshot.spent, 2);
                assert_eq!(snapshot.cap, 2);
                assert!(!snapshot.shared);
                assert_eq!(BudgetScope::from_snapshot(&snapshot), BudgetScope::Job);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // The refused question was not charged.
        assert_eq!(budget.tasks_spent(), 2);
    }

    #[test]
    fn global_cap_spans_jobs() {
        let t = truth(10, 2);
        let global = GlobalBudget::new(Some(3), 50);
        let mut a = GovernedSource::new(
            PerfectSource::new(&t),
            JobBudget::new(None, Arc::clone(&global)),
        );
        let mut b = GovernedSource::new(
            PerfectSource::new(&t),
            JobBudget::new(None, Arc::clone(&global)),
        );
        let ids = t.all_ids();
        a.try_answer_set(&ids, &female()).unwrap();
        b.try_answer_set(&ids, &female()).unwrap();
        a.try_answer_set(&ids, &female()).unwrap();
        let err = b.try_answer_set(&ids, &female()).unwrap_err();
        match err {
            AskError::BudgetExhausted(snapshot) => {
                assert!(snapshot.shared);
                assert_eq!(snapshot.cap, 3);
                assert_eq!(BudgetScope::from_snapshot(&snapshot), BudgetScope::Global);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(global.tasks_spent(), 3);
        // The rejected question is charged on neither ledger: per-job spend
        // sums to the global bill.
        let spent_a = a.budget.tasks_spent();
        let spent_b = b.budget.tasks_spent();
        assert_eq!(spent_a, 2);
        assert_eq!(spent_b, 1, "global refusal must not charge the job");
        assert_eq!(spent_a + spent_b, global.tasks_spent());
    }
}
