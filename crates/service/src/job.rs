//! Audit jobs: what a tenant submits and what the service reports back.
//!
//! A [`JobSpec`] names a pool of objects (indices into the platform's shared
//! dataset), the audit to run over it — any of the paper's five algorithms,
//! chosen by [`AuditKind`] — and the job's `τ`, set-query size `n`, RNG seed,
//! optional task budget and optional scheduling priority. The service
//! answers with a [`JobReport`]: the terminal [`JobStatus`], the algorithm's
//! outcome, per-job [`TaskLedger`] accounting and the job's actual
//! (post-cache) crowd spend. Every type here serializes; the daemon's HTTP
//! front-end ([`crate::http`]) accepts specs and publishes statuses and
//! reports as exactly these shapes.
//!
//! ```
//! use coverage_core::prelude::*;
//! use coverage_service::{AuditKind, JobSpec};
//!
//! let spec = JobSpec::new(
//!     "press/female-50",
//!     vec![ObjectId(0), ObjectId(1), ObjectId(2)],
//!     AuditKind::GroupCoverage {
//!         target: Target::group(Pattern::parse("1").unwrap()),
//!     },
//! )
//! .tau(25)
//! .budget(500)
//! .priority(7);
//! assert!(spec.validate().is_ok());
//! // The spec is wire-ready: what `POST /jobs` accepts is this JSON.
//! let json = serde_json::to_string(&spec).unwrap();
//! let back: JobSpec = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, spec);
//! ```

use crate::governor::BudgetScope;
use coverage_core::classifier::ClassifierOutcome;
use coverage_core::engine::ObjectId;
use coverage_core::group_coverage::GroupCoverageOutcome;
use coverage_core::intersectional::IntersectionalReport;
use coverage_core::ledger::TaskLedger;
use coverage_core::memo::ReuseStats;
use coverage_core::multiple::MultipleReport;
use coverage_core::pattern::Pattern;
use coverage_core::schema::AttributeSchema;
use coverage_core::target::Target;
use serde::{Deserialize, Error, Serialize, Value};
use std::collections::HashSet;

/// Identifier of a submitted job (dense, in submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Which audit algorithm a job runs, with the algorithm-specific inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditKind {
    /// `Base-Coverage` (Alg. 7): one point query per object.
    BaseCoverage {
        /// The group under audit.
        target: Target,
    },
    /// `Group-Coverage` (Alg. 1): divide-and-conquer set queries.
    GroupCoverage {
        /// The group under audit.
        target: Target,
    },
    /// `Multiple-Coverage` (Alg. 2) over a list of groups.
    MultipleCoverage {
        /// The groups under audit.
        groups: Vec<Pattern>,
    },
    /// Intersectional MUP discovery (Alg. 3) over a whole schema lattice.
    IntersectionalCoverage {
        /// The attribute schema spanning the lattice.
        schema: AttributeSchema,
    },
    /// Classifier-assisted verification (Alg. 4/5).
    ClassifierCoverage {
        /// The group under audit.
        target: Target,
        /// The classifier's predicted member set (must be ⊆ the pool).
        predicted: Vec<ObjectId>,
    },
}

impl AuditKind {
    /// Short algorithm name, e.g. for tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            AuditKind::BaseCoverage { .. } => "base_coverage",
            AuditKind::GroupCoverage { .. } => "group_coverage",
            AuditKind::MultipleCoverage { .. } => "multiple_coverage",
            AuditKind::IntersectionalCoverage { .. } => "intersectional_coverage",
            AuditKind::ClassifierCoverage { .. } => "classifier_coverage",
        }
    }
}

// AuditKind carries data per variant, which the vendored serde derive does
// not support — serialize as a tagged object by hand.
impl Serialize for AuditKind {
    fn to_value(&self) -> Value {
        let (tag, fields) = match self {
            AuditKind::BaseCoverage { target } => (
                "base_coverage",
                vec![("target".to_string(), target.to_value())],
            ),
            AuditKind::GroupCoverage { target } => (
                "group_coverage",
                vec![("target".to_string(), target.to_value())],
            ),
            AuditKind::MultipleCoverage { groups } => (
                "multiple_coverage",
                vec![("groups".to_string(), groups.to_value())],
            ),
            AuditKind::IntersectionalCoverage { schema } => (
                "intersectional_coverage",
                vec![("schema".to_string(), schema.to_value())],
            ),
            AuditKind::ClassifierCoverage { target, predicted } => (
                "classifier_coverage",
                vec![
                    ("target".to_string(), target.to_value()),
                    ("predicted".to_string(), predicted.to_value()),
                ],
            ),
        };
        let mut pairs = vec![("algorithm".to_string(), Value::Str(tag.to_string()))];
        pairs.extend(fields);
        Value::Object(pairs)
    }
}

impl Deserialize for AuditKind {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let tag = String::from_value(value.get_field("algorithm")?)?;
        match tag.as_str() {
            "base_coverage" => Ok(AuditKind::BaseCoverage {
                target: Target::from_value(value.get_field("target")?)?,
            }),
            "group_coverage" => Ok(AuditKind::GroupCoverage {
                target: Target::from_value(value.get_field("target")?)?,
            }),
            "multiple_coverage" => Ok(AuditKind::MultipleCoverage {
                groups: Vec::from_value(value.get_field("groups")?)?,
            }),
            "intersectional_coverage" => Ok(AuditKind::IntersectionalCoverage {
                schema: AttributeSchema::from_value(value.get_field("schema")?)?,
            }),
            "classifier_coverage" => Ok(AuditKind::ClassifierCoverage {
                target: Target::from_value(value.get_field("target")?)?,
                predicted: Vec::from_value(value.get_field("predicted")?)?,
            }),
            other => Err(Error::unknown_variant("AuditKind", other)),
        }
    }
}

/// One audit job: dataset slice + algorithm + parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Human-readable label for reports.
    pub name: String,
    /// Pool of object ids the audit ranges over (indices into the service's
    /// shared answer source / dataset).
    pub pool: Vec<ObjectId>,
    /// The algorithm and its inputs.
    pub kind: AuditKind,
    /// Coverage threshold `τ`.
    pub tau: usize,
    /// Subset-size upper bound `n` for set queries, and the job's
    /// point-query batch size.
    pub n: usize,
    /// Seed for the job-local RNG (sampling, aggregation, classifier
    /// sampling). Jobs are deterministic given their spec when the platform
    /// answers per-question (see `crowd-sim`'s `SeedMode::PerQuestion`).
    pub seed: u64,
    /// Optional per-job crowd-task budget; `None` defers to the service's
    /// default policy.
    pub budget: Option<u64>,
    /// Worker threads this one job may use for its super-group scan
    /// (`multiple_coverage` / `intersectional_coverage` only — the other
    /// algorithms are single scans). `None` defers to the service's
    /// [`ServiceConfig::intra_job_parallelism`](crate::ServiceConfig)
    /// default; outcomes and logical ledgers are identical whatever the
    /// value, only the job's wall-clock changes.
    pub intra_parallelism: Option<usize>,
    /// Scheduling priority: a higher value runs earlier when workers are
    /// contended. `None` defers to the service's
    /// [`ServiceConfig::default_priority`](crate::ServiceConfig); `Some(0)`
    /// is **valid** (the least urgent class — unlike
    /// [`JobSpec::intra_parallelism`], where zero workers is meaningless,
    /// every `u32` names a legitimate priority, so [`JobSpec::validate`]
    /// accepts the full range). Ties run in submission order, and waiting
    /// jobs age upward so a low priority delays a job but never starves it
    /// (see [`ServiceConfig::priority_aging`](crate::ServiceConfig)).
    /// Priority never changes a job's outcome — only when it runs.
    pub priority: Option<u32>,
}

impl JobSpec {
    /// A spec with the paper's default `τ = 50`, `n = 50`, seed 0 and no
    /// job-specific budget.
    pub fn new(name: impl Into<String>, pool: Vec<ObjectId>, kind: AuditKind) -> Self {
        Self {
            name: name.into(),
            pool,
            kind,
            tau: 50,
            n: 50,
            seed: 0,
            budget: None,
            intra_parallelism: None,
            priority: None,
        }
    }

    /// Sets `τ`.
    pub fn tau(mut self, tau: usize) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the set-query / point-batch size `n`. Zero is representable (a
    /// spec is tenant *input*, not a programmer contract) and rejected by
    /// [`JobSpec::validate`] when the job is about to run.
    pub fn n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the job RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps this job's crowd tasks.
    pub fn budget(mut self, tasks: u64) -> Self {
        self.budget = Some(tasks);
        self
    }

    /// Lets this job shard its super-group scan across `workers` threads
    /// (see [`JobSpec::intra_parallelism`]). Zero is representable and
    /// rejected by [`JobSpec::validate`] when the job is about to run.
    pub fn intra_parallelism(mut self, workers: usize) -> Self {
        self.intra_parallelism = Some(workers);
        self
    }

    /// Sets the scheduling priority (higher runs earlier; zero is the
    /// valid least-urgent class — see [`JobSpec::priority`]).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = Some(priority);
        self
    }

    /// The one place a spec is validated — used by the service before a job
    /// runs (and callable by drivers or front-ends before submission; the
    /// daemon's HTTP boundary maps an `Err` to a `400` body). Rejects
    /// anything that would trip a `coverage-core` programmer-error assert:
    /// at the service boundary a spec is tenant input and must fail only
    /// the offending job, as an `Err`, never a panic.
    ///
    /// Optional knobs validate uniformly: an **absent** (`None`) knob is
    /// always fine (the service default applies), and a **present** value
    /// is checked only against that knob's own domain —
    /// [`JobSpec::intra_parallelism`] via [`require_positive_knob`] (zero
    /// threads cannot run anything), while [`JobSpec::priority`] and
    /// [`JobSpec::budget`] accept their full ranges (priority `0` is the
    /// least-urgent class; budget `0` is an immediately-exhausted cap —
    /// both are meaningful tenant choices, not spec errors).
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("subset size n must be positive".to_string());
        }
        require_positive_knob("intra-job parallelism", self.intra_parallelism)?;
        match &self.kind {
            AuditKind::MultipleCoverage { groups } if groups.is_empty() => {
                Err("multiple_coverage needs at least one group".to_string())
            }
            AuditKind::ClassifierCoverage { predicted, .. } => {
                let pool: HashSet<_> = self.pool.iter().copied().collect();
                if predicted.iter().all(|id| pool.contains(id)) {
                    Ok(())
                } else {
                    Err("classifier predicted set must be a subset of the pool".to_string())
                }
            }
            _ => Ok(()),
        }
    }
}

/// The uniform gate for optional positive-count knobs on a [`JobSpec`]:
/// `None` (knob unset, service default applies) passes, `Some(0)` is
/// rejected with a consistent message, any positive value passes. Knobs
/// whose whole range is meaningful (priority, budget) don't go through
/// this — see [`JobSpec::validate`] for the per-knob domains.
pub fn require_positive_knob(name: &str, value: Option<usize>) -> Result<(), String> {
    match value {
        Some(0) => Err(format!("{name} must be positive when set")),
        _ => Ok(()),
    }
}

/// Lifecycle of a job inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker thread.
    Running,
    /// Finished with a complete outcome.
    Done,
    /// Stopped by the budget governor before finishing; the report's
    /// `outcome` holds the partial result proven before the cut.
    Exhausted {
        /// Which cap refused the next question.
        scope: BudgetScope,
        /// Crowd tasks charged on that cap's ledger at the refusal.
        spent: u64,
        /// The cap itself.
        cap: u64,
    },
    /// Cancelled via [`CancelHandle`](crate::service::CancelHandle); the
    /// report's `outcome` holds the partial result proven before the stop.
    Cancelled,
    /// The job failed: an invalid spec, or the platform could not answer
    /// one of its questions (the report's `error` has the message).
    Failed {
        /// `true` when the failure was a dead-lettered question — the
        /// dispatcher retried it up to the configured budget (or the
        /// tenant's circuit breaker refused it) and gave up. `false` for
        /// permanent failures that were never worth retrying: invalid
        /// specs, typed permanent platform errors, a vanished dispatcher.
        retries_exhausted: bool,
    },
}

impl JobStatus {
    /// Did the job run to completion?
    pub fn is_done(&self) -> bool {
        matches!(self, JobStatus::Done)
    }

    /// Was the job stopped by a budget cap (any scope)?
    pub fn is_exhausted(&self) -> bool {
        matches!(self, JobStatus::Exhausted { .. })
    }

    /// Was the job cancelled?
    pub fn is_cancelled(&self) -> bool {
        matches!(self, JobStatus::Cancelled)
    }

    /// Did the job fail?
    pub fn is_failed(&self) -> bool {
        matches!(self, JobStatus::Failed { .. })
    }

    /// Same lifecycle stage, ignoring any per-variant detail (an
    /// `Exhausted` matches any other `Exhausted` regardless of scope).
    pub fn same_kind(&self, other: &JobStatus) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }
}

// `Exhausted` carries data, which the vendored serde derive does not
// support — serialize by hand: unit variants as plain strings (the
// pre-existing wire shape), `Exhausted` as a tagged object.
impl Serialize for JobStatus {
    fn to_value(&self) -> Value {
        match self {
            JobStatus::Queued => Value::Str("Queued".to_string()),
            JobStatus::Running => Value::Str("Running".to_string()),
            JobStatus::Done => Value::Str("Done".to_string()),
            JobStatus::Cancelled => Value::Str("Cancelled".to_string()),
            // A plain failure keeps the original wire shape (a bare string)
            // so pre-resilience snapshots and clients round-trip unchanged;
            // only the dead-letter flag needs the tagged-object form.
            JobStatus::Failed {
                retries_exhausted: false,
            } => Value::Str("Failed".to_string()),
            JobStatus::Failed {
                retries_exhausted: true,
            } => Value::Object(vec![
                ("status".to_string(), Value::Str("Failed".to_string())),
                ("retries_exhausted".to_string(), Value::Bool(true)),
            ]),
            JobStatus::Exhausted { scope, spent, cap } => Value::Object(vec![
                ("status".to_string(), Value::Str("Exhausted".to_string())),
                ("scope".to_string(), scope.to_value()),
                ("spent".to_string(), spent.to_value()),
                ("cap".to_string(), cap.to_value()),
            ]),
        }
    }
}

impl Deserialize for JobStatus {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => match s.as_str() {
                "Queued" => Ok(JobStatus::Queued),
                "Running" => Ok(JobStatus::Running),
                "Done" => Ok(JobStatus::Done),
                "Cancelled" => Ok(JobStatus::Cancelled),
                "Failed" => Ok(JobStatus::Failed {
                    retries_exhausted: false,
                }),
                other => Err(Error::unknown_variant("JobStatus", other)),
            },
            Value::Object(_) => {
                let tag = String::from_value(value.get_field("status")?)?;
                match tag.as_str() {
                    "Exhausted" => Ok(JobStatus::Exhausted {
                        scope: BudgetScope::from_value(value.get_field("scope")?)?,
                        spent: u64::from_value(value.get_field("spent")?)?,
                        cap: u64::from_value(value.get_field("cap")?)?,
                    }),
                    "Failed" => Ok(JobStatus::Failed {
                        retries_exhausted: bool::from_value(value.get_field("retries_exhausted")?)?,
                    }),
                    other => Err(Error::unknown_variant("JobStatus", other)),
                }
            }
            other => Err(Error::new(format!(
                "expected JobStatus string or object, found {other:?}"
            ))),
        }
    }
}

/// The algorithm result carried by a finished job.
#[derive(Debug, Clone)]
pub enum AuditOutcome {
    /// Outcome of `base_coverage`, `group_coverage` — a single-group verdict.
    Coverage(GroupCoverageOutcome),
    /// Outcome of `multiple_coverage`.
    Multiple(MultipleReport),
    /// Outcome of `intersectional_coverage`.
    Intersectional(IntersectionalReport),
    /// Outcome of `classifier_coverage`.
    Classifier(ClassifierOutcome),
}

impl AuditOutcome {
    /// The single-group covered/uncovered verdict, when this outcome has one.
    pub fn covered(&self) -> Option<bool> {
        match self {
            AuditOutcome::Coverage(o) => Some(o.covered),
            AuditOutcome::Classifier(o) => Some(o.covered),
            _ => None,
        }
    }
}

impl Serialize for AuditOutcome {
    fn to_value(&self) -> Value {
        let (tag, inner) = match self {
            AuditOutcome::Coverage(o) => ("coverage", o.to_value()),
            AuditOutcome::Multiple(o) => ("multiple", o.to_value()),
            AuditOutcome::Intersectional(o) => ("intersectional", o.to_value()),
            AuditOutcome::Classifier(o) => ("classifier", o.to_value()),
        };
        Value::Object(vec![
            ("kind".to_string(), Value::Str(tag.to_string())),
            ("result".to_string(), inner),
        ])
    }
}

impl Deserialize for AuditOutcome {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let tag = String::from_value(value.get_field("kind")?)?;
        let inner = value.get_field("result")?;
        match tag.as_str() {
            "coverage" => Ok(AuditOutcome::Coverage(Deserialize::from_value(inner)?)),
            "multiple" => Ok(AuditOutcome::Multiple(Deserialize::from_value(inner)?)),
            "intersectional" => Ok(AuditOutcome::Intersectional(Deserialize::from_value(
                inner,
            )?)),
            "classifier" => Ok(AuditOutcome::Classifier(Deserialize::from_value(inner)?)),
            other => Err(Error::unknown_variant("AuditOutcome", other)),
        }
    }
}

/// An ordered phase → duration breakdown of a job's wall-clock: how long
/// it waited in the queue, how long it executed. Serialized as a JSON
/// object whose key order is the phase order (`{"queued": 3, "run": 41}`),
/// so reports diff cleanly and a second round trip is byte-identical.
///
/// Like [`JobReport::wall_ms`], this is *wall-clock observability*, not
/// part of the audit verdict: the telemetry byte-identity proptest
/// (`tests/telemetry.rs`) compares reports modulo `wall_ms` and
/// `phases_ms` only.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseDurations(pub Vec<(String, u64)>);

impl PhaseDurations {
    /// The duration recorded for `phase`, if any.
    pub fn get(&self, phase: &str) -> Option<u64> {
        self.0.iter().find(|(p, _)| p == phase).map(|(_, ms)| *ms)
    }

    /// Appends one phase duration (phases are recorded in lifecycle order).
    pub fn push(&mut self, phase: impl Into<String>, ms: u64) {
        self.0.push((phase.into(), ms));
    }
}

// A map with meaningful key *order* — the vendored derive only handles
// named-field structs, so serialize the object shape by hand.
impl Serialize for PhaseDurations {
    fn to_value(&self) -> Value {
        Value::Object(
            self.0
                .iter()
                .map(|(phase, ms)| (phase.clone(), ms.to_value()))
                .collect(),
        )
    }
}

impl Deserialize for PhaseDurations {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (phase, ms) in pairs {
                    out.push((phase.clone(), u64::from_value(ms)?));
                }
                Ok(Self(out))
            }
            other => Err(Error::new(format!(
                "expected phases_ms object, found {other:?}"
            ))),
        }
    }
}

/// Terminal report for one job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobReport {
    /// The job's id.
    pub id: JobId,
    /// The spec's label.
    pub name: String,
    /// Algorithm short name.
    pub algorithm: String,
    /// Terminal status: [`JobStatus::Done`], [`JobStatus::Exhausted`],
    /// [`JobStatus::Cancelled`] or [`JobStatus::Failed`].
    pub status: JobStatus,
    /// The algorithm's result: the complete outcome when `Done`, the
    /// **partial** outcome proven before the stop when `Exhausted` or
    /// `Cancelled`, absent when `Failed`.
    pub outcome: Option<AuditOutcome>,
    /// Failure message (present iff `status == Failed`).
    pub error: Option<String>,
    /// The job's *logical* crowd work, metered by its engine: every question
    /// the algorithm asked and got answered, whether or not the shared cache
    /// absorbed it. For exhausted and cancelled jobs this covers exactly the
    /// partial run (the refused question is never counted).
    pub ledger: TaskLedger,
    /// Crowd tasks this job actually charged past the shared knowledge
    /// store, as metered by the budget governor (residual set queries +
    /// batched point labels).
    pub crowd_tasks: u64,
    /// How the shared knowledge store disposed of this job's questions:
    /// answered from facts, narrowed to a residual, or forwarded untouched.
    pub reuse: ReuseStats,
    /// Wall-clock milliseconds from first schedule to completion.
    pub wall_ms: u64,
    /// Ordered phase → duration breakdown of the job's lifecycle
    /// (`queued` wait, `run` execution). Wall-clock observability like
    /// [`JobReport::wall_ms`] — never part of the audit verdict.
    pub phases_ms: PhaseDurations,
}

impl JobReport {
    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coverage_core::group_coverage::GroupCoverageOutcome;

    fn target() -> Target {
        Target::group(Pattern::parse("1X").unwrap())
    }

    #[test]
    fn audit_kind_round_trips() {
        let kinds = vec![
            AuditKind::BaseCoverage { target: target() },
            AuditKind::GroupCoverage { target: target() },
            AuditKind::MultipleCoverage {
                groups: vec![Pattern::parse("1X").unwrap(), Pattern::parse("X0").unwrap()],
            },
            AuditKind::IntersectionalCoverage {
                schema: AttributeSchema::single_binary("gender", "m", "f"),
            },
            AuditKind::ClassifierCoverage {
                target: target(),
                predicted: vec![ObjectId(1), ObjectId(5)],
            },
        ];
        for kind in kinds {
            let json = serde_json::to_string(&kind).unwrap();
            let back: AuditKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind, "via {json}");
        }
    }

    #[test]
    fn job_spec_builder_and_round_trip() {
        let spec = JobSpec::new(
            "feret-f",
            vec![ObjectId(0), ObjectId(1)],
            AuditKind::GroupCoverage { target: target() },
        )
        .tau(25)
        .n(10)
        .seed(9)
        .budget(500)
        .priority(3);
        assert_eq!(spec.tau, 25);
        assert_eq!(spec.budget, Some(500));
        assert_eq!(spec.priority, Some(3));
        let json = serde_json::to_string(&spec).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    /// Regression: optional knobs validate uniformly. A present-but-zero
    /// value is rejected only where zero is outside the knob's domain
    /// (`intra_parallelism` — zero threads run nothing); `priority: 0` and
    /// `budget: 0` are legitimate tenant choices and must pass, and every
    /// absent knob passes.
    #[test]
    fn optional_knob_validation_is_uniform() {
        let base = || {
            JobSpec::new(
                "k",
                vec![ObjectId(0)],
                AuditKind::BaseCoverage { target: target() },
            )
        };
        assert!(base().validate().is_ok(), "all knobs absent");
        assert!(
            base().priority(0).validate().is_ok(),
            "zero priority is the valid least-urgent class"
        );
        assert!(
            base().budget(0).validate().is_ok(),
            "zero budget is a valid immediately-exhausted cap"
        );
        let err = base().intra_parallelism(0).validate().unwrap_err();
        assert_eq!(err, "intra-job parallelism must be positive when set");
        assert!(base().intra_parallelism(1).validate().is_ok());
        assert!(base().priority(u32::MAX).validate().is_ok());
        // The shared gate itself.
        assert!(require_positive_knob("x", None).is_ok());
        assert!(require_positive_knob("x", Some(2)).is_ok());
        assert_eq!(
            require_positive_knob("x", Some(0)).unwrap_err(),
            "x must be positive when set"
        );
    }

    #[test]
    fn job_report_serializes_with_outcome() {
        let report = JobReport {
            id: JobId(3),
            name: "audit".into(),
            algorithm: "group_coverage".into(),
            status: JobStatus::Done,
            outcome: Some(AuditOutcome::Coverage(GroupCoverageOutcome {
                covered: true,
                count: 50,
                set_queries: 71,
                witnesses: vec![],
            })),
            error: None,
            ledger: TaskLedger::new(),
            crowd_tasks: 71,
            reuse: ReuseStats::default(),
            wall_ms: 12,
            phases_ms: PhaseDurations(vec![("queued".into(), 1), ("run".into(), 11)]),
        };
        let json = report.to_json();
        assert!(json.contains("\"status\": \"Done\""), "{json}");
        assert!(json.contains("\"queued\": 1"), "{json}");
        let back: JobReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.status, JobStatus::Done);
        assert_eq!(back.outcome.unwrap().covered(), Some(true));
    }

    #[test]
    fn validate_is_the_single_gate() {
        let zero_n = JobSpec::new("x", vec![], AuditKind::BaseCoverage { target: target() }).n(0);
        assert!(zero_n.validate().unwrap_err().contains("positive"));

        let no_groups = JobSpec::new("y", vec![], AuditKind::MultipleCoverage { groups: vec![] });
        assert!(no_groups.validate().unwrap_err().contains("at least one"));

        let stray = JobSpec::new(
            "z",
            vec![ObjectId(0)],
            AuditKind::ClassifierCoverage {
                target: target(),
                predicted: vec![ObjectId(9)],
            },
        );
        assert!(stray.validate().unwrap_err().contains("subset"));

        let fine = JobSpec::new(
            "ok",
            vec![ObjectId(0), ObjectId(9)],
            AuditKind::ClassifierCoverage {
                target: target(),
                predicted: vec![ObjectId(9)],
            },
        );
        assert!(fine.validate().is_ok());
    }

    fn partial_coverage_outcome() -> AuditOutcome {
        AuditOutcome::Coverage(GroupCoverageOutcome {
            covered: false,
            count: 17,
            set_queries: 23,
            witnesses: vec![ObjectId(4), ObjectId(9)],
        })
    }

    /// Golden round-trip: an `Exhausted` report — status detail, partial
    /// outcome, ledger — survives JSON serialization losslessly.
    #[test]
    fn exhausted_report_round_trips_losslessly() {
        for scope in [BudgetScope::Job, BudgetScope::Global] {
            let mut ledger = TaskLedger::new();
            ledger.record_set_query();
            ledger.record_point_work(30, 1);
            let report = JobReport {
                id: JobId(11),
                name: "starved".into(),
                algorithm: "group_coverage".into(),
                status: JobStatus::Exhausted {
                    scope,
                    spent: 40,
                    cap: 40,
                },
                outcome: Some(partial_coverage_outcome()),
                error: None,
                ledger,
                crowd_tasks: 40,
                reuse: ReuseStats {
                    hits: 3,
                    narrowed: 1,
                    forwarded: 40,
                    objects_pruned: 12,
                },
                wall_ms: 7,
                phases_ms: PhaseDurations(vec![("queued".into(), 0), ("run".into(), 7)]),
            };
            let json = report.to_json();
            let back: JobReport = serde_json::from_str(&json).unwrap();
            assert_eq!(back.status, report.status, "via {json}");
            assert!(back.status.is_exhausted());
            assert_eq!(back.ledger, report.ledger);
            assert_eq!(back.crowd_tasks, 40);
            match &back.outcome {
                Some(AuditOutcome::Coverage(o)) => {
                    assert!(!o.covered);
                    assert_eq!(o.count, 17);
                    assert_eq!(o.witnesses, vec![ObjectId(4), ObjectId(9)]);
                }
                other => panic!("partial outcome lost: {other:?}"),
            }
            // Second round trip is byte-identical (canonical form).
            let json2 = serde_json::to_string_pretty(&back).unwrap();
            assert_eq!(json, json2);
        }
    }

    /// Golden round-trip: a `Cancelled` report with its partial outcome.
    #[test]
    fn cancelled_report_round_trips_losslessly() {
        let report = JobReport {
            id: JobId(3),
            name: "stopped".into(),
            algorithm: "base_coverage".into(),
            status: JobStatus::Cancelled,
            outcome: Some(partial_coverage_outcome()),
            error: None,
            ledger: TaskLedger::new(),
            crowd_tasks: 9,
            reuse: ReuseStats::default(),
            wall_ms: 2,
            phases_ms: PhaseDurations::default(),
        };
        let json = report.to_json();
        assert!(json.contains("\"status\": \"Cancelled\""), "{json}");
        let back: JobReport = serde_json::from_str(&json).unwrap();
        assert!(back.status.is_cancelled());
        assert_eq!(back.status, report.status);
        assert!(back.outcome.is_some());
        let json2 = serde_json::to_string_pretty(&back).unwrap();
        assert_eq!(json, json2);
    }

    /// `phases_ms` serializes as an order-preserving JSON object and
    /// round-trips losslessly — including the empty breakdown.
    #[test]
    fn phase_durations_round_trip_in_order() {
        let mut phases = PhaseDurations::default();
        assert_eq!(phases.get("queued"), None);
        phases.push("queued", 3);
        phases.push("run", 41);
        assert_eq!(phases.get("queued"), Some(3));
        assert_eq!(phases.get("run"), Some(41));
        let json = serde_json::to_string(&phases).unwrap();
        assert_eq!(json, r#"{"queued":3,"run":41}"#);
        let back: PhaseDurations = serde_json::from_str(&json).unwrap();
        assert_eq!(back, phases);
        let empty: PhaseDurations = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, PhaseDurations::default());
        assert!(PhaseDurations::from_value(&Value::Int(3)).is_err());
    }

    #[test]
    fn status_kind_comparison_ignores_detail() {
        let a = JobStatus::Exhausted {
            scope: BudgetScope::Job,
            spent: 1,
            cap: 2,
        };
        let b = JobStatus::Exhausted {
            scope: BudgetScope::Global,
            spent: 9,
            cap: 9,
        };
        assert!(a.same_kind(&b));
        assert_ne!(a, b);
        assert!(!a.same_kind(&JobStatus::Done));
        assert!(JobStatus::Done.is_done());
        assert!(JobStatus::Failed {
            retries_exhausted: false
        }
        .is_failed());
        assert!(JobStatus::Failed {
            retries_exhausted: true
        }
        .is_failed());
        assert!(JobStatus::Failed {
            retries_exhausted: true
        }
        .same_kind(&JobStatus::Failed {
            retries_exhausted: false
        }));
    }
}
