//! The long-lived audit daemon: submit any time, query live, drain, stop.
//!
//! [`AuditService::run`](crate::AuditService::run) is a *scoped batch*: it
//! consumes the service, runs everything queued, and returns. The paper,
//! though, frames coverage auditing as a standing service a dataset owner
//! consults on demand — which is what an [`AuditDaemon`] is. It owns the
//! worker pool, the batching dispatcher and the sharded platform-wide
//! [`SharedKnowledgeSource`] for its **whole lifetime**, so facts bought
//! by a job today keep
//! shrinking the queries of every job submitted tomorrow:
//!
//! ```text
//!             submit(JobSpec) ──▶ PriorityQueue ──▶ worker 1..W ─┐
//!  any thread  status(JobId)  ◀── job table                     │ run_job
//!  any time    report(JobId)  ◀── (Queued → Running → terminal) │   │
//!             cancel(JobId) ───▶ CancelToken per job            ▼   ▼
//!                       SharedKnowledgeSource ─ GovernedSource ─ dispatcher ─ platform
//! ```
//!
//! Scheduling is the same priority queue the scoped pool uses
//! ([`crate::scheduler`]): free workers pick the highest
//! [`JobSpec::priority`] (service default for unset specs), ties go to the
//! earlier submission, and queued jobs age upward so newcomers can delay
//! but never starve them. Because the daemon reuses the scoped path's
//! `run_job` verbatim, a report produced here is **byte-identical** (up to
//! wall-clock) to the same spec run through `AuditService::run` —
//! the `daemon_service` integration tests pin exactly that.
//!
//! Lifecycle verbs: [`AuditDaemon::cancel`] flips one job's
//! [`CancelToken`] (a queued job reports `Cancelled` without running, a
//! running one stops at its next question with the partial result);
//! [`AuditDaemon::drain`] blocks until nothing is queued or running;
//! [`AuditDaemon::shutdown`] stops intake, drains, joins every thread and
//! returns the final [`ServiceReport`] plus the answer source. The HTTP
//! front-end over this API lives in [`crate::http`].
//!
//! # Example: submit, poll, cancel
//!
//! ```
//! use coverage_core::prelude::*;
//! use coverage_service::{AuditDaemon, AuditKind, JobSpec, JobStatus, ServiceConfig};
//! use std::sync::Arc;
//!
//! // An owned ('static) source: the daemon's threads outlive this frame.
//! let labels: Vec<Labels> = (0..600).map(|i| Labels::single(u8::from(i % 6 == 0))).collect();
//! let truth = Arc::new(VecGroundTruth::new(labels));
//! let pool = truth.all_ids();
//! let target = Target::group(Pattern::parse("1").unwrap());
//!
//! let daemon = AuditDaemon::start(
//!     ServiceConfig { workers: 2, ..ServiceConfig::default() },
//!     SharedTruthSource::new(Arc::clone(&truth)),
//! );
//!
//! // Submit at any time; invalid specs are refused at the door.
//! let urgent = daemon
//!     .submit(JobSpec::new("urgent", pool.clone(), AuditKind::GroupCoverage { target: target.clone() }).priority(9))
//!     .unwrap();
//! let doomed = daemon
//!     .submit(JobSpec::new("doomed", pool, AuditKind::GroupCoverage { target }).priority(1))
//!     .unwrap();
//! assert!(daemon.submit(JobSpec::new("bad", vec![], AuditKind::MultipleCoverage { groups: vec![] })).is_err());
//!
//! // Live queries: every submitted job has a status right now...
//! assert!(daemon.status(urgent).is_some());
//! daemon.cancel(doomed);
//! daemon.drain(); // ...and a report once it is terminal.
//! assert!(daemon.report(urgent).unwrap().status.is_done());
//! assert!(daemon.report(doomed).unwrap().status.is_cancelled());
//!
//! let (summary, _source) = daemon.shutdown().expect("first shutdown");
//! assert_eq!(summary.jobs.len(), 2);
//! ```

use crate::dispatch::{dispatch_channel, run_dispatcher, DispatchHandle, DispatcherConfig};
use crate::governor::{GlobalBudget, JobBudget};
use crate::job::{JobId, JobReport, JobSpec, JobStatus};
use crate::persist::{Persistence, SpillFile};
use crate::scheduler::PriorityQueue;
use crate::service::{lock, run_job, ServiceConfig, ServiceReport, TenantRateLimit};
use crate::telemetry::{tenant_of, Telemetry};
use coverage_core::engine::{BatchAnswerSource, CancelToken};
use coverage_core::ledger::TaskLedger;
use coverage_core::memo::{FactSink, FactSpill, KnowledgeStore, ReuseStats, SharedKnowledgeSource};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

/// Why the daemon's submit door refused a spec. The HTTP front-end maps
/// each variant to its status line: `Invalid` → 400, `ShuttingDown` → 503,
/// `RateLimited` → 429 with a `Retry-After` header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitRefusal {
    /// The spec failed [`JobSpec::validate`] — tenant error.
    Invalid(String),
    /// [`AuditDaemon::shutdown`] has begun; intake is closed.
    ShuttingDown,
    /// The tenant exhausted its token bucket or queue quota
    /// ([`ServiceConfig::tenant_rate_limit`]). `retry_after_secs` is the
    /// earliest time a retry can succeed (≥ 1, whole seconds — the
    /// `Retry-After` wire granularity).
    RateLimited {
        /// Seconds until the tenant's bucket refills enough for one job.
        retry_after_secs: u64,
    },
}

impl std::fmt::Display for SubmitRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitRefusal::Invalid(message) => f.write_str(message),
            SubmitRefusal::ShuttingDown => f.write_str(SHUTTING_DOWN_MSG),
            SubmitRefusal::RateLimited { retry_after_secs } => write!(
                f,
                "tenant rate limit exceeded; retry after {retry_after_secs}s"
            ),
        }
    }
}

/// The refusal message after shutdown began (also
/// [`AuditDaemon::SHUTTING_DOWN`]; a free const so `SubmitRefusal` can
/// print it without naming the generic daemon type).
const SHUTTING_DOWN_MSG: &str = "daemon is shutting down";

/// One tenant's token bucket: `tokens` refill continuously at
/// `per_second`, capped at `burst`; each admitted submission spends one.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    refilled_at: Instant,
}

/// The submit door's admission state when
/// [`ServiceConfig::tenant_rate_limit`] is set.
#[derive(Debug)]
struct RateGate {
    limit: TenantRateLimit,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl RateGate {
    fn new(limit: TenantRateLimit) -> Self {
        Self {
            limit,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Spends one token from `tenant`'s bucket, or answers how many whole
    /// seconds until one is available.
    fn admit(&self, tenant: &str) -> Result<(), u64> {
        let mut buckets = lock(&self.buckets);
        let now = Instant::now();
        let bucket = buckets.entry(tenant.to_string()).or_insert(TokenBucket {
            tokens: f64::from(self.limit.burst),
            refilled_at: now,
        });
        let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * f64::from(self.limit.per_second))
            .min(f64::from(self.limit.burst));
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / f64::from(self.limit.per_second)).ceil().max(1.0);
            Err(secs as u64)
        }
    }
}

/// One line of the daemon's job table, as served by `GET /jobs`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSummary {
    /// The job's id.
    pub id: JobId,
    /// The spec's label.
    pub name: String,
    /// Algorithm short name.
    pub algorithm: String,
    /// Live status — [`JobStatus::Queued`] / [`JobStatus::Running`] while
    /// the job is in flight, the terminal status afterwards.
    pub status: JobStatus,
}

/// A live snapshot of the whole daemon, as served by `GET /stats`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DaemonStats {
    /// Jobs accepted since start (== size of the job table).
    pub submitted: u64,
    /// Jobs waiting for a worker right now.
    pub queued: u64,
    /// Jobs executing right now.
    pub running: u64,
    /// Jobs with a terminal status — always the sum of the four split
    /// counters below, kept as its own field for wire compatibility (the
    /// pre-split `GET /stats` shape had only `finished`).
    pub finished: u64,
    /// Jobs that ran to completion ([`JobStatus::Done`]).
    pub done: u64,
    /// Jobs stopped by a budget cap ([`JobStatus::Exhausted`]).
    pub exhausted: u64,
    /// Jobs cancelled before or during execution ([`JobStatus::Cancelled`]).
    pub cancelled: u64,
    /// Jobs that failed ([`JobStatus::Failed`]).
    pub failed: u64,
    /// Worker threads in the pool.
    pub workers: u64,
    /// Crowd tasks charged past the knowledge store since start.
    pub crowd_tasks: u64,
    /// Lifetime disposition tally of the shared knowledge store.
    pub reuse: ReuseStats,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
}

/// One tenant's circuit-breaker state inside a [`Readiness`] body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakerSummary {
    /// The tenant (job-name segment before `/`).
    pub tenant: String,
    /// `"closed"`, `"half_open"` or `"open"` (see
    /// [`BreakerState::label`](crate::BreakerState::label)).
    pub state: String,
}

/// One fleet peer's last-observed state inside a [`Readiness`] body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerSummary {
    /// The peer's address as configured ([`ServiceConfig::fleet_peers`])
    /// or joined ([`crate::fleet::FleetNode::join`]).
    pub peer: String,
    /// `"up"` (last anti-entropy exchange succeeded) or `"down"` (the
    /// peer refused the connection or errored).
    pub state: String,
}

/// The daemon's readiness verdict, as served by `GET /readyz` (200 when
/// `ready`, 503 otherwise — liveness is the separate, always-200
/// `GET /healthz`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Readiness {
    /// The overall verdict: the dispatcher is alive **and** the durable
    /// knowledge plane (when configured) has swallowed no I/O error.
    pub ready: bool,
    /// Is the dispatcher thread still serving questions? `false` once it
    /// has exited (shutdown) or died.
    pub dispatcher_alive: bool,
    /// `false` once any persistence write path (WAL append, snapshot,
    /// spill) has swallowed an I/O error — durability is degraded even
    /// though serving continues. `true` when persistence is off.
    pub persistence_healthy: bool,
    /// Every tenant with circuit-breaker history and its current state.
    /// Open breakers don't flip `ready` — they starve one tenant, not the
    /// service — but operators see them here.
    pub breakers: Vec<BreakerSummary>,
    /// Every fleet peer this node gossips with and its last-observed
    /// state, sorted by address. Down peers don't flip `ready` — the
    /// fleet is availability-first (residual questions go to the crowd,
    /// never block on a peer) — but operators see the hole here. Empty
    /// for a solo daemon.
    pub peers: Vec<PeerSummary>,
}

/// What each worker thread needs to run jobs forever.
#[derive(Debug)]
struct WorkerContext {
    shared: Arc<Shared>,
    dispatch: DispatchHandle,
    memo_root: SharedKnowledgeSource<()>,
    global_budget: Arc<GlobalBudget>,
    per_job_budget: Option<u64>,
    intra_job_parallelism: usize,
    telemetry: Telemetry,
    persist: Option<Arc<Persistence>>,
}

#[derive(Debug)]
struct JobSlot {
    /// Immutable after submission; `Arc` so a worker's pop clones a
    /// refcount, not a pool vector, under the daemon-wide lock.
    spec: Arc<JobSpec>,
    status: JobStatus,
    report: Option<JobReport>,
    cancel: CancelToken,
    /// When the submission landed — the anchor for the queue-wait and
    /// submit-to-first-result histograms and the `phases_ms` breakdown.
    submitted_at: Instant,
}

#[derive(Debug)]
struct DaemonState {
    jobs: Vec<JobSlot>,
    queue: PriorityQueue,
    running: usize,
    /// Ids in the order their reports landed — the scheduler's observable
    /// output, pinned by the priority-order tests.
    finished_order: Vec<JobId>,
    /// Flipped once by [`AuditDaemon::shutdown`]: no further submissions,
    /// workers exit when the queue runs dry.
    accepting: bool,
}

#[derive(Debug)]
struct Shared {
    state: Mutex<DaemonState>,
    wakeup: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, DaemonState> {
        lock(&self.state)
    }
}

/// A long-lived, concurrently-shareable audit service: the worker pool,
/// dispatcher and platform-wide knowledge store live as long as the daemon
/// does. All methods take `&self`, so wrap it in an [`Arc`] to serve many
/// clients (the HTTP front-end in [`crate::http`] does exactly that).
///
/// See the [module docs](self) for the lifecycle and a full example.
#[derive(Debug)]
pub struct AuditDaemon<S> {
    shared: Arc<Shared>,
    config: ServiceConfig,
    memo_root: SharedKnowledgeSource<()>,
    global_budget: Arc<GlobalBudget>,
    /// The daemon's own dispatcher connection; dropped at shutdown so the
    /// dispatcher (whose other handles die with the workers) can exit.
    dispatch: Mutex<Option<DispatchHandle>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    dispatcher: Mutex<Option<JoinHandle<(crate::dispatch::DispatchStats, S)>>>,
    started: Instant,
    telemetry: Telemetry,
    /// The durable knowledge plane, when [`ServiceConfig::data_dir`] is
    /// set: WAL sink, snapshot cadence, shutdown sync (see
    /// [`crate::persist`]).
    persist: Option<Arc<Persistence>>,
    /// Per-tenant token buckets, when
    /// [`ServiceConfig::tenant_rate_limit`] is set.
    rate_gate: Option<RateGate>,
    /// Per-tenant circuit breakers, shared with the dispatcher — the
    /// daemon reads states for [`AuditDaemon::readiness`] and `/readyz`.
    breakers: crate::breaker::BreakerRegistry,
    /// Last-observed state of each fleet peer (`true` = up), written by
    /// the anti-entropy loop ([`crate::fleet`]), read by
    /// [`AuditDaemon::readiness`] and `/readyz`. `BTreeMap` so the
    /// readiness body lists peers in a stable order. Empty for a solo
    /// daemon.
    peer_states: Mutex<std::collections::BTreeMap<String, bool>>,
}

impl<S: BatchAnswerSource + Send + 'static> AuditDaemon<S> {
    /// Starts the daemon: spawns the dispatcher (which takes ownership of
    /// `source`) and `config.workers` worker threads, all idle until the
    /// first [`AuditDaemon::submit`].
    ///
    /// # Panics
    /// Panics on non-positive `config` counts (workers, point batch, store
    /// shards, intra-job parallelism) — daemon configuration is operator
    /// input, not tenant input.
    pub fn start(config: ServiceConfig, source: S) -> Self {
        config.assert_valid();

        let shared = Arc::new(Shared {
            state: Mutex::new(DaemonState {
                jobs: Vec::new(),
                queue: PriorityQueue::with_weights(config.priority_aging, &config.tenant_weights),
                running: 0,
                finished_order: Vec::new(),
                accepting: true,
            }),
            wakeup: Condvar::new(),
        });
        let telemetry = config.build_telemetry();
        let (dispatch_handle, dispatch_rx) = dispatch_channel();
        // The daemon keeps its own clone of the breaker registry: the
        // dispatcher records outcomes on it, `readiness()` and the
        // `/readyz` body read tenant states from it.
        let breakers = config.build_breakers();
        let dispatcher_config = DispatcherConfig {
            point_batch: config.point_batch,
            round_latency: config.round_latency,
            telemetry: telemetry.clone(),
            retry: config.retry_policy(),
            breakers: breakers.clone(),
        };
        let global_budget = GlobalBudget::new(config.budget.global, config.point_batch);
        let memo_root: SharedKnowledgeSource<()> =
            SharedKnowledgeSource::with_shards((), config.store_shards);

        // The durable knowledge plane: recover facts from the data dir,
        // seed them into the store (bypassing reuse stats and the sink),
        // then attach the WAL sink — and optionally the disk spill —
        // before the first worker can commit a fact.
        let persist = config.data_dir.as_ref().map(|dir| {
            let (persistence, recovered) =
                Persistence::open(dir, config.snapshot_every, telemetry.clone())
                    .expect("persistence data_dir must be usable");
            // The spill attaches after open (which discards any stale
            // segment) but before seeding, so a recovered store bigger
            // than the watermark spills down right away.
            if let Some(high_watermark) = config.spill_high_watermark {
                let spill = SpillFile::create(dir, telemetry.clone())
                    .expect("persistence data_dir must be usable");
                memo_root.set_fact_spill(Arc::new(spill) as Arc<dyn FactSpill>, high_watermark);
            }
            if !recovered.is_empty() {
                memo_root.seed_store(&recovered);
            }
            let persistence = Arc::new(persistence);
            memo_root.set_fact_sink(Arc::clone(&persistence) as Arc<dyn FactSink>);
            persistence
        });

        let dispatcher = std::thread::spawn(move || {
            let mut source = source;
            let stats = run_dispatcher(&mut source, dispatch_rx, &dispatcher_config);
            (stats, source)
        });
        let workers = (0..config.workers)
            .map(|_| {
                let context = WorkerContext {
                    shared: Arc::clone(&shared),
                    dispatch: dispatch_handle.clone(),
                    memo_root: memo_root.clone(),
                    global_budget: Arc::clone(&global_budget),
                    per_job_budget: config.budget.per_job,
                    intra_job_parallelism: config.intra_job_parallelism,
                    telemetry: telemetry.clone(),
                    persist: persist.clone(),
                };
                std::thread::spawn(move || worker_loop(context))
            })
            .collect();

        let rate_gate = config.tenant_rate_limit.clone().map(RateGate::new);
        Self {
            shared,
            config,
            memo_root,
            global_budget,
            dispatch: Mutex::new(Some(dispatch_handle)),
            workers: Mutex::new(workers),
            dispatcher: Mutex::new(Some(dispatcher)),
            started: Instant::now(),
            telemetry,
            persist,
            rate_gate,
            breakers,
            peer_states: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The daemon's configuration — the HTTP front-end reads its
    /// connection-engine knobs (event-loop threads, keep-alive budget)
    /// from here.
    pub(crate) fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The daemon's telemetry plane: the live metrics registry and trace
    /// ring behind `GET /metrics`, `GET /trace/{id}` and `GET /events`.
    /// The inert [`Telemetry::disabled`] plane when
    /// [`ServiceConfig::telemetry`] is off.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The refusal message for submissions after [`AuditDaemon::shutdown`]
    /// began — the HTTP layer maps exactly this to `503 Service
    /// Unavailable` (a server condition), keeping `400` for spec errors.
    pub const SHUTTING_DOWN: &'static str = SHUTTING_DOWN_MSG;

    /// Submits a job for execution; callable from any thread at any time.
    /// String-error convenience over [`AuditDaemon::try_submit`] — kept
    /// for callers that don't branch on the refusal kind.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, String> {
        self.try_submit(spec).map_err(|refusal| refusal.to_string())
    }

    /// Submits a job for execution with a typed refusal; callable from any
    /// thread at any time.
    ///
    /// The spec is validated **at the door** ([`JobSpec::validate`]): the
    /// daemon's submission boundary is a tenant API, so an invalid spec is
    /// refused with the reason instead of occupying a queue slot (the HTTP
    /// front-end maps [`SubmitRefusal::Invalid`] to 400). Refused once
    /// [`AuditDaemon::shutdown`] has begun (503), and — when
    /// [`ServiceConfig::tenant_rate_limit`] is set — when the tenant's
    /// token bucket or queue quota is exhausted (429 + `Retry-After`).
    /// A token is only spent on an *admitted* submission.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, SubmitRefusal> {
        spec.validate().map_err(SubmitRefusal::Invalid)?;
        let priority = spec.priority.unwrap_or(self.config.default_priority);
        let tenant = tenant_of(&spec.name).to_string();
        let id = {
            let mut state = self.shared.lock();
            if !state.accepting {
                return Err(SubmitRefusal::ShuttingDown);
            }
            if let Some(gate) = &self.rate_gate {
                if let Some(max_queued) = gate.limit.max_queued {
                    if state.queue.tenant_queued(&tenant) >= max_queued {
                        // Quota, not rate: the earliest useful retry is
                        // after a queued job drains — advertise 1s.
                        return Err(SubmitRefusal::RateLimited {
                            retry_after_secs: 1,
                        });
                    }
                }
                gate.admit(&tenant)
                    .map_err(|retry_after_secs| SubmitRefusal::RateLimited { retry_after_secs })?;
            }
            let id = JobId(state.jobs.len() as u64);
            state.queue.push_tenant(id.0 as usize, priority, &tenant);
            let spec = Arc::new(spec);
            self.telemetry.job_submitted();
            self.telemetry.job_queued_delta(1);
            self.telemetry.trace(Some(id.0), "submit", || {
                format!(
                    "{} ({}) queued at priority {priority}",
                    spec.name,
                    spec.kind.name()
                )
            });
            state.jobs.push(JobSlot {
                spec,
                status: JobStatus::Queued,
                report: None,
                cancel: CancelToken::new(),
                submitted_at: Instant::now(),
            });
            id
        };
        self.shared.wakeup.notify_all();
        Ok(id)
    }

    /// The job's status **right now** — `Queued`, `Running`, or terminal.
    /// `None` for an id the daemon never issued.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.lock().jobs.get(id.0 as usize).map(|j| j.status)
    }

    /// The job's terminal report, once it has one (`None` while the job is
    /// still queued or running, or for an unknown id).
    pub fn report(&self, id: JobId) -> Option<JobReport> {
        self.shared
            .lock()
            .jobs
            .get(id.0 as usize)
            .and_then(|j| j.report.clone())
    }

    /// One summary line per submitted job, in submission order.
    pub fn jobs(&self) -> Vec<JobSummary> {
        self.shared
            .lock()
            .jobs
            .iter()
            .enumerate()
            .map(|(index, job)| JobSummary {
                id: JobId(index as u64),
                name: job.spec.name.clone(),
                algorithm: job.spec.kind.name().to_string(),
                status: job.status,
            })
            .collect()
    }

    /// One job's summary and report under a **single** lock acquisition —
    /// a consistent snapshot, so a `Running` status can never be paired
    /// with an already-published report (and one status poll costs one
    /// slot clone, not a scan of the whole job table). `None` for an id
    /// the daemon never issued. This is what `GET /jobs/{id}` serves.
    pub fn snapshot(&self, id: JobId) -> Option<(JobSummary, Option<JobReport>)> {
        let state = self.shared.lock();
        let job = state.jobs.get(id.0 as usize)?;
        Some((
            JobSummary {
                id,
                name: job.spec.name.clone(),
                algorithm: job.spec.kind.name().to_string(),
                status: job.status,
            },
            job.report.clone(),
        ))
    }

    /// Requests cancellation of one job; `false` for an unknown id.
    ///
    /// Cooperative, exactly as in the scoped run: a queued job reports
    /// [`JobStatus::Cancelled`] without running, a running job observes the
    /// token at its next question and reports `Cancelled` with the partial
    /// result, and a job already terminal is unaffected.
    pub fn cancel(&self, id: JobId) -> bool {
        match self.shared.lock().jobs.get(id.0 as usize) {
            Some(job) => {
                job.cancel.cancel();
                true
            }
            None => false,
        }
    }

    /// Ids in the order their reports landed — the scheduler's observable
    /// execution order (priority first, then submission, modulo worker
    /// concurrency).
    pub fn finished_order(&self) -> Vec<JobId> {
        self.shared.lock().finished_order.clone()
    }

    /// Blocks until no job is queued or running. Jobs submitted *after*
    /// drain returns are of course not waited for.
    pub fn drain(&self) {
        let mut state = self.shared.lock();
        while !(state.queue.is_empty() && state.running == 0) {
            state = self
                .shared
                .wakeup
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A live snapshot of the daemon's counters.
    pub fn stats(&self) -> DaemonStats {
        let (submitted, queued, running, done, exhausted, cancelled, failed) = {
            let state = self.shared.lock();
            let (mut done, mut exhausted, mut cancelled, mut failed) = (0u64, 0u64, 0u64, 0u64);
            for job in &state.jobs {
                match job.status {
                    JobStatus::Done => done += 1,
                    JobStatus::Exhausted { .. } => exhausted += 1,
                    JobStatus::Cancelled => cancelled += 1,
                    JobStatus::Failed { .. } => failed += 1,
                    JobStatus::Queued | JobStatus::Running => {}
                }
            }
            (
                state.jobs.len() as u64,
                state.queue.len() as u64,
                state.running as u64,
                done,
                exhausted,
                cancelled,
                failed,
            )
        };
        DaemonStats {
            submitted,
            queued,
            running,
            // Derived, not independently tracked: the split counters are
            // the source of truth, `finished` keeps the pre-split wire
            // field alive.
            finished: done + exhausted + cancelled + failed,
            done,
            exhausted,
            cancelled,
            failed,
            workers: self.config.workers as u64,
            crowd_tasks: self.global_budget.tasks_spent(),
            reuse: self.memo_root.reuse_stats(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
        }
    }

    /// The daemon's readiness verdict: dispatcher liveness, persistence
    /// health, per-tenant breaker states. This is what `GET /readyz`
    /// serves (200 when ready, 503 otherwise).
    pub fn readiness(&self) -> Readiness {
        let dispatcher_alive = lock(&self.dispatcher)
            .as_ref()
            .is_some_and(|handle| !handle.is_finished());
        let persistence_healthy = self
            .persist
            .as_ref()
            .is_none_or(|persist| !persist.is_degraded())
            && self.telemetry.persist_errors_total() == 0;
        let breakers = self
            .breakers
            .states()
            .into_iter()
            .map(|(tenant, state)| BreakerSummary {
                tenant,
                state: state.label().to_string(),
            })
            .collect();
        let peers = lock(&self.peer_states)
            .iter()
            .map(|(peer, up)| PeerSummary {
                peer: peer.clone(),
                state: if *up { "up" } else { "down" }.to_string(),
            })
            .collect();
        Readiness {
            ready: dispatcher_alive && persistence_healthy,
            dispatcher_alive,
            persistence_healthy,
            breakers,
            peers,
        }
    }

    /// Is the daemon still accepting work? `false` once
    /// [`AuditDaemon::shutdown`] has begun — the HTTP layer refuses
    /// state-changing bodies (`/store/import`, `/fleet/delta`) with 503
    /// instead of racing the teardown.
    pub fn is_accepting(&self) -> bool {
        self.shared.lock().accepting
    }

    /// Records the last-observed state of fleet peer `peer` (`true` =
    /// up). Written by the anti-entropy loop after every exchange;
    /// surfaced as [`Readiness::peers`] on `/readyz`. A down peer never
    /// flips `ready` — degraded mode is availability-first.
    pub fn set_peer_state(&self, peer: &str, up: bool) {
        lock(&self.peer_states).insert(peer.to_string(), up);
    }

    /// Absorbs one anti-entropy delta from fleet peer `from`: seeds the
    /// facts into the shared store (bypassing [`ReuseStats`] and the WAL
    /// sink, exactly like recovery — a peer's facts are re-derivable
    /// from *its* WAL, so this node doesn't pay to persist them) and
    /// tallies `audit_fleet_deltas_total{peer}`. Backs
    /// `POST /fleet/delta`.
    pub fn absorb_fleet_delta(&self, from: &str, delta: &KnowledgeStore) {
        if !delta.is_empty() {
            self.memo_root.seed_store(delta);
            self.telemetry
                .record_recovered_facts(delta.fact_count() as u64);
        }
        self.telemetry.record_fleet_delta(from);
    }

    /// A consistent copy of the platform-wide fact base — everything the
    /// crowd has been paid for so far (labels, membership facts, set
    /// verdicts), merged across store shards and the disk spill. This is
    /// what `GET /store/export` serves: the whole knowledge plane as one
    /// JSON document a fresh daemon can [`import`](Self::import_store).
    pub fn export_store(&self) -> KnowledgeStore {
        self.memo_root.store_snapshot()
    }

    /// Seeds a previously exported fact base into this daemon's store and
    /// returns how many facts it now holds. Backs `POST /store/import`.
    ///
    /// Imported facts behave exactly like recovered ones: they bypass
    /// [`ReuseStats`] and the WAL sink (so reports stay comparable to an
    /// uninterrupted run), and — when this daemon persists — are made
    /// durable by an immediate snapshot rather than per-fact WAL frames.
    /// Importing while jobs run is safe; in-flight queries see the new
    /// facts at their next store lookup.
    pub fn import_store(&self, store: &KnowledgeStore) {
        if !store.is_empty() {
            self.memo_root.seed_store(store);
            self.telemetry
                .record_recovered_facts(store.fact_count() as u64);
        }
        if let Some(persist) = &self.persist {
            let _ = persist.snapshot(&self.memo_root);
        }
    }

    /// Graceful stop: refuses further submissions, lets the workers drain
    /// the queue, joins every thread and returns the lifetime
    /// [`ServiceReport`] together with the answer source (e.g. to read
    /// platform statistics). `None` on any call after the first.
    pub fn shutdown(&self) -> Option<(ServiceReport, S)> {
        {
            let mut state = self.shared.lock();
            if !state.accepting {
                return None;
            }
            state.accepting = false;
        }
        self.shared.wakeup.notify_all();
        let workers: Vec<_> = std::mem::take(&mut *lock(&self.workers));
        for worker in workers {
            worker.join().expect("daemon worker never panics");
        }
        // Workers are gone, so no fact can commit past this point: fsync
        // the WAL and cut a final compacted snapshot, making shutdown →
        // restart lossless by construction. Best-effort on I/O error —
        // the in-flight reports below are returned regardless.
        if let Some(persist) = &self.persist {
            let _ = persist.sync();
            let _ = persist.snapshot(&self.memo_root);
        }
        // Workers are gone; dropping the daemon's own handle disconnects
        // the dispatcher's channel and lets it exit with its stats.
        drop(lock(&self.dispatch).take());
        let dispatcher = lock(&self.dispatcher).take()?;
        let (dispatch_stats, source) = dispatcher.join().expect("dispatcher exits cleanly");

        let state = self.shared.lock();
        let jobs: Vec<JobReport> = state
            .jobs
            .iter()
            .map(|job| job.report.clone().expect("drained daemon job reported"))
            .collect();
        let mut total_logical = TaskLedger::new();
        for job in &jobs {
            total_logical.absorb(&job.ledger);
        }
        let reuse = self.memo_root.reuse_stats();
        let report = ServiceReport {
            total_logical,
            crowd_tasks: self.global_budget.tasks_spent(),
            cache_hits: reuse.hits,
            cache_misses: reuse.forwarded,
            reuse,
            dispatch: dispatch_stats,
            wall_ms: self.started.elapsed().as_millis() as u64,
            jobs,
        };
        Some((report, source))
    }
}

/// Dropping a daemon without [`AuditDaemon::shutdown`] (early return,
/// panic unwind) must not leak its threads: flag the state, wake the
/// workers (they exit once the queue is dry) and drop the dispatcher
/// handle (it exits when the last worker does). Best-effort and
/// non-blocking — no joins in `drop`, the threads retire on their own.
impl<S> Drop for AuditDaemon<S> {
    fn drop(&mut self) {
        self.shared.lock().accepting = false;
        self.shared.wakeup.notify_all();
        drop(lock(&self.dispatch).take());
    }
}

/// One worker thread: pop the highest-priority job, run it with the scoped
/// path's `run_job`, publish the report, repeat — until shutdown empties
/// the queue.
fn worker_loop(context: WorkerContext) {
    loop {
        let (index, spec, cancel, submitted_at) = {
            let mut state = context.shared.lock();
            loop {
                if let Some(index) = state.queue.pop() {
                    // A job cancelled while queued must never be observed
                    // `Running` — the documented contract is that it
                    // reports `Cancelled` without running (`run_job` sees
                    // the pre-flipped token and returns immediately), so
                    // its last live status stays `Queued`.
                    if !state.jobs[index].cancel.is_cancelled() {
                        state.jobs[index].status = JobStatus::Running;
                    }
                    state.running += 1;
                    let job = &state.jobs[index];
                    break (
                        index,
                        Arc::clone(&job.spec),
                        job.cancel.clone(),
                        job.submitted_at,
                    );
                }
                if !state.accepting {
                    return;
                }
                state = context
                    .shared
                    .wakeup
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // `status` now answers `Running`; the next submission or cancel can
        // land concurrently — the job table lock is free while we work.
        let queued_ms = submitted_at.elapsed().as_millis() as u64;
        context.telemetry.job_queued_delta(-1);
        context.telemetry.job_running_delta(1);
        let budget = JobBudget::new(
            spec.budget.or(context.per_job_budget),
            Arc::clone(&context.global_budget),
        );
        let report = run_job(
            JobId(index as u64),
            &spec,
            &context.memo_root,
            &context.dispatch,
            budget,
            cancel,
            context.intra_job_parallelism,
            queued_ms,
            &context.telemetry,
        );
        context.telemetry.job_running_delta(-1);
        context
            .telemetry
            .record_submit_to_first_result_ms(submitted_at.elapsed().as_millis() as u64);
        // Job boundaries are the snapshot cadence check: compacting here
        // keeps the rotation off the per-fact hot path.
        if let Some(persist) = &context.persist {
            persist.maybe_snapshot(&context.memo_root);
        }
        {
            let mut state = context.shared.lock();
            state.jobs[index].status = report.status;
            state.jobs[index].report = Some(report);
            state.finished_order.push(JobId(index as u64));
            state.running -= 1;
        }
        context.shared.wakeup.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::AuditKind;
    use coverage_core::prelude::*;

    fn truth(n: usize, minority: usize) -> Arc<VecGroundTruth> {
        Arc::new(VecGroundTruth::new(
            (0..n)
                .map(|i| Labels::single(u8::from(i < minority)))
                .collect(),
        ))
    }

    fn female() -> Target {
        Target::group(Pattern::parse("1").unwrap())
    }

    fn group_job(name: &str, pool: Vec<ObjectId>) -> JobSpec {
        JobSpec::new(name, pool, AuditKind::GroupCoverage { target: female() }).tau(5)
    }

    #[test]
    fn lifecycle_submit_drain_report_shutdown() {
        let truth = truth(400, 60);
        let daemon = AuditDaemon::start(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        let a = daemon.submit(group_job("a", truth.all_ids())).unwrap();
        let b = daemon.submit(group_job("b", truth.all_ids())).unwrap();
        assert!(daemon.status(a).is_some());
        assert_eq!(daemon.status(JobId(99)), None);
        daemon.drain();
        assert!(daemon.report(a).unwrap().status.is_done());
        assert!(daemon.report(b).unwrap().status.is_done());
        // The twin job was answered from the daemon's knowledge store.
        let stats = daemon.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.finished, 2);
        assert!(stats.reuse.hits > 0, "{stats:?}");
        let (summary, _source) = daemon.shutdown().expect("first shutdown");
        assert_eq!(summary.jobs.len(), 2);
        assert!(daemon.shutdown().is_none(), "second shutdown is a no-op");
    }

    /// The `finished` wire field stays the derived sum of the split
    /// status counters, and the daemon's telemetry plane sees the same
    /// lifecycle: counters, per-job timelines and the Prometheus render
    /// all agree with the job table.
    #[test]
    fn stats_split_terminal_statuses_and_telemetry_agrees() {
        let truth = truth(400, 60);
        let daemon = AuditDaemon::start(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        // The starved job runs first (single worker, submission order): a
        // zero budget refuses its very first question while the knowledge
        // store is still cold — submitted later it could be answered
        // entirely from the twin job's cached facts and finish `Done`.
        let starved = daemon
            .submit(group_job("t/b", truth.all_ids()).budget(0))
            .unwrap();
        let done = daemon.submit(group_job("t/a", truth.all_ids())).unwrap();
        let doomed = daemon.submit(group_job("u/c", truth.all_ids())).unwrap();
        daemon.cancel(doomed);
        daemon.drain();
        let stats = daemon.stats();
        assert_eq!(stats.done, 1, "{stats:?}");
        assert_eq!(stats.exhausted, 1, "{stats:?}");
        assert_eq!(stats.cancelled, 1, "{stats:?}");
        assert_eq!(stats.failed, 0, "{stats:?}");
        assert_eq!(
            stats.finished,
            stats.done + stats.exhausted + stats.cancelled + stats.failed
        );
        // The split survives the wire.
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.contains("\"exhausted\":1"), "{json}");

        let telemetry = daemon.telemetry();
        assert!(telemetry.is_enabled(), "daemon default enables telemetry");
        let text = telemetry.render_prometheus();
        assert!(text.contains("audit_jobs_submitted_total 3"), "{text}");
        assert!(
            text.contains(r#"audit_jobs_finished_total{status="done"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_jobs_finished_total{status="exhausted"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"audit_tenant_crowd_tasks_total{tenant="t"}"#),
            "{text}"
        );
        // Each job's timeline starts at submission and ends terminal.
        for (id, terminal) in [
            (done, "done"),
            (starved, "exhausted"),
            (doomed, "cancelled"),
        ] {
            let timeline = telemetry.timeline(id.0);
            assert_eq!(timeline.first().unwrap().phase, "submit", "{timeline:?}");
            assert_eq!(timeline.last().unwrap().phase, terminal, "{timeline:?}");
        }
        // The report's lifecycle breakdown is present alongside wall_ms.
        let report = daemon.report(done).unwrap();
        assert!(report.phases_ms.get("queued").is_some());
        assert!(report.phases_ms.get("run").is_some());
        let (summary, _) = daemon.shutdown().unwrap();
        assert_eq!(summary.jobs.len(), 3);
    }

    #[test]
    fn invalid_spec_is_refused_at_the_door() {
        let truth = truth(50, 5);
        let daemon = AuditDaemon::start(
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        let err = daemon
            .submit(group_job("zero-n", truth.all_ids()).n(0))
            .unwrap_err();
        assert!(err.contains("positive"), "{err}");
        assert_eq!(daemon.stats().submitted, 0);
        let (summary, _) = daemon.shutdown().unwrap();
        assert!(summary.jobs.is_empty());
        // Submission after shutdown is refused too.
        let err = daemon
            .submit(group_job("late", truth.all_ids()))
            .unwrap_err();
        assert!(err.contains("shutting down"), "{err}");
    }

    /// ISSUE 8: the submit door's QoS gate. A tenant that bursts past its
    /// token bucket is refused with a typed `RateLimited` refusal carrying
    /// a positive `Retry-After`; other tenants are unaffected (buckets are
    /// per tenant); the queue quota caps simultaneous backlog; and no
    /// limit configured means no behaviour change.
    #[test]
    fn tenant_rate_limit_refuses_with_retry_after() {
        let truth = truth(60, 8);
        let daemon = AuditDaemon::start(
            ServiceConfig {
                workers: 1,
                round_latency: std::time::Duration::from_millis(1),
                tenant_rate_limit: Some(TenantRateLimit {
                    per_second: 1,
                    burst: 2,
                    max_queued: Some(8),
                }),
                ..ServiceConfig::default()
            },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        // Burst of 2 is admitted; the third submission in the same instant
        // is rate-limited.
        daemon
            .try_submit(group_job("a/one", truth.all_ids()))
            .unwrap();
        daemon
            .try_submit(group_job("a/two", truth.all_ids()))
            .unwrap();
        let refusal = daemon
            .try_submit(group_job("a/three", truth.all_ids()))
            .unwrap_err();
        match refusal {
            SubmitRefusal::RateLimited { retry_after_secs } => {
                assert!(retry_after_secs >= 1, "{retry_after_secs}");
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // The string door carries the same information.
        let err = daemon
            .submit(group_job("a/four", truth.all_ids()))
            .unwrap_err();
        assert!(err.contains("rate limit"), "{err}");
        // A different tenant has its own bucket.
        daemon
            .try_submit(group_job("b/one", truth.all_ids()))
            .unwrap();
        daemon.drain();
        let (summary, _) = daemon.shutdown().unwrap();
        assert_eq!(summary.jobs.len(), 3);
    }

    /// The queue quota refuses the (max_queued + 1)-th simultaneous
    /// backlog entry even when the token bucket still has credit.
    #[test]
    fn tenant_queue_quota_caps_backlog() {
        let truth = truth(60, 8);
        let daemon = AuditDaemon::start(
            ServiceConfig {
                workers: 1,
                round_latency: std::time::Duration::from_millis(5),
                tenant_rate_limit: Some(TenantRateLimit {
                    per_second: 1000,
                    burst: 1000,
                    max_queued: Some(2),
                }),
                ..ServiceConfig::default()
            },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        // Three rapid submissions: the worker may start the first, but
        // with round latency holding it the next two fill the quota.
        let mut refused = 0;
        for i in 0..6 {
            if daemon
                .try_submit(group_job(&format!("t/{i}"), truth.all_ids()))
                .is_err()
            {
                refused += 1;
            }
        }
        assert!(
            refused > 0,
            "quota of 2 must refuse some of 6 instant submissions"
        );
        daemon.drain();
        daemon.shutdown();
    }

    #[test]
    fn queued_job_cancels_without_running() {
        let truth = truth(300, 40);
        let daemon = AuditDaemon::start(
            ServiceConfig {
                workers: 1,
                round_latency: std::time::Duration::from_millis(1),
                ..ServiceConfig::default()
            },
            SharedTruthSource::new(Arc::clone(&truth)),
        );
        // Keep the single worker busy, then cancel a job stuck behind it.
        let blocker = daemon
            .submit(group_job("blocker", truth.all_ids()))
            .unwrap();
        let doomed = daemon.submit(group_job("doomed", truth.all_ids())).unwrap();
        assert!(daemon.cancel(doomed));
        assert!(!daemon.cancel(JobId(42)));
        daemon.drain();
        assert!(daemon.report(blocker).unwrap().status.is_done());
        let report = daemon.report(doomed).unwrap();
        assert!(report.status.is_cancelled());
        let (summary, _) = daemon.shutdown().unwrap();
        assert_eq!(summary.jobs.len(), 2);
    }
}
