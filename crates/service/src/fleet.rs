//! The daemon fleet: N cooperating [`AuditDaemon`]s behind one router.
//!
//! One process is a ceiling; facts are keyed by [`ObjectId`] and verdicts
//! compose, so coverage audits distribute. This module turns independent
//! daemons into a fleet with three pieces:
//!
//! * [`HashRing`] — a consistent-hash ring over `ObjectId`s. Each node is
//!   *authoritative* for the objects that hash to it, which gives the
//!   router a data-locality signal and the bench a way to partition a
//!   giant pool into per-node shards. [`ServiceConfig::ring_replicas`]
//!   virtual points per node smooth the shard sizes.
//! * [`FleetNode`] — one daemon + its HTTP front door + an **anti-entropy
//!   loop**: every [`ServiceConfig::anti_entropy_ms`] the node diffs its
//!   fact base against what it last shipped each peer
//!   ([`KnowledgeStore::delta_since`]) and `POST`s the fresh facts to the
//!   peer's `/fleet/delta`. Facts a peer already paid the crowd for are
//!   never bought twice; periodically the loop re-ships everything
//!   (a full-sync round), so a peer that restarted — and therefore lost
//!   the *seeded* facts its own WAL never held — reconverges without any
//!   coordination.
//! * [`FleetRouter`] — a thin client-side front door: places each
//!   [`JobSpec`] on the node owning most of its pool (ties broken by
//!   tenant load, then total load), proxies status/report/watch to the
//!   owning node, and — when the owner is down — **forwards** the job to
//!   the next-best node instead of blocking (counted as
//!   `audit_fleet_forwarded_total`).
//!
//! Degraded mode is availability-first throughout: a down peer means the
//! survivors answer residual questions from the crowd (duplicate spend,
//! bounded by the full-sync cadence — never a stall), `/readyz` shows the
//! hole as [`PeerSummary`](crate::PeerSummary) rows without flipping
//! `ready`, and a restarted node recovers its shard from its own
//! WAL/snapshot ([`ServiceConfig::data_dir`]) before rejoining the
//! exchange. The fleet-equivalence test plane
//! (`tests/tests/fleet_equivalence.rs`) pins the contract: any fleet
//! topology is verdict-identical to a single node, and fleet crowd spend
//! never exceeds the same nodes run in isolation.

use crate::daemon::AuditDaemon;
use crate::http::{http_request, HttpClient, HttpServer};
use crate::job::{JobId, JobReport, JobSpec};
use crate::service::{lock, ServiceConfig, ServiceReport};
use crate::telemetry::{tenant_of, Telemetry};
use coverage_core::engine::{BatchAnswerSource, ObjectId};
use coverage_core::memo::KnowledgeStore;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Anti-entropy rounds between **full-sync** rounds, where the loop
/// forgets what it shipped and re-sends its whole fact base. Deltas alone
/// converge only while every peer keeps what it was sent; a peer that
/// crashed and recovered from its own WAL has silently lost the *seeded*
/// facts (they bypass its WAL by design), and the periodic full ship
/// repairs exactly that hole. Between crashes full syncs are cheap: a
/// re-imported fact is a no-op on the receiver.
const FULL_SYNC_EVERY: u64 = 8;

/// How long the router sleeps between `/stats` polls while draining.
const DRAIN_POLL: Duration = Duration::from_millis(5);

fn hash_one(value: u64) -> u64 {
    // `DefaultHasher::new()` uses fixed keys, so ring placement is stable
    // across processes and runs — nodes and router agree on ownership
    // without exchanging the ring.
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A consistent-hash ring over [`ObjectId`]s: `replicas` virtual points
/// per node, ownership by successor point. Placement is deterministic
/// (fixed-key hashing), so every fleet participant computes the same ring
/// from `(nodes, replicas)` alone.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)` sorted by point — binary-searched per lookup.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// A ring of `nodes` members with `replicas` virtual points each.
    ///
    /// # Panics
    /// Panics when either count is zero — an empty ring owns nothing.
    pub fn new(nodes: usize, replicas: usize) -> Self {
        assert!(nodes > 0, "a ring needs at least one node");
        assert!(replicas > 0, "a ring needs at least one point per node");
        let mut points = Vec::with_capacity(nodes * replicas);
        for node in 0..nodes {
            for replica in 0..replicas {
                points.push((hash_one(((node as u64) << 32) | replica as u64), node));
            }
        }
        points.sort_unstable();
        Self { points, nodes }
    }

    /// How many nodes the ring places over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The node authoritative for `object`: the first ring point at or
    /// after the object's hash, wrapping at the top.
    pub fn owner_of(&self, object: ObjectId) -> usize {
        let point = hash_one(u64::from(object.0));
        let index = self
            .points
            .partition_point(|(p, _)| *p < point)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        self.points[index].1
    }
}

/// The `POST /fleet/delta` wire body: one anti-entropy shipment — the
/// facts `from` holds that it believes the receiver doesn't.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetDelta {
    /// The sending node's name — the `peer` label of
    /// `audit_fleet_deltas_total` on the receiver.
    pub from: String,
    /// The shipped facts. Seeded into the receiver's store exactly like
    /// recovered ones: no reuse-stats movement, no WAL frames (the facts
    /// are re-derivable from the *sender's* WAL).
    pub store: KnowledgeStore,
}

/// One fleet member: an [`AuditDaemon`], its [`HttpServer`] front door,
/// and (once [`FleetNode::join`]ed) the anti-entropy thread shipping
/// [`KnowledgeStore`] deltas to its peers.
///
/// ```no_run
/// use coverage_core::prelude::*;
/// use coverage_service::fleet::FleetNode;
/// use coverage_service::ServiceConfig;
/// use std::sync::Arc;
///
/// let truth = Arc::new(VecGroundTruth::new(vec![Labels::single(1); 10]));
/// let node = FleetNode::start(
///     "node0",
///     "127.0.0.1:0",
///     ServiceConfig::default(),
///     SharedTruthSource::new(truth),
/// )
/// .unwrap();
/// println!("serving on {}", node.addr());
/// node.shutdown();
/// ```
#[derive(Debug)]
pub struct FleetNode<S> {
    name: String,
    daemon: Arc<AuditDaemon<S>>,
    server: HttpServer,
    cadence: Duration,
    stop: Arc<AtomicBool>,
    gossip: Mutex<Option<JoinHandle<()>>>,
}

impl<S: BatchAnswerSource + Send + 'static> FleetNode<S> {
    /// Starts one fleet member: the daemon, its HTTP front door on
    /// `addr` (port `0` for an OS-assigned one — see [`FleetNode::addr`])
    /// and, when [`ServiceConfig::fleet_peers`] is non-empty, the
    /// anti-entropy loop toward those peers. With no configured peers the
    /// node serves solo until [`FleetNode::join`] — the two-phase start
    /// that port-`0` topologies need (peer addresses don't exist until
    /// every node has bound).
    pub fn start(
        name: impl Into<String>,
        addr: impl ToSocketAddrs,
        config: ServiceConfig,
        source: S,
    ) -> io::Result<Self> {
        let name = name.into();
        let peers = config.fleet_peers.clone();
        let cadence = Duration::from_millis(config.anti_entropy_ms);
        let daemon = Arc::new(AuditDaemon::start(config, source));
        let server = HttpServer::serve(addr, Arc::clone(&daemon))?;
        let node = Self {
            name,
            daemon,
            server,
            cadence,
            stop: Arc::new(AtomicBool::new(false)),
            gossip: Mutex::new(None),
        };
        if !peers.is_empty() {
            let mut resolved = Vec::with_capacity(peers.len());
            for peer in &peers {
                resolved.push(peer.to_socket_addrs()?.next().ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("fleet peer `{peer}` resolves to no address"),
                    )
                })?);
            }
            node.join(resolved);
        }
        Ok(node)
    }

    /// The bound address of this node's HTTP front door.
    pub fn addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// This node's name — the `from` it stamps on outgoing deltas.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The wrapped daemon, for direct (in-process) inspection: stats,
    /// store export, telemetry. Remote callers go through the HTTP door.
    pub fn daemon(&self) -> &Arc<AuditDaemon<S>> {
        &self.daemon
    }

    /// Starts the anti-entropy loop toward `peers` (each the HTTP front
    /// door of another fleet node). Idempotent join is not supported —
    /// the peer set is fixed for the node's lifetime.
    ///
    /// # Panics
    /// Panics when the node already gossips (started with configured
    /// peers, or `join` called twice).
    pub fn join(&self, peers: Vec<SocketAddr>) {
        let mut slot = lock(&self.gossip);
        assert!(slot.is_none(), "fleet node `{}` already joined", self.name);
        let daemon = Arc::clone(&self.daemon);
        let name = self.name.clone();
        let cadence = self.cadence;
        let stop = Arc::clone(&self.stop);
        *slot = Some(std::thread::spawn(move || {
            anti_entropy_loop(&daemon, &name, &peers, cadence, &stop);
        }));
    }

    /// Graceful stop: ends the anti-entropy loop, closes the HTTP door,
    /// then drains and joins the daemon (returning its lifetime report
    /// and the answer source, as [`AuditDaemon::shutdown`] does).
    pub fn shutdown(self) -> Option<(ServiceReport, S)> {
        self.stop.store(true, Ordering::Release);
        if let Some(gossip) = lock(&self.gossip).take() {
            let _ = gossip.join();
        }
        self.server.shutdown();
        self.daemon.shutdown()
    }

    /// Abrupt stop, for chaos tests: cancels every job, ends the gossip
    /// loop and the HTTP door, and drops the daemon **without** a
    /// graceful shutdown — like a crash, no final snapshot is cut, so a
    /// restart exercises the WAL-replay recovery path. In-flight workers
    /// retire on their own once their cancelled jobs notice.
    pub fn kill(self) {
        self.stop.store(true, Ordering::Release);
        for job in self.daemon.jobs() {
            self.daemon.cancel(job.id);
        }
        if let Some(gossip) = lock(&self.gossip).take() {
            let _ = gossip.join();
        }
        self.server.shutdown();
        // Dropping the last daemon Arc flags the workers down without
        // joining them — the crash analogue (see `AuditDaemon`'s `Drop`).
    }
}

/// The per-peer anti-entropy exchange. For each peer the loop remembers
/// the last store it successfully shipped; each round ships only
/// [`KnowledgeStore::delta_since`] that baseline (empty delta ⇒ a cheap
/// `/healthz` probe keeps the peer state fresh). Every
/// [`FULL_SYNC_EVERY`] rounds the baseline resets, re-shipping everything
/// — the repair path for peers that restarted and lost seeded facts.
fn anti_entropy_loop<S: BatchAnswerSource + Send + 'static>(
    daemon: &Arc<AuditDaemon<S>>,
    name: &str,
    peers: &[SocketAddr],
    cadence: Duration,
    stop: &AtomicBool,
) {
    let mut shipped: Vec<KnowledgeStore> = vec![KnowledgeStore::new(); peers.len()];
    let mut round: u64 = 0;
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(cadence);
        if stop.load(Ordering::Acquire) {
            break;
        }
        round += 1;
        let snapshot = daemon.export_store();
        for (index, peer) in peers.iter().enumerate() {
            if round.is_multiple_of(FULL_SYNC_EVERY) {
                shipped[index] = KnowledgeStore::new();
            }
            let delta = snapshot.delta_since(&shipped[index]);
            let outcome = if delta.is_empty() {
                http_request(*peer, "GET", "/healthz", None).map(|(code, _)| code == 200)
            } else {
                let body = serde_json::to_string(&FleetDelta {
                    from: name.to_string(),
                    store: delta,
                })
                .expect("a knowledge store always serializes");
                http_request(*peer, "POST", "/fleet/delta", Some(&body)).map(|(code, _)| {
                    if code == 200 {
                        shipped[index] = snapshot.clone();
                    }
                    code == 200
                })
            };
            daemon.set_peer_state(&peer.to_string(), outcome.unwrap_or(false));
        }
    }
}

/// One job as the router tracks it: which node it landed on, and the
/// node-local [`JobId`] there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetJobId {
    /// Index of the node (into the router's node list) running the job.
    pub node: usize,
    /// The node-local job id.
    pub id: JobId,
}

/// The fleet's thin front door: places jobs by data locality and tenant
/// load, proxies per-job reads to the owning node, and forwards around
/// down nodes instead of blocking on them. Purely a client — it owns no
/// socket and no thread, so anything that can reach the nodes can run
/// one.
#[derive(Debug)]
pub struct FleetRouter {
    nodes: Vec<SocketAddr>,
    ring: HashRing,
    /// Jobs placed so far, per node (outer) and tenant (inner) — the
    /// load half of the placement key.
    placed: Mutex<Vec<HashMap<String, u64>>>,
    telemetry: Telemetry,
}

impl FleetRouter {
    /// A router over `nodes` (each a fleet node's HTTP front door), with
    /// `ring_replicas` virtual points per node — use the same value as
    /// [`ServiceConfig::ring_replicas`] so router and bench agree on
    /// ownership.
    ///
    /// # Panics
    /// Panics on an empty node list or zero replicas.
    pub fn new(nodes: Vec<SocketAddr>, ring_replicas: usize) -> Self {
        let ring = HashRing::new(nodes.len(), ring_replicas);
        let placed = Mutex::new(vec![HashMap::new(); nodes.len()]);
        Self {
            nodes,
            ring,
            placed,
            telemetry: Telemetry::new(16),
        }
    }

    /// The router's own telemetry plane — carries
    /// `audit_fleet_forwarded_total`, the degraded-mode placement tally.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The ring the router places with.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Node indices best-first for `spec`: most pool objects owned
    /// (data locality), then fewest jobs of this tenant already placed
    /// (tenant load), then fewest jobs overall, then lowest index —
    /// a total, deterministic order, which is what makes fleet runs
    /// reproducible enough to compare against single-node runs.
    pub fn placement(&self, spec: &JobSpec) -> Vec<usize> {
        let mut locality = vec![0u64; self.nodes.len()];
        for object in &spec.pool {
            locality[self.ring.owner_of(*object)] += 1;
        }
        let tenant = tenant_of(&spec.name);
        let placed = lock(&self.placed);
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&node| {
            let by_tenant = placed[node].get(tenant).copied().unwrap_or(0);
            let total: u64 = placed[node].values().sum();
            (Reverse(locality[node]), by_tenant, total, node)
        });
        order
    }

    /// Submits `spec` to its best-placed node, falling back down the
    /// placement order when a node is unreachable or shutting down (the
    /// availability-first contract: a down peer costs locality, never
    /// progress). Every fallback hop is one `audit_fleet_forwarded_total`
    /// tick. Errors only when every node refuses.
    pub fn submit(&self, spec: &JobSpec) -> io::Result<FleetJobId> {
        let body = serde_json::to_string(spec).map_err(io::Error::other)?;
        let tenant = tenant_of(&spec.name).to_string();
        let mut last_error = None;
        for (attempt, node) in self.placement(spec).into_iter().enumerate() {
            match http_request(self.nodes[node], "POST", "/jobs", Some(&body)) {
                Ok((201, reply)) => {
                    if attempt > 0 {
                        self.telemetry.record_fleet_forwarded();
                    }
                    *lock(&self.placed)[node].entry(tenant.clone()).or_insert(0) += 1;
                    let id = parse_submit_id(&reply)?;
                    return Ok(FleetJobId { node, id });
                }
                // A node mid-shutdown is as unavailable as a dead one —
                // degrade to the next candidate.
                Ok((503, _)) => last_error = Some(io::Error::other("node shutting down")),
                Ok((code, reply)) => {
                    return Err(io::Error::other(format!(
                        "fleet node {node} refused the spec: {code} {reply}"
                    )))
                }
                Err(e) => last_error = Some(e),
            }
        }
        Err(last_error
            .unwrap_or_else(|| io::Error::other("every fleet node refused the submission")))
    }

    /// Proxies `GET /jobs/{id}` to the owning node: the raw
    /// `(status code, body)`. `Err` when that node is unreachable — the
    /// caller decides whether to resubmit elsewhere (see the chaos half
    /// of `tests/tests/fleet_equivalence.rs`).
    pub fn job(&self, job: FleetJobId) -> io::Result<(u16, String)> {
        http_request(
            self.nodes[job.node],
            "GET",
            &format!("/jobs/{}", job.id.0),
            None,
        )
    }

    /// The job's terminal [`JobReport`], proxied from the owning node;
    /// `Ok(None)` while it is still queued or running.
    pub fn report(&self, job: FleetJobId) -> io::Result<Option<JobReport>> {
        let (code, body) = self.job(job)?;
        if code != 200 {
            return Err(io::Error::other(format!(
                "node {} answered {code} for job {}: {body}",
                job.node, job.id
            )));
        }
        serde_json::from_str::<JobSnapshot>(&body)
            .map(|snapshot| snapshot.report)
            .map_err(io::Error::other)
    }

    /// Proxies the chunked `GET /jobs/{id}/watch` stream from the owning
    /// node, returning the de-chunked ndjson once the job reaches a
    /// terminal state.
    pub fn watch(&self, job: FleetJobId) -> io::Result<String> {
        let mut client = HttpClient::connect(self.nodes[job.node])?;
        let (code, body) = client.request("GET", &format!("/jobs/{}/watch", job.id.0), None)?;
        if code != 200 {
            return Err(io::Error::other(format!(
                "node {} answered {code} for the watch stream",
                job.node
            )));
        }
        Ok(body)
    }

    /// Blocks until no **reachable** node has a job queued or running.
    /// Unreachable nodes are skipped — waiting on a dead peer would
    /// violate the availability-first contract (their lost jobs are the
    /// caller's to resubmit).
    pub fn drain(&self) {
        loop {
            let busy =
                self.nodes
                    .iter()
                    .any(|addr| match http_request(*addr, "GET", "/stats", None) {
                        Ok((200, body)) => serde_json::from_str::<QueueDepth>(&body)
                            .is_ok_and(|depth| depth.queued + depth.running > 0),
                        _ => false,
                    });
            if !busy {
                return;
            }
            std::thread::sleep(DRAIN_POLL);
        }
    }
}

/// The slice of a `201 {"id", "status"}` submit receipt the router needs.
#[derive(Deserialize)]
struct SubmitReceipt {
    id: JobId,
}

/// The slice of a `GET /jobs/{id}` body the router proxies.
#[derive(Deserialize)]
struct JobSnapshot {
    report: Option<JobReport>,
}

/// The slice of a `GET /stats` body the drain loop polls.
#[derive(Deserialize)]
struct QueueDepth {
    queued: u64,
    running: u64,
}

/// Pulls the [`JobId`] out of a `201 {"id", "status"}` submit receipt.
fn parse_submit_id(reply: &str) -> io::Result<JobId> {
    serde_json::from_str::<SubmitReceipt>(reply)
        .map(|receipt| receipt.id)
        .map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_ownership_is_total_and_stable() {
        let ring = HashRing::new(4, 32);
        for raw in 0..10_000u32 {
            let owner = ring.owner_of(ObjectId(raw));
            assert!(owner < 4);
            assert_eq!(owner, ring.owner_of(ObjectId(raw)), "stable per object");
            assert_eq!(
                owner,
                HashRing::new(4, 32).owner_of(ObjectId(raw)),
                "stable across ring instances"
            );
        }
    }

    #[test]
    fn ring_spreads_objects_roughly_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for raw in 0..40_000u32 {
            counts[ring.owner_of(ObjectId(raw))] += 1;
        }
        for (node, count) in counts.iter().enumerate() {
            assert!(
                (2_000..=25_000).contains(count),
                "node {node} owns a degenerate shard: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_node_moves_a_bounded_slice_of_the_keyspace() {
        let before = HashRing::new(3, 64);
        let after = HashRing::new(4, 64);
        let total = 30_000u32;
        let moved = (0..total)
            .filter(|raw| {
                let old = before.owner_of(ObjectId(*raw));
                let new = after.owner_of(ObjectId(*raw));
                old != new
            })
            .count();
        // Consistent hashing's point: growing 3 → 4 nodes should move
        // about a quarter of the keys, not rehash the world.
        assert!(
            moved < (total as usize) / 2,
            "adding one node moved {moved}/{total} keys"
        );
    }

    #[test]
    fn single_node_ring_owns_everything() {
        let ring = HashRing::new(1, 8);
        for raw in [0u32, 1, 17, 9999, u32::MAX] {
            assert_eq!(ring.owner_of(ObjectId(raw)), 0);
        }
    }
}
